//! `reese` — command-line front end for the simulators.
//!
//! ```text
//! reese run <file.s> [options]     simulate an assembly program
//! reese campaign [options]         run a fault-injection campaign
//! reese schemes [options]          rank every detection scheme on the kernel suite
//! reese explain [options]          forensically replay one logged campaign trial
//! reese shard [options]            shard one run across checkpoint intervals
//! reese asm <file.s> -o <file.bin>  assemble a program to a flat binary
//! reese mix <file.s|kernel>        print a program's dynamic instruction mix
//! reese disasm <file.s>            assemble and disassemble a program
//! reese trace <file.s|kernel> [--out f]   capture and profile a trace
//! reese kernels                    list the built-in workload kernels
//! ```
//!
//! Every `--scheme` flag accepts any name from the detection-scheme
//! registry (`baseline|reese|duplex|meek|swift`), or any unambiguous
//! prefix of one. Likewise every `--isa` flag accepts any name from
//! the ISA registry (`native|rv32i`) and selects which frontend loads
//! the program: assembler source goes through that ISA's assembler,
//! `.bin` files load as flat text-segment images, and `--kernel`
//! names resolve against that ISA's kernel catalogue (the Table 2
//! suite for `native`, the rv32i ports for `rv32i`). `mix`, `disasm`,
//! and `trace` accept `--isa` too.
//!
//! Run options:
//!
//! ```text
//! --scheme emulate|<scheme>   machine model (default baseline)
//! --isa native|rv32i ISA frontend for the program (default native)
//! --machine starting|ruu32|wide16|ports4   base configuration (default starting)
//! --ruu-size N       override the RUU window size (≥ 1)
//! --lsq-size N       override the LSQ size (≥ 1, ≤ RUU size)
//! --width N          override the fetch/issue width (≥ 1)
//! --spare-alus N     extra integer ALUs for REESE
//! --spare-muls N     extra integer multiplier/dividers for REESE
//! --rqueue N         R-stream Queue size (default 32)
//! --early-removal    enable the §4.3 RUU-removal optimisation
//! --dup-period K     re-execute 1 in K instructions (default 1)
//! --inject SEQ:BIT:p|r   inject a transient fault (repeatable)
//! --max-insns N      stop after N committed instructions
//! --skip N           fast-forward N instructions functionally first
//! --stats            print the full statistics block
//! --kernel NAME      run a built-in kernel instead of a file
//! --scale N          kernel scale (default 1)
//! --trace-out FILE   write a pipetrace (.txt → SimpleScalar-style text,
//!                    anything else → Chrome trace-event JSON for Perfetto)
//! --metrics-out FILE write per-interval metrics (.json → JSON, else CSV)
//! --metrics-interval N   sampling interval in cycles (default 10000)
//! ```
//!
//! Campaign options:
//!
//! ```text
//! --kernel NAME | <file.s>   workload (default kernel `lisp`)
//! --scale N          kernel scale (default 1)
//! --isa native|rv32i ISA frontend for the workload (default native)
//! --scheme <scheme>  detection scheme under test (default reese)
//! --trials N         number of injection trials (default 200)
//! --injections N     alias for --trials
//! --seed S           campaign PRNG seed (default 0xFA017)
//! --mix broad|result fault-class mix (default broad)
//! --machine ...      base configuration, as for `run`
//! --spare-alus N / --spare-muls N   REESE spare elements
//! --max-insns N      per-trial committed-instruction budget
//! -j N, --jobs N     worker threads (default: available parallelism;
//!                    1 forces the serial path — same report either way)
//! --engine full|replay   trial engine (default replay; full is the
//!                    from-scratch oracle arm — byte-identical reports)
//! --ckpt-every K     checkpoint interval in instructions (default 2048)
//! --outcomes-jsonl FILE  stream per-trial outcomes to a campaign log
//! --resume FILE      resume an interrupted campaign from its log
//! --trial-limit N    compute at most N new trials (for staged runs)
//! --out FILE         write the per-trial report to FILE
//!                    (.json → JSON, anything else → CSV)
//! --trace-out FILE   pipetrace of the clean reference run
//! --metrics-out FILE per-interval metrics pooled across simulated trials
//! --metrics-interval N   sampling interval in cycles (default 10000)
//! --telemetry-out FILE   stream a JSONL telemetry journal (phase
//!                    timings, worker throughput, memo hit rate, ETA)
//! ```
//!
//! Schemes options:
//!
//! ```text
//! --kernel NAME      restrict to one kernel (repeatable; default: the
//!                    selected ISA's whole catalogue)
//! --scale N          kernel scale (default 1)
//! --isa native|rv32i kernel catalogue to rank on (default native)
//! --target N         calibrate each kernel to ≥ N dynamic instructions
//!                    (native suite only; rv32i ports take --scale)
//! --trials N         injection trials per (scheme, kernel) cell (default 100)
//! --seed S           campaign PRNG seed (default 0xFA017)
//! --mix broad|result fault-class mix (default result)
//! --machine ...      base configuration, as for `run`
//! --max-insns N      per-run committed-instruction budget
//! -j N, --jobs N     worker threads (default 1)
//! --engine full|replay   trial engine (default replay)
//! --csv FILE         write the per-cell table as CSV
//! --json FILE        write rows + ranking as JSON
//! --trace-out FILE   stitched pipetrace of the clean REESE run on
//!                    every evaluated kernel (cycle-offset merged)
//! --metrics-out FILE stitched per-interval metrics of those runs
//! --metrics-interval N   sampling interval in cycles (default 10000)
//! --telemetry-out FILE   one JSONL telemetry journal across all
//!                    (scheme, kernel) cells, bracketed by cell_start
//! ```
//!
//! Explain options:
//!
//! ```text
//! --outcomes FILE    campaign log (--outcomes-jsonl/--resume file) [required]
//! --trial N          address the trial by index in the log
//! --id N             address the trial by stable id (decimal or 0xHEX)
//! --kernel NAME | <file.s>   the campaign's workload (default `lisp`)
//! --scale N          kernel scale (default 1)
//! --isa native|rv32i the campaign's ISA (default native)
//! --scheme <scheme>  the campaign's detection scheme (default reese)
//! --machine ...      base configuration, as for `run`
//! --spare-alus N / --spare-muls N   REESE spare elements
//! --out FILE         write the forensic timeline text to FILE
//! --trace-out FILE   Chrome trace-event JSON of the faulty window with
//!                    inject/diverge/detect markers (Perfetto-loadable)
//! ```
//!
//! The workload, scheme, and machine flags must repeat whatever the
//! campaign ran with; `explain` cross-checks them against the log
//! header before simulating and refuses on mismatch.
//!
//! Shard options:
//!
//! ```text
//! --kernel NAME | <file.s>   workload (default kernel `lisp`)
//! --scale N          kernel scale (default 1)
//! --isa native|rv32i ISA frontend for the workload (default native)
//! --intervals K      number of checkpoint intervals (default 4)
//! -j N, --jobs N     worker threads (default: available parallelism)
//! --scheme <scheme>  interval timing machine (default reese;
//!                    must be shardable: baseline|reese|duplex)
//! --machine ...      base configuration, as for `run`
//! --warmup W         warm caches/bpred over the last W instructions
//!                    of each interval's fast-forward (default 0)
//! --no-verify        skip the monolithic run (no cycle-error oracle)
//! --out FILE         write the shard report as JSON
//! --snapshot FILE    write the first mid-run checkpoint to FILE
//! --trace-out FILE   stitched pipetrace across the intervals
//! --metrics-out FILE stitched per-interval metrics (.json → JSON, else CSV)
//! --metrics-interval N   sampling interval in cycles (default 10000)
//! ```

use reese::ckpt::{self, Scheme, ShardOptions};
use reese::core::{DuplexSim, InjectedFault, ReeseConfig, ReeseSim};
use reese::cpu::Emulator;
use reese::faults::schemes::EvalOptions;
use reese::faults::SchemesReport;
use reese::isa::{IsaId, Program};
use reese::pipeline::{PipelineConfig, PipelineSim};
use reese::trace::{MetricsSeries, TraceRing, Tracer};
use reese::workloads::rv32::Rv32Kernel;
use reese::workloads::{measure_mix, Kernel};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("schemes") => cmd_schemes(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("mix") => cmd_mix(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("kernels") => cmd_kernels(),
        _ => {
            eprintln!(
                "usage: reese <run|campaign|schemes|explain|shard|asm|mix|disasm|trace|kernels> [options]  (see --help in source)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliError = Box<dyn std::error::Error>;

fn machine(name: &str) -> Result<PipelineConfig, CliError> {
    Ok(match name {
        "starting" => PipelineConfig::starting(),
        "ruu32" => PipelineConfig::starting().with_ruu(32).with_lsq(16),
        "wide16" => PipelineConfig::starting()
            .with_ruu(32)
            .with_lsq(16)
            .with_width(16),
        "ports4" => PipelineConfig::starting()
            .with_ruu(32)
            .with_lsq(16)
            .with_width(16)
            .with_mem_ports(4),
        other => return Err(format!("unknown machine `{other}`").into()),
    })
}

fn kernel_by_name(name: &str) -> Result<Kernel, CliError> {
    Kernel::ALL
        .into_iter()
        .find(|k| k.name() == name || k.paper_benchmark() == name)
        .ok_or_else(|| format!("unknown kernel `{name}` (try `reese kernels`)").into())
}

fn rv32_kernel_by_name(name: &str) -> Result<Rv32Kernel, CliError> {
    Rv32Kernel::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            let names = Rv32Kernel::ALL.map(Rv32Kernel::name);
            format!(
                "no rv32i port of kernel `{name}` (rv32i kernels: {})",
                names.join("|")
            )
            .into()
        })
}

/// Builds a named kernel under the selected ISA: the Table 2 suite for
/// the native ISA, the hand-ported RV32I kernels for rv32i.
fn build_kernel(isa: IsaId, name: &str, scale: u32) -> Result<Program, CliError> {
    match isa {
        IsaId::Native => Ok(kernel_by_name(name)?.build(scale)),
        IsaId::Rv32i => Ok(rv32_kernel_by_name(name)?.build(scale)),
    }
}

/// Loads a program file through the selected ISA frontend: `.bin` files
/// as flat text-segment images, anything else as assembler source.
fn load_file(isa: IsaId, path: &str) -> Result<Program, CliError> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".bin") {
        return isa
            .frontend()
            .load_flat(&bytes)
            .map_err(|(off, e)| format!("{path}: byte offset {off}: {e}").into());
    }
    let source = String::from_utf8(bytes).map_err(|_| {
        format!("{path} is not UTF-8 assembler source (flat binaries need a `.bin` extension)")
    })?;
    Ok(isa.frontend().assemble(&source)?)
}

/// Resolves the program-selection flags shared by every subcommand
/// (positional file, `--kernel`, `--scale`, `--isa`) into a program.
/// Kernel names resolve *after* the argument loop so `--kernel` and
/// `--isa` compose in either order.
fn load_program(
    isa: IsaId,
    file: Option<String>,
    kernel: Option<String>,
    scale: u32,
    default_kernel: Option<&str>,
) -> Result<Program, CliError> {
    match (file, kernel) {
        (Some(_), Some(_)) => Err("give a file or --kernel, not both".into()),
        (Some(path), None) => load_file(isa, &path),
        (None, Some(name)) => build_kernel(isa, &name, scale),
        (None, None) => match default_kernel {
            Some(name) => build_kernel(isa, name, scale),
            None => Err("give an assembly file or --kernel NAME".into()),
        },
    }
}

/// Resolves a user-supplied name against a candidate list, accepting
/// exact names and unique prefixes. All `--scheme` flags funnel through
/// this, so every front end shares one error shape and the accepted set
/// is derived from the registry rather than hand-written per command.
fn resolve<'a>(what: &str, input: &str, names: &[&'a str]) -> Result<&'a str, CliError> {
    if let Some(exact) = names.iter().find(|n| **n == input) {
        return Ok(exact);
    }
    let matches: Vec<&str> = if input.is_empty() {
        Vec::new()
    } else {
        names
            .iter()
            .copied()
            .filter(|n| n.starts_with(input))
            .collect()
    };
    match matches[..] {
        [only] => Ok(only),
        [] => Err(format!("unknown {what} `{input}`, want {}", names.join("|")).into()),
        _ => Err(format!("ambiguous {what} `{input}`: matches {}", matches.join(", ")).into()),
    }
}

/// Parses a detection-scheme name from the registry.
fn parse_scheme(input: &str) -> Result<Scheme, CliError> {
    let names = Scheme::ALL.map(Scheme::name);
    let name = resolve("scheme", input, &names)?;
    Ok(Scheme::parse(name).expect("resolved name is registered"))
}

/// Parses an instruction-set name from the ISA registry, accepting
/// exact names and unique prefixes like `--scheme` does.
fn parse_isa(input: &str) -> Result<IsaId, CliError> {
    let names = IsaId::ALL.map(IsaId::name);
    let name = resolve("isa", input, &names)?;
    Ok(IsaId::parse(name).expect("resolved name is registered"))
}

/// The `run` subcommand's scheme set: the registry plus the functional
/// emulator (which has no timing model and so is not a [`Scheme`]).
fn run_scheme_names() -> Vec<&'static str> {
    let mut names = vec!["emulate"];
    names.extend(Scheme::ALL.map(Scheme::name));
    names
}

fn parse_fault(spec: &str) -> Result<InjectedFault, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("bad fault spec `{spec}`, want SEQ:BIT:p|r").into());
    }
    let seq: u64 = parts[0].parse()?;
    let bit: u8 = parts[1].parse()?;
    Ok(match parts[2] {
        "p" => InjectedFault::primary(seq, bit),
        "r" => InjectedFault::redundant(seq, bit),
        "perm" => InjectedFault::permanent(seq, bit),
        other => return Err(format!("bad stream `{other}`, want p, r, or perm").into()),
    })
}

struct RunOpts {
    program: Program,
    scheme: String,
    base: PipelineConfig,
    spare_alus: u32,
    spare_muls: u32,
    rqueue: usize,
    early_removal: bool,
    dup_period: u64,
    faults: Vec<InjectedFault>,
    max_insns: u64,
    skip: u64,
    verbose: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    metrics_interval: u64,
}

impl RunOpts {
    /// A collecting tracer when any observability output was requested;
    /// `None` keeps the simulators on the statically-dispatched no-op
    /// path.
    fn tracer(&self) -> Option<Tracer> {
        (self.trace_out.is_some() || self.metrics_out.is_some())
            .then(|| Tracer::new().with_interval(self.metrics_interval))
    }
}

/// Writes a captured pipetrace: `.txt` → compact text, anything else →
/// Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
fn write_trace(path: &str, ring: &TraceRing) -> Result<(), CliError> {
    let body = if path.ends_with(".txt") {
        ring.to_pipetrace_text()
    } else {
        ring.to_chrome_json()
    };
    std::fs::write(path, body)?;
    println!(
        "trace written to {path}: {} events ({} dropped)",
        ring.len(),
        ring.dropped()
    );
    Ok(())
}

/// Writes a metrics series: `.json` → JSON, anything else → CSV.
fn write_metrics(path: &str, metrics: &MetricsSeries) -> Result<(), CliError> {
    let body = if path.ends_with(".json") {
        metrics.to_json()
    } else {
        metrics.to_csv()
    };
    std::fs::write(path, body)?;
    println!(
        "metrics written to {path}: {} intervals of {} cycles",
        metrics.rows.len(),
        metrics.interval
    );
    Ok(())
}

/// Flushes a finished run's tracer to the requested output files.
fn write_observability(
    tracer: Option<Tracer>,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
) -> Result<(), CliError> {
    let Some(mut t) = tracer else {
        return Ok(());
    };
    t.finish();
    let (ring, metrics) = t.into_parts();
    if let Some(path) = trace_out {
        write_trace(path, &ring)?;
    }
    if let Some(path) = metrics_out {
        write_metrics(path, &metrics)?;
    }
    Ok(())
}

/// Parses a flag value that must be a strictly positive integer.
///
/// Zero is rejected here, at parse time, because it would otherwise
/// degrade silently far from the command line: `-j 0` quietly runs on
/// one worker, `--metrics-interval 0` makes the tracer sample every
/// cycle, and `--intervals 0` collapses a sharded run to one interval.
fn positive<T: TryFrom<u64>>(flag: &str, raw: &str) -> Result<T, CliError> {
    let v: u64 = raw
        .parse()
        .map_err(|_| format!("`{flag}` expects a positive integer, got `{raw}`"))?;
    if v == 0 {
        return Err(format!("`{flag}` must be at least 1").into());
    }
    T::try_from(v).map_err(|_| format!("`{flag}` value `{raw}` is out of range").into())
}

/// Rejects inconsistent machine-geometry overrides at parse time, so
/// a bad `--ruu-size`/`--lsq-size` pair surfaces as a CLI error instead
/// of an `assert!` deep inside `PipelineConfig::validate`.
fn check_geometry(base: &PipelineConfig) -> Result<(), CliError> {
    if base.lsq_size > base.ruu_size {
        return Err(format!(
            "`--lsq-size` ({}) must not exceed the RUU size ({}) — the LSQ tracks a subset of the RUU window",
            base.lsq_size, base.ruu_size
        )
        .into());
    }
    Ok(())
}

fn parse_run(args: &[String]) -> Result<RunOpts, CliError> {
    let mut opts = RunOpts {
        program: Program::from_text(vec![]),
        scheme: "baseline".into(),
        base: PipelineConfig::starting(),
        spare_alus: 0,
        spare_muls: 0,
        rqueue: 32,
        early_removal: false,
        dup_period: 1,
        faults: Vec::new(),
        max_insns: u64::MAX,
        skip: 0,
        verbose: false,
        trace_out: None,
        metrics_out: None,
        metrics_interval: Tracer::DEFAULT_INTERVAL,
    };
    let mut file: Option<String> = None;
    let mut kernel: Option<String> = None;
    let mut scale: u32 = 1;
    let mut isa = IsaId::Native;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| format!("`{a}` needs a value").into())
        };
        match a.as_str() {
            "--scheme" => opts.scheme = resolve("scheme", value()?, &run_scheme_names())?.into(),
            "--isa" => isa = parse_isa(value()?)?,
            "--machine" => opts.base = machine(value()?)?,
            "--ruu-size" => opts.base.ruu_size = positive(a, value()?)?,
            "--lsq-size" => opts.base.lsq_size = positive(a, value()?)?,
            "--width" => opts.base.width = positive(a, value()?)?,
            "--spare-alus" => opts.spare_alus = value()?.parse()?,
            "--spare-muls" => opts.spare_muls = value()?.parse()?,
            "--rqueue" => opts.rqueue = value()?.parse()?,
            "--early-removal" => opts.early_removal = true,
            "--dup-period" => opts.dup_period = value()?.parse()?,
            "--inject" => opts.faults.push(parse_fault(value()?)?),
            "--max-insns" => opts.max_insns = value()?.parse()?,
            "--skip" => opts.skip = value()?.parse()?,
            "--stats" => opts.verbose = true,
            "--kernel" => kernel = Some(value()?.clone()),
            "--scale" => scale = value()?.parse()?,
            "--trace-out" => opts.trace_out = Some(value()?.clone()),
            "--metrics-out" => opts.metrics_out = Some(value()?.clone()),
            "--metrics-interval" => opts.metrics_interval = positive(a, value()?)?,
            other if !other.starts_with("--") => file = Some(other.to_string()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    opts.program = load_program(isa, file, kernel, scale, None)?;
    check_geometry(&opts.base)?;
    Ok(opts)
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let o = parse_run(args)?;
    match o.scheme.as_str() {
        "emulate" => {
            if o.trace_out.is_some() || o.metrics_out.is_some() {
                return Err("--trace-out/--metrics-out need a timing scheme, not emulate".into());
            }
            let mut emu = Emulator::new(&o.program);
            let r = emu.run(o.max_insns)?;
            println!(
                "emulated {} instructions, stop: {:?}",
                r.instructions, r.stop
            );
            print_output(&r.output);
        }
        "baseline" => {
            let mut tracer = o.tracer();
            let r = match &mut tracer {
                Some(t) => {
                    PipelineSim::new(o.base).run_observed(&o.program, o.skip, o.max_insns, t)?
                }
                None => PipelineSim::new(o.base).run_region(&o.program, o.skip, o.max_insns)?,
            };
            println!(
                "baseline: {} instructions in {} cycles — IPC {:.3}",
                r.committed_instructions(),
                r.cycles(),
                r.ipc()
            );
            print_output(&r.output);
            if o.verbose {
                print!("{}", r.stats);
            } else {
                print_pipeline_stats(&r.stats);
            }
            write_observability(tracer, o.trace_out.as_deref(), o.metrics_out.as_deref())?;
        }
        "duplex" => {
            let mut tracer = o.tracer();
            let r = match &mut tracer {
                Some(t) => DuplexSim::new(o.base).run_limit_observed(&o.program, o.max_insns, t)?,
                None => DuplexSim::new(o.base).run_limit(&o.program, o.max_insns)?,
            };
            println!(
                "dispatch duplication: {} instructions in {} cycles — IPC {:.3}, {} comparisons",
                r.committed_instructions(),
                r.cycles(),
                r.ipc(),
                r.stats.comparisons
            );
            print_output(&r.output);
            write_observability(tracer, o.trace_out.as_deref(), o.metrics_out.as_deref())?;
        }
        "reese" => {
            let mut tracer = o.tracer();
            let cfg = ReeseConfig::over(o.base)
                .with_spare_int_alus(o.spare_alus)
                .with_spare_int_muldivs(o.spare_muls)
                .with_rqueue_size(o.rqueue)
                .with_early_removal(o.early_removal)
                .with_duplication_period(o.dup_period);
            let r = match &mut tracer {
                Some(t) => {
                    // run_region drops faults when skipping; mirror that so the
                    // traced and untraced paths simulate the same run.
                    let faults: &[InjectedFault] = if o.skip > 0 { &[] } else { &o.faults };
                    ReeseSim::new(cfg).run_with_faults_observed(
                        &o.program,
                        faults,
                        o.skip,
                        o.max_insns,
                        t,
                    )?
                }
                None if o.skip > 0 => {
                    ReeseSim::new(cfg).run_region(&o.program, o.skip, o.max_insns)?
                }
                None => ReeseSim::new(cfg).run_with_faults(&o.program, &o.faults, o.max_insns)?,
            };
            println!(
                "REESE: {} instructions in {} cycles — IPC {:.3}, {} comparisons, {} detections",
                r.committed_instructions(),
                r.cycles(),
                r.ipc(),
                r.stats.comparisons,
                r.stats.detections
            );
            for d in &r.detections {
                println!(
                    "  soft error detected: instruction #{} at pc {:#x}, latency {} cycles",
                    d.seq,
                    d.pc,
                    d.latency()
                );
            }
            print_output(&r.output);
            if o.verbose {
                print!("{}", r.stats);
            } else {
                print_pipeline_stats(&r.stats.pipeline);
            }
            write_observability(tracer, o.trace_out.as_deref(), o.metrics_out.as_deref())?;
        }
        name @ ("meek" | "swift") => {
            let scheme = Scheme::parse(name).expect("registry name");
            if o.trace_out.is_some() || o.metrics_out.is_some() {
                return Err(
                    format!("--trace-out/--metrics-out are not supported for `{name}`").into(),
                );
            }
            if !o.faults.is_empty() || o.skip > 0 {
                return Err(format!(
                    "`{name}` runs clean here; inject faults with `reese campaign --scheme {name}`"
                )
                .into());
            }
            let cfg = ReeseConfig::over(o.base);
            let backend = reese::faults::schemes::build(scheme, &cfg);
            let prepared = backend.prepare(&o.program)?;
            let r = backend.run_limit(&prepared, o.max_insns)?;
            println!(
                "{name}: {} instructions in {} cycles — IPC {:.3}",
                r.committed,
                r.cycles,
                r.committed as f64 / r.cycles.max(1) as f64
            );
            if prepared.len() != o.program.len() {
                println!(
                    "  transformed program: {} → {} static instructions ({:.2}x)",
                    o.program.len(),
                    prepared.len(),
                    prepared.len() as f64 / o.program.len().max(1) as f64
                );
            }
            print_output(&r.output);
        }
        other => return Err(format!("unknown scheme `{other}`").into()),
    }
    Ok(())
}

struct CampaignOpts {
    program: Program,
    scale: u32,
    scheme: Scheme,
    mix: reese::faults::FaultMix,
    trials: usize,
    seed: u64,
    base: PipelineConfig,
    spare_alus: u32,
    spare_muls: u32,
    max_insns: u64,
    jobs: usize,
    engine: reese::faults::TrialEngine,
    ckpt_every: u64,
    outcomes_jsonl: Option<String>,
    resume: Option<String>,
    trial_limit: Option<usize>,
    out: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    metrics_interval: u64,
    telemetry_out: Option<String>,
}

fn parse_campaign(args: &[String]) -> Result<CampaignOpts, CliError> {
    let mut opts = CampaignOpts {
        program: Program::from_text(vec![]),
        scale: 1,
        scheme: Scheme::Reese,
        mix: reese::faults::FaultMix::broad(),
        trials: 200,
        seed: 0xFA017,
        base: PipelineConfig::starting(),
        spare_alus: 0,
        spare_muls: 0,
        max_insns: u64::MAX,
        jobs: reese::stats::available_jobs(),
        engine: reese::faults::TrialEngine::Replay,
        ckpt_every: reese::faults::DEFAULT_CKPT_EVERY,
        outcomes_jsonl: None,
        resume: None,
        trial_limit: None,
        out: None,
        trace_out: None,
        metrics_out: None,
        metrics_interval: Tracer::DEFAULT_INTERVAL,
        telemetry_out: None,
    };
    let mut file: Option<String> = None;
    let mut kernel: Option<String> = None;
    let mut isa = IsaId::Native;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| format!("`{a}` needs a value").into())
        };
        match a.as_str() {
            "--trials" | "--injections" => opts.trials = value()?.parse()?,
            "--isa" => isa = parse_isa(value()?)?,
            "--scale" => opts.scale = positive(a, value()?)?,
            "--scheme" => opts.scheme = parse_scheme(value()?)?,
            "--seed" => opts.seed = value()?.parse()?,
            "--mix" => {
                opts.mix = match value()?.as_str() {
                    "broad" => reese::faults::FaultMix::broad(),
                    "result" => reese::faults::FaultMix::result_errors_only(),
                    other => return Err(format!("unknown mix `{other}`, want broad|result").into()),
                }
            }
            "--machine" => opts.base = machine(value()?)?,
            "--ruu-size" => opts.base.ruu_size = positive(a, value()?)?,
            "--lsq-size" => opts.base.lsq_size = positive(a, value()?)?,
            "--width" => opts.base.width = positive(a, value()?)?,
            "--spare-alus" => opts.spare_alus = value()?.parse()?,
            "--spare-muls" => opts.spare_muls = value()?.parse()?,
            "--max-insns" => opts.max_insns = value()?.parse()?,
            "-j" | "--jobs" => opts.jobs = positive(a, value()?)?,
            "--engine" => opts.engine = value()?.parse::<reese::faults::TrialEngine>()?,
            "--ckpt-every" => opts.ckpt_every = positive(a, value()?)?,
            "--outcomes-jsonl" => opts.outcomes_jsonl = Some(value()?.clone()),
            "--resume" => opts.resume = Some(value()?.clone()),
            "--trial-limit" => opts.trial_limit = Some(positive(a, value()?)?),
            "--out" => opts.out = Some(value()?.clone()),
            "--trace-out" => opts.trace_out = Some(value()?.clone()),
            "--metrics-out" => opts.metrics_out = Some(value()?.clone()),
            "--metrics-interval" => opts.metrics_interval = positive(a, value()?)?,
            "--telemetry-out" => opts.telemetry_out = Some(value()?.clone()),
            "--kernel" => kernel = Some(value()?.clone()),
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    if opts.resume.is_some() && opts.outcomes_jsonl.is_some() {
        return Err("`--resume` already appends to its log; drop `--outcomes-jsonl`".into());
    }
    opts.program = load_program(isa, file, kernel, opts.scale, Some("lisp"))?;
    check_geometry(&opts.base)?;
    Ok(opts)
}

fn cmd_campaign(args: &[String]) -> Result<(), CliError> {
    let o = parse_campaign(args)?;
    if o.trace_out.is_some() && o.scheme != Scheme::Reese {
        return Err(
            "--trace-out traces the clean REESE reference run; it needs --scheme reese".into(),
        );
    }
    let cfg = ReeseConfig::over(o.base)
        .with_spare_int_alus(o.spare_alus)
        .with_spare_int_muldivs(o.spare_muls);
    let mut campaign = reese::faults::Campaign::new(cfg.clone(), o.mix)
        .scheme(o.scheme)
        .trials(o.trials)
        .seed(o.seed)
        .max_instructions(o.max_insns)
        .jobs(o.jobs)
        .engine(o.engine)
        .ckpt_every(o.ckpt_every)
        .metrics_interval(if o.metrics_out.is_some() {
            o.metrics_interval
        } else {
            0
        });
    if let Some(path) = &o.outcomes_jsonl {
        campaign = campaign.outcomes_jsonl(path);
    }
    if let Some(path) = &o.resume {
        campaign = campaign.resume(path);
    }
    if let Some(n) = o.trial_limit {
        campaign = campaign.trial_limit(n);
    }
    if let Some(path) = &o.telemetry_out {
        campaign = campaign.telemetry_out(path);
    }
    let report = campaign.run(&o.program)?;
    print!("{report}");
    if let Some(path) = &o.out {
        let serialised = if path.ends_with(".json") {
            report.to_json()
        } else {
            report.to_csv()
        };
        std::fs::write(path, serialised)?;
        println!("report written to {path}");
    }
    if let Some(path) = &o.metrics_out {
        let Some(metrics) = &report.metrics else {
            return Err("campaign produced no metrics (no simulated trials?)".into());
        };
        write_metrics(path, metrics)?;
    }
    if let Some(path) = &o.trace_out {
        // The campaign itself runs thousands of short trials; a pipetrace
        // of all of them would be meaningless. Trace the clean (fault-free)
        // reference run instead, which every trial is compared against.
        let mut tracer = Tracer::new().with_interval(o.metrics_interval);
        ReeseSim::new(cfg).run_with_faults_observed(
            &o.program,
            &[],
            0,
            o.max_insns,
            &mut tracer,
        )?;
        tracer.finish();
        let (ring, _) = tracer.into_parts();
        write_trace(path, &ring)?;
    }
    Ok(())
}

struct SchemesOpts {
    programs: Vec<(String, Program)>,
    mix: reese::faults::FaultMix,
    base: PipelineConfig,
    eval: EvalOptions,
    csv: Option<String>,
    json: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    metrics_interval: u64,
}

fn parse_schemes(args: &[String]) -> Result<SchemesOpts, CliError> {
    let mut opts = SchemesOpts {
        programs: Vec::new(),
        mix: reese::faults::FaultMix::result_errors_only(),
        base: PipelineConfig::starting(),
        eval: EvalOptions::default(),
        csv: None,
        json: None,
        trace_out: None,
        metrics_out: None,
        metrics_interval: Tracer::DEFAULT_INTERVAL,
    };
    let mut kernels: Vec<String> = Vec::new();
    let mut scale: u32 = 1;
    let mut target: Option<u64> = None;
    let mut isa = IsaId::Native;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| format!("`{a}` needs a value").into())
        };
        match a.as_str() {
            "--kernel" => kernels.push(value()?.clone()),
            "--isa" => isa = parse_isa(value()?)?,
            "--scale" => scale = positive(a, value()?)?,
            "--target" => target = Some(positive(a, value()?)?),
            "--trials" => opts.eval.trials = positive(a, value()?)?,
            "--seed" => opts.eval.seed = value()?.parse()?,
            "--mix" => {
                opts.mix = match value()?.as_str() {
                    "broad" => reese::faults::FaultMix::broad(),
                    "result" => reese::faults::FaultMix::result_errors_only(),
                    other => return Err(format!("unknown mix `{other}`, want broad|result").into()),
                }
            }
            "--machine" => opts.base = machine(value()?)?,
            "--ruu-size" => opts.base.ruu_size = positive(a, value()?)?,
            "--lsq-size" => opts.base.lsq_size = positive(a, value()?)?,
            "--width" => opts.base.width = positive(a, value()?)?,
            "--max-insns" => opts.eval.max_instructions = value()?.parse()?,
            "-j" | "--jobs" => opts.eval.jobs = positive(a, value()?)?,
            "--engine" => opts.eval.engine = value()?.parse::<reese::faults::TrialEngine>()?,
            "--csv" => opts.csv = Some(value()?.clone()),
            "--json" => opts.json = Some(value()?.clone()),
            "--trace-out" => opts.trace_out = Some(value()?.clone()),
            "--metrics-out" => opts.metrics_out = Some(value()?.clone()),
            "--metrics-interval" => opts.metrics_interval = positive(a, value()?)?,
            "--telemetry-out" => opts.eval.telemetry_out = Some(value()?.clone().into()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    check_geometry(&opts.base)?;
    if scale != 1 && target.is_some() {
        return Err("give --scale or --target, not both".into());
    }
    if target.is_some() && isa != IsaId::Native {
        return Err(
            "--target calibrates the native Table 2 suite; rv32i ports take --scale".into(),
        );
    }
    if kernels.is_empty() {
        // Default is the whole catalogue for the selected ISA: the
        // Table 2 suite in table order, or every rv32i port.
        kernels = match isa {
            IsaId::Native => Kernel::ALL.map(|k| k.name().to_string()).to_vec(),
            IsaId::Rv32i => Rv32Kernel::ALL.map(|k| k.name().to_string()).to_vec(),
        };
    }
    opts.programs = kernels
        .into_iter()
        .map(|name| match isa {
            IsaId::Native => {
                let k = kernel_by_name(&name)?;
                let program = match target {
                    Some(t) => k.build_for(t),
                    None => k.build(scale),
                };
                Ok((k.name().to_string(), program))
            }
            IsaId::Rv32i => {
                let k = rv32_kernel_by_name(&name)?;
                Ok((k.name().to_string(), k.build(scale)))
            }
        })
        .collect::<Result<_, CliError>>()?;
    Ok(opts)
}

fn cmd_schemes(args: &[String]) -> Result<(), CliError> {
    let o = parse_schemes(args)?;
    let cfg = ReeseConfig::over(o.base);
    let report = SchemesReport::evaluate(&cfg, &o.mix, &o.programs, &o.eval)?;
    print!("{report}");
    if let Some(path) = &o.csv {
        std::fs::write(path, report.to_csv())?;
        println!("csv written to {path}");
    }
    if let Some(path) = &o.json {
        std::fs::write(path, report.to_json())?;
        println!("json written to {path}");
    }
    if o.trace_out.is_some() || o.metrics_out.is_some() {
        // As for `campaign --trace-out`: per-trial traces would be
        // noise, so trace the clean REESE reference run — here once per
        // evaluated kernel, stitched end-to-end with cycle offsets.
        let mut ring = TraceRing::new(Tracer::DEFAULT_RING_CAPACITY);
        let mut metrics = MetricsSeries::default();
        let mut offset = 0u64;
        for (name, program) in &o.programs {
            let mut tracer = Tracer::new().with_interval(o.metrics_interval);
            let r = ReeseSim::new(cfg.clone()).run_with_faults_observed(
                program,
                &[],
                0,
                o.eval.max_instructions,
                &mut tracer,
            )?;
            tracer.finish();
            let (kernel_ring, kernel_metrics) = tracer.into_parts();
            ring.merge_concat(&kernel_ring, offset);
            metrics.merge_concat(&kernel_metrics, offset);
            offset += r.stats.pipeline.cycles;
            println!(
                "traced clean reese run on {name} ({} cycles)",
                r.stats.pipeline.cycles
            );
        }
        if let Some(path) = &o.trace_out {
            write_trace(path, &ring)?;
        }
        if let Some(path) = &o.metrics_out {
            write_metrics(path, &metrics)?;
        }
    }
    Ok(())
}

struct ExplainOpts {
    program: Program,
    scheme: Scheme,
    base: PipelineConfig,
    spare_alus: u32,
    spare_muls: u32,
    outcomes: String,
    which: reese::faults::TrialRef,
    out: Option<String>,
    trace_out: Option<String>,
}

fn parse_explain(args: &[String]) -> Result<ExplainOpts, CliError> {
    let mut opts = ExplainOpts {
        program: Program::from_text(vec![]),
        scheme: Scheme::Reese,
        base: PipelineConfig::starting(),
        spare_alus: 0,
        spare_muls: 0,
        outcomes: String::new(),
        which: reese::faults::TrialRef::Index(0),
        out: None,
        trace_out: None,
    };
    let mut file: Option<String> = None;
    let mut kernel: Option<String> = None;
    let mut scale: u32 = 1;
    let mut isa = IsaId::Native;
    let mut which: Option<reese::faults::TrialRef> = None;
    let mut outcomes: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| format!("`{a}` needs a value").into())
        };
        match a.as_str() {
            "--outcomes" => outcomes = Some(value()?.clone()),
            "--isa" => isa = parse_isa(value()?)?,
            "--trial" => {
                which = Some(reese::faults::TrialRef::Index(value()?.parse()?));
            }
            "--id" => {
                let raw = value()?;
                let id = match raw.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16)?,
                    None => raw.parse()?,
                };
                which = Some(reese::faults::TrialRef::Id(id));
            }
            "--scheme" => opts.scheme = parse_scheme(value()?)?,
            "--machine" => opts.base = machine(value()?)?,
            "--ruu-size" => opts.base.ruu_size = positive(a, value()?)?,
            "--lsq-size" => opts.base.lsq_size = positive(a, value()?)?,
            "--width" => opts.base.width = positive(a, value()?)?,
            "--spare-alus" => opts.spare_alus = value()?.parse()?,
            "--spare-muls" => opts.spare_muls = value()?.parse()?,
            "--scale" => scale = positive(a, value()?)?,
            "--kernel" => kernel = Some(value()?.clone()),
            "--out" => opts.out = Some(value()?.clone()),
            "--trace-out" => opts.trace_out = Some(value()?.clone()),
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    opts.outcomes = outcomes.ok_or("`explain` needs --outcomes <campaign log>")?;
    opts.which = which.ok_or("address the trial with --trial <index> or --id <stable id>")?;
    opts.program = load_program(isa, file, kernel, scale, Some("lisp"))?;
    check_geometry(&opts.base)?;
    Ok(opts)
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let o = parse_explain(args)?;
    let cfg = ReeseConfig::over(o.base)
        .with_spare_int_alus(o.spare_alus)
        .with_spare_int_muldivs(o.spare_muls);
    let ex = reese::faults::explain_trial(
        &cfg,
        o.scheme,
        &o.program,
        std::path::Path::new(&o.outcomes),
        o.which,
    )?;
    print!("{}", ex.text);
    if let Some(path) = &o.out {
        std::fs::write(path, &ex.text)?;
        println!("forensic timeline written to {path}");
    }
    if let Some(path) = &o.trace_out {
        std::fs::write(path, ex.to_chrome_json())?;
        println!("forensic trace written to {path}");
    }
    Ok(())
}

struct ShardCliOpts {
    program: Program,
    scheme: Scheme,
    base: PipelineConfig,
    shard: ShardOptions,
    out: Option<String>,
    snapshot: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_shard(args: &[String]) -> Result<ShardCliOpts, CliError> {
    let mut opts = ShardCliOpts {
        program: Program::from_text(vec![]),
        scheme: Scheme::Reese,
        base: PipelineConfig::starting(),
        shard: ShardOptions::default(),
        out: None,
        snapshot: None,
        trace_out: None,
        metrics_out: None,
    };
    let mut file: Option<String> = None;
    let mut kernel: Option<String> = None;
    let mut scale: u32 = 1;
    let mut isa = IsaId::Native;
    let mut metrics_interval = Tracer::DEFAULT_INTERVAL;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| format!("`{a}` needs a value").into())
        };
        match a.as_str() {
            "--intervals" => opts.shard.intervals = positive(a, value()?)?,
            "--isa" => isa = parse_isa(value()?)?,
            "-j" | "--jobs" => opts.shard.jobs = positive(a, value()?)?,
            "--warmup" => opts.shard.warmup = value()?.parse()?,
            "--no-verify" => opts.shard.compare_monolithic = false,
            "--scheme" => {
                let s = parse_scheme(value()?)?;
                if !s.shardable() {
                    let shardable: Vec<&str> = Scheme::ALL
                        .into_iter()
                        .filter(|s| s.shardable())
                        .map(Scheme::name)
                        .collect();
                    return Err(format!(
                        "scheme `{s}` has no interval timing machine; shardable schemes: {}",
                        shardable.join("|")
                    )
                    .into());
                }
                opts.scheme = s;
            }
            "--machine" => opts.base = machine(value()?)?,
            "--ruu-size" => opts.base.ruu_size = positive(a, value()?)?,
            "--lsq-size" => opts.base.lsq_size = positive(a, value()?)?,
            "--width" => opts.base.width = positive(a, value()?)?,
            "--out" => opts.out = Some(value()?.clone()),
            "--snapshot" => opts.snapshot = Some(value()?.clone()),
            "--trace-out" => opts.trace_out = Some(value()?.clone()),
            "--metrics-out" => opts.metrics_out = Some(value()?.clone()),
            "--metrics-interval" => metrics_interval = positive(a, value()?)?,
            "--kernel" => kernel = Some(value()?.clone()),
            "--scale" => scale = value()?.parse()?,
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        opts.shard.metrics_interval = metrics_interval;
    }
    opts.program = load_program(isa, file, kernel, scale, Some("lisp"))?;
    check_geometry(&opts.base)?;
    Ok(opts)
}

fn cmd_shard(args: &[String]) -> Result<(), CliError> {
    let o = parse_shard(args)?;
    let config = ReeseConfig::over(o.base);
    let report = ckpt::run_sharded(&o.program, &config, o.scheme, &o.shard)?;

    println!(
        "sharded {} run: {} instructions over {} intervals on {} jobs (warmup {})",
        report.scheme.name(),
        report.total_instructions,
        report.intervals.len(),
        o.shard.jobs,
        o.shard.warmup
    );
    for (i, iv) in report.intervals.iter().enumerate() {
        println!(
            "  interval {i}: start {:>10}, {:>9} instructions, {:>9} cycles{}",
            iv.start,
            iv.instructions,
            iv.cycles,
            if iv.warmed { ", warmed" } else { "" }
        );
    }
    println!(
        "stitched: {} cycles — IPC {:.3}; {} checkpoint bytes shipped, pool utilisation {:.0}%",
        report.sharded_cycles,
        report.ipc(),
        report.checkpoint_bytes,
        report.parallel.utilisation() * 100.0
    );
    let oracle = &report.oracle;
    println!(
        "oracle: instructions {}, final state {}, output {}",
        tick(oracle.instructions_match),
        tick(oracle.digest_match),
        tick(oracle.output_match)
    );
    if let (Some(mono), Some(err)) = (oracle.monolithic_cycles, oracle.cycle_error) {
        println!(
            "cycle accuracy: sharded {} vs monolithic {mono} — error {:+.3}%",
            report.sharded_cycles,
            err * 100.0
        );
    }

    if let Some(path) = &o.snapshot {
        // The first mid-run checkpoint (interval 1's start), regenerated
        // from the same deterministic fast-forward pass.
        let bounds = ckpt::boundaries(report.total_instructions, o.shard.intervals);
        let which = usize::from(bounds.len() > 1);
        let cks = ckpt::checkpoints_at(
            &o.program,
            &bounds[which..=which],
            o.shard.warmup,
            &config.pipeline,
        )?;
        // Stamp the scheme so a later restore under a different machine
        // is rejected at decode time instead of silently mis-timed.
        let ck = cks
            .into_iter()
            .next()
            .expect("one boundary requested")
            .with_scheme(o.scheme);
        std::fs::write(path, ck.encode())?;
        println!(
            "checkpoint at instruction {} written to {path}",
            ck.instructions
        );
    }
    if let Some(path) = &o.trace_out {
        let Some(ring) = &report.trace else {
            return Err("sharded run produced no trace".into());
        };
        write_trace(path, ring)?;
    }
    if let Some(path) = &o.metrics_out {
        let Some(metrics) = &report.metrics else {
            return Err("sharded run produced no metrics".into());
        };
        write_metrics(path, metrics)?;
    }
    if let Some(path) = &o.out {
        std::fs::write(path, shard_report_json(&report))?;
        println!("report written to {path}");
    }
    if !oracle.exact() {
        return Err("sharded run diverged from the monolithic run".into());
    }
    Ok(())
}

fn tick(ok: bool) -> &'static str {
    if ok {
        "exact"
    } else {
        "MISMATCH"
    }
}

fn shard_report_json(r: &ckpt::ShardReport) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scheme\": \"{}\",\n", r.scheme.name()));
    s.push_str(&format!(
        "  \"total_instructions\": {},\n  \"sharded_cycles\": {},\n  \"ipc\": {:.6},\n",
        r.total_instructions,
        r.sharded_cycles,
        r.ipc()
    ));
    s.push_str(&format!(
        "  \"checkpoint_bytes\": {},\n  \"intervals\": [\n",
        r.checkpoint_bytes
    ));
    for (i, iv) in r.intervals.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"start\": {}, \"instructions\": {}, \"cycles\": {}, \"warmed\": {}}}{}\n",
            iv.start,
            iv.instructions,
            iv.cycles,
            iv.warmed,
            if i + 1 < r.intervals.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    if let Some(m) = &r.metrics {
        s.push_str("  \"metrics\": ");
        s.push_str(m.to_json().trim_end());
        s.push_str(",\n");
    }
    s.push_str("  \"oracle\": {\n");
    s.push_str(&format!(
        "    \"instructions_match\": {},\n    \"digest_match\": {},\n    \"output_match\": {}",
        r.oracle.instructions_match, r.oracle.digest_match, r.oracle.output_match
    ));
    if let (Some(mono), Some(err)) = (r.oracle.monolithic_cycles, r.oracle.cycle_error) {
        s.push_str(&format!(
            ",\n    \"monolithic_cycles\": {mono},\n    \"cycle_error\": {err:.6}"
        ));
    }
    s.push_str("\n  }\n}\n");
    s
}

fn print_output(output: &[i64]) {
    if !output.is_empty() {
        println!("program output: {output:?}");
    }
}

fn print_pipeline_stats(s: &reese::pipeline::PipelineStats) {
    println!(
        "  branch mispredict rate {:.2}%, idle issue bandwidth {:.0}%",
        s.branch.mispredict_rate() * 100.0,
        s.idle_issue_fraction(8) * 100.0
    );
    if let Some(h) = &s.hierarchy {
        println!(
            "  L1D miss rate {:.2}%, L1I miss rate {:.2}%, L2 miss rate {:.2}%",
            h.l1d.miss_rate() * 100.0,
            h.l1i.miss_rate() * 100.0,
            h.l2.miss_rate() * 100.0
        );
    }
}

fn load_source(args: &[String]) -> Result<Program, CliError> {
    let mut isa = IsaId::Native;
    let mut source: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--isa" {
            isa = parse_isa(it.next().ok_or("`--isa` needs a value")?)?;
        } else if a == "--out" {
            it.next(); // value handled by the caller
        } else if !a.starts_with("--") && source.is_none() {
            source = Some(a);
        }
    }
    let Some(name) = source else {
        return Err("give an assembly file or kernel name".into());
    };
    if let Ok(program) = build_kernel(isa, name, 1) {
        return Ok(program);
    }
    load_file(isa, name)
}

/// `reese asm <file.s> --isa <isa> -o <file.bin>`: assembles source
/// through the selected ISA frontend and writes the flat text-segment
/// image, the format `load_flat` (and thus `reese run file.bin`)
/// accepts back.
fn cmd_asm(args: &[String]) -> Result<(), CliError> {
    let mut isa = IsaId::Native;
    let mut source: Option<&String> = None;
    let mut out: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--isa" => isa = parse_isa(it.next().ok_or("`--isa` needs a value")?)?,
            "-o" | "--out" => out = Some(it.next().ok_or("`-o` needs a value")?),
            other if !other.starts_with('-') && source.is_none() => source = Some(a),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let path = source.ok_or("give an assembly file")?;
    let out = out.ok_or("give an output path with -o <file.bin>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = isa.frontend().assemble(&text)?;
    if !program.data().is_empty() {
        return Err(format!(
            "{path}: flat binaries carry only the text segment, but this program has {} data bytes",
            program.data().len()
        )
        .into());
    }
    let image = program
        .text_image()
        .map_err(|(idx, _)| format!("{path}: instruction {idx} has no {isa} encoding"))?;
    std::fs::write(out, &image)?;
    println!(
        "{out}: {} {} instructions, {} bytes",
        program.len(),
        isa.name(),
        image.len()
    );
    Ok(())
}

fn cmd_mix(args: &[String]) -> Result<(), CliError> {
    let program = load_source(args)?;
    println!("{}", measure_mix(&program, 10_000_000));
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), CliError> {
    let program = load_source(args)?;
    print!(
        "{}",
        program
            .isa()
            .frontend()
            .disassemble_text(program.text(), program.text_base())
    );
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let program = load_source(args)?;
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1));
    let trace = reese::cpu::Trace::capture(&program, 10_000_000)?;
    let (branches, taken) = trace.branch_profile();
    println!(
        "{} dynamic instructions; {:.1}% memory; {branches} branches ({:.0}% taken);          data working set {} lines (32 B)",
        trace.len(),
        trace.mem_fraction() * 100.0,
        if branches == 0 { 0.0 } else { taken as f64 / branches as f64 * 100.0 },
        trace.data_working_set(32)
    );
    println!("hottest basic blocks:");
    for (pc, count) in trace.hot_blocks(5) {
        println!("  {pc:#010x}: {count} executions");
    }
    if let Some(path) = out {
        let file = std::fs::File::create(path)?;
        trace.write_to(std::io::BufWriter::new(file))?;
        println!("trace written to {path}");
    }
    Ok(())
}

fn cmd_kernels() -> Result<(), CliError> {
    println!("built-in kernels (SPEC95 integer stand-ins):");
    for k in Kernel::ALL {
        println!(
            "  {:<9} — stands in for {} ({})",
            k.name(),
            k.paper_benchmark(),
            k.paper_input()
        );
    }
    println!("rv32i kernel ports (select with --isa rv32i):");
    for k in Rv32Kernel::ALL {
        println!("  {:<9} — {}", k.name(), k.description());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_parse() {
        for name in ["starting", "ruu32", "wide16", "ports4"] {
            machine(name).expect(name).validate();
        }
        assert!(machine("huge").is_err());
    }

    #[test]
    fn kernels_parse_by_both_names() {
        assert_eq!(kernel_by_name("lisp").unwrap(), Kernel::Lisp);
        assert_eq!(kernel_by_name("li").unwrap(), Kernel::Lisp);
        assert_eq!(kernel_by_name("gcc").unwrap(), Kernel::Compiler);
        assert!(kernel_by_name("nope").is_err());
    }

    #[test]
    fn fault_specs_parse() {
        assert_eq!(
            parse_fault("10:3:p").unwrap(),
            InjectedFault::primary(10, 3)
        );
        assert_eq!(
            parse_fault("10:3:r").unwrap(),
            InjectedFault::redundant(10, 3)
        );
        assert_eq!(
            parse_fault("10:3:perm").unwrap(),
            InjectedFault::permanent(10, 3)
        );
        assert!(parse_fault("10:3").is_err());
        assert!(parse_fault("10:3:x").is_err());
        assert!(parse_fault("a:3:p").is_err());
    }

    #[test]
    fn run_options_parse() {
        let args: Vec<String> = [
            "--kernel",
            "perl",
            "--scheme",
            "reese",
            "--spare-alus",
            "2",
            "--rqueue",
            "64",
            "--early-removal",
            "--dup-period",
            "2",
            "--inject",
            "5:1:p",
            "--max-insns",
            "1000",
            "--skip",
            "10",
            "--stats",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.csv",
            "--metrics-interval",
            "500",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let o = parse_run(&args).unwrap();
        assert_eq!(o.scheme, "reese");
        assert_eq!(o.spare_alus, 2);
        assert_eq!(o.rqueue, 64);
        assert!(o.early_removal);
        assert_eq!(o.dup_period, 2);
        assert_eq!(o.faults.len(), 1);
        assert_eq!(o.max_insns, 1000);
        assert_eq!(o.skip, 10);
        assert!(o.verbose);
        assert!(!o.program.is_empty());
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.csv"));
        assert_eq!(o.metrics_interval, 500);
        assert!(o.tracer().is_some());
    }

    #[test]
    fn observability_flags_default_off() {
        let args: Vec<String> = ["--kernel", "strings"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let o = parse_run(&args).unwrap();
        assert!(o.trace_out.is_none() && o.metrics_out.is_none());
        assert_eq!(o.metrics_interval, Tracer::DEFAULT_INTERVAL);
        assert!(o.tracer().is_none(), "no flags → no tracer → no-op path");
    }

    #[test]
    fn shard_metrics_interval_only_applies_with_output() {
        let args: Vec<String> = ["--kernel", "strings", "--metrics-interval", "250"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let o = parse_shard(&args).unwrap();
        assert_eq!(o.shard.metrics_interval, 0, "no output flag → unobserved");
        let args: Vec<String> = [
            "--kernel",
            "strings",
            "--metrics-out",
            "m.csv",
            "--metrics-interval",
            "250",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let o = parse_shard(&args).unwrap();
        assert_eq!(o.shard.metrics_interval, 250);
        assert_eq!(o.metrics_out.as_deref(), Some("m.csv"));
    }

    #[test]
    fn campaign_options_parse() {
        let args: Vec<String> = [
            "--kernel",
            "perl",
            "--trials",
            "50",
            "--seed",
            "9",
            "--mix",
            "result",
            "-j",
            "4",
            "--max-insns",
            "5000",
            "--out",
            "report.json",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let o = parse_campaign(&args).unwrap();
        assert_eq!(o.trials, 50);
        assert_eq!(o.seed, 9);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.max_insns, 5000);
        assert_eq!(o.out.as_deref(), Some("report.json"));
        assert!(!o.program.is_empty());
    }

    #[test]
    fn campaign_defaults_to_available_parallelism() {
        let o = parse_campaign(&[]).unwrap();
        assert!(o.jobs >= 1);
        assert_eq!(o.trials, 200);
        assert!(!o.program.is_empty(), "defaults to the lisp kernel");
        assert_eq!(o.engine, reese::faults::TrialEngine::Replay);
        assert_eq!(o.ckpt_every, reese::faults::DEFAULT_CKPT_EVERY);
        assert!(o.outcomes_jsonl.is_none() && o.resume.is_none());
        assert!(o.trial_limit.is_none());
    }

    #[test]
    fn campaign_replay_flags_parse() {
        let o = parse_campaign(
            &[
                "--engine",
                "full",
                "--injections",
                "1000000",
                "--ckpt-every",
                "512",
                "--outcomes-jsonl",
                "log.jsonl",
                "--trial-limit",
                "500",
            ]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(o.engine, reese::faults::TrialEngine::Full);
        assert_eq!(o.trials, 1_000_000, "--injections aliases --trials");
        assert_eq!(o.ckpt_every, 512);
        assert_eq!(o.outcomes_jsonl.as_deref(), Some("log.jsonl"));
        assert_eq!(o.trial_limit, Some(500));
    }

    #[test]
    fn campaign_scale_grows_the_kernel() {
        let small = parse_campaign(&strings(&["--kernel", "strings"])).unwrap();
        let big = parse_campaign(&strings(&["--kernel", "strings", "--scale", "4"])).unwrap();
        assert_eq!(big.scale, 4);
        assert!(big.program.len() >= small.program.len());
        let err = parse_campaign(&strings(&["--scale", "0"]))
            .err()
            .expect("zero scale must be rejected")
            .to_string();
        assert!(
            err.contains("--scale") && err.contains("at least 1"),
            "got: {err}"
        );
    }

    #[test]
    fn campaign_bad_engine_is_rejected_at_parse_time() {
        let err = parse_campaign(&strings(&["--engine", "warp"]))
            .err()
            .expect("unknown engine must be rejected")
            .to_string();
        assert!(err.contains("unknown trial engine `warp`"), "got: {err}");
    }

    #[test]
    fn campaign_zero_ckpt_every_is_rejected_at_parse_time() {
        let err = parse_campaign(&strings(&["--ckpt-every", "0"]))
            .err()
            .expect("zero interval must be rejected")
            .to_string();
        assert!(
            err.contains("--ckpt-every") && err.contains("at least 1"),
            "got: {err}"
        );
        assert!(parse_campaign(&strings(&["--trial-limit", "0"])).is_err());
    }

    #[test]
    fn campaign_resume_excludes_outcomes_jsonl() {
        let err = parse_campaign(&strings(&[
            "--resume",
            "a.jsonl",
            "--outcomes-jsonl",
            "b.jsonl",
        ]))
        .err()
        .expect("conflicting log flags must be rejected")
        .to_string();
        assert!(err.contains("--resume"), "got: {err}");
        // Each alone is fine.
        assert_eq!(
            parse_campaign(&strings(&["--resume", "a.jsonl"]))
                .unwrap()
                .resume
                .as_deref(),
            Some("a.jsonl")
        );
    }

    #[test]
    fn scheme_names_come_from_the_registry() {
        // Every registered scheme parses in every front end that takes
        // one, with no per-command allow-list to fall out of date.
        for s in Scheme::ALL {
            let o = parse_run(&strings(&["--kernel", "strings", "--scheme", s.name()])).unwrap();
            assert_eq!(o.scheme, s.name());
            assert_eq!(
                parse_campaign(&strings(&["--scheme", s.name()]))
                    .unwrap()
                    .scheme,
                s
            );
        }
        let o = parse_run(&strings(&["--kernel", "strings", "--scheme", "emulate"])).unwrap();
        assert_eq!(o.scheme, "emulate");
    }

    #[test]
    fn unknown_scheme_errors_list_the_registry() {
        for parse in [
            parse_run(&strings(&["--kernel", "strings", "--scheme", "tmr"])),
            parse_campaign(&strings(&["--scheme", "tmr"])).map(|_| unreachable!()),
            parse_shard(&strings(&["--scheme", "tmr"])).map(|_| unreachable!()),
        ] {
            let err = parse
                .err()
                .expect("unknown scheme must be rejected")
                .to_string();
            assert!(err.contains("unknown scheme `tmr`"), "got: {err}");
            for s in Scheme::ALL {
                assert!(err.contains(s.name()), "error must offer {s}: {err}");
            }
        }
        // `emulate` is a run-only pseudo-scheme, not a detection scheme.
        assert!(parse_campaign(&strings(&["--scheme", "emulate"])).is_err());
        assert!(parse_shard(&strings(&["--scheme", "emulate"])).is_err());
    }

    #[test]
    fn scheme_prefixes_resolve_when_unambiguous() {
        let o = parse_run(&strings(&["--kernel", "strings", "--scheme", "ree"])).unwrap();
        assert_eq!(o.scheme, "reese");
        assert_eq!(
            parse_campaign(&strings(&["--scheme", "me"]))
                .unwrap()
                .scheme,
            Scheme::Meek
        );
        assert_eq!(
            parse_shard(&strings(&["--scheme", "d"])).unwrap().scheme,
            Scheme::Duplex
        );
    }

    #[test]
    fn ambiguous_names_are_rejected_not_guessed() {
        // The registry's names currently share no prefixes, so drive
        // the resolver directly with a colliding candidate set.
        let err = resolve("scheme", "re", &["reese", "replay"])
            .expect_err("shared prefix must be ambiguous")
            .to_string();
        assert!(err.contains("ambiguous scheme `re`"), "got: {err}");
        assert!(
            err.contains("reese") && err.contains("replay"),
            "got: {err}"
        );
        // The empty string prefixes everything; it must never resolve.
        assert!(resolve("scheme", "", &["reese", "replay"]).is_err());
        // Exact names win even when they prefix a longer candidate.
        assert_eq!(
            resolve("scheme", "reese", &["reese", "reese2"]).unwrap(),
            "reese"
        );
    }

    #[test]
    fn shard_rejects_unshardable_schemes() {
        for name in ["meek", "swift"] {
            let err = parse_shard(&strings(&["--scheme", name]))
                .err()
                .expect("no interval machine")
                .to_string();
            assert!(err.contains(name), "got: {err}");
            assert!(err.contains("baseline|reese|duplex"), "got: {err}");
        }
    }

    #[test]
    fn schemes_options_parse() {
        let o = parse_schemes(&strings(&[
            "--kernel", "strings", "--trials", "7", "--seed", "3", "-j", "2", "--engine", "full",
            "--csv", "s.csv", "--json", "s.json",
        ]))
        .unwrap();
        assert_eq!(o.programs.len(), 1);
        assert_eq!(o.programs[0].0, "strings");
        assert_eq!(o.eval.trials, 7);
        assert_eq!(o.eval.seed, 3);
        assert_eq!(o.eval.jobs, 2);
        assert_eq!(o.eval.engine, reese::faults::TrialEngine::Full);
        assert_eq!(o.csv.as_deref(), Some("s.csv"));
        assert_eq!(o.json.as_deref(), Some("s.json"));
        // No kernel filter → the whole suite, in registry order.
        let all = parse_schemes(&[]).unwrap();
        assert_eq!(all.programs.len(), Kernel::ALL.len());
        assert!(parse_schemes(&strings(&["--scale", "2", "--target", "100"])).is_err());
        assert!(parse_schemes(&strings(&["--trials", "0"])).is_err());
    }

    #[test]
    fn observability_flags_parse_on_campaign_and_schemes() {
        let o = parse_campaign(&strings(&["--telemetry-out", "tele.jsonl"])).unwrap();
        assert_eq!(o.telemetry_out.as_deref(), Some("tele.jsonl"));
        let o = parse_schemes(&strings(&[
            "--kernel",
            "lisp",
            "--telemetry-out",
            "tele.jsonl",
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.csv",
            "--metrics-interval",
            "500",
        ]))
        .unwrap();
        assert_eq!(
            o.eval.telemetry_out.as_deref(),
            Some(std::path::Path::new("tele.jsonl"))
        );
        assert_eq!(o.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("metrics.csv"));
        assert_eq!(o.metrics_interval, 500);
        assert!(parse_schemes(&strings(&["--metrics-interval", "0"])).is_err());
    }

    #[test]
    fn explain_options_parse() {
        let o = parse_explain(&strings(&[
            "--outcomes",
            "camp.jsonl",
            "--trial",
            "17",
            "--kernel",
            "database",
            "--scheme",
            "duplex",
            "--out",
            "story.txt",
            "--trace-out",
            "story.json",
        ]))
        .unwrap();
        assert_eq!(o.outcomes, "camp.jsonl");
        assert_eq!(o.which, reese::faults::TrialRef::Index(17));
        assert_eq!(o.scheme, Scheme::Duplex);
        assert_eq!(o.out.as_deref(), Some("story.txt"));
        assert_eq!(o.trace_out.as_deref(), Some("story.json"));
        assert!(!o.program.is_empty());
        // Stable ids parse in decimal and hex.
        let o = parse_explain(&strings(&["--outcomes", "c.jsonl", "--id", "0xFA017"])).unwrap();
        assert_eq!(o.which, reese::faults::TrialRef::Id(0xFA017));
        let o = parse_explain(&strings(&["--outcomes", "c.jsonl", "--id", "12345"])).unwrap();
        assert_eq!(o.which, reese::faults::TrialRef::Id(12345));
    }

    #[test]
    fn explain_requires_an_outcomes_log_and_a_trial_address() {
        let err = parse_explain(&strings(&["--trial", "1"]))
            .err()
            .expect("missing --outcomes must be rejected")
            .to_string();
        assert!(err.contains("--outcomes"), "got: {err}");
        let err = parse_explain(&strings(&["--outcomes", "c.jsonl"]))
            .err()
            .expect("missing trial address must be rejected")
            .to_string();
        assert!(
            err.contains("--trial") && err.contains("--id"),
            "got: {err}"
        );
    }

    #[test]
    fn isa_names_come_from_the_registry() {
        // Every registered ISA parses in every front end that loads a
        // program, in either flag order relative to --kernel.
        for isa in IsaId::ALL {
            let kernel = "lisp"; // in both catalogues
            let o = parse_run(&strings(&["--isa", isa.name(), "--kernel", kernel])).unwrap();
            assert_eq!(o.program.isa(), isa);
            let o = parse_run(&strings(&["--kernel", kernel, "--isa", isa.name()])).unwrap();
            assert_eq!(o.program.isa(), isa, "--kernel before --isa must work");
            assert_eq!(
                parse_campaign(&strings(&["--isa", isa.name()]))
                    .unwrap()
                    .program
                    .isa(),
                isa,
                "default kernel must load under the selected ISA"
            );
            assert_eq!(
                parse_shard(&strings(&["--isa", isa.name()]))
                    .unwrap()
                    .program
                    .isa(),
                isa
            );
            let o = parse_explain(&strings(&[
                "--outcomes",
                "c.jsonl",
                "--trial",
                "0",
                "--isa",
                isa.name(),
            ]))
            .unwrap();
            assert_eq!(o.program.isa(), isa);
        }
        // Unambiguous prefixes resolve; unknown names list the registry.
        let o = parse_run(&strings(&["--kernel", "lisp", "--isa", "rv"])).unwrap();
        assert_eq!(o.program.isa(), IsaId::Rv32i);
        let err = parse_run(&strings(&["--kernel", "lisp", "--isa", "arm"]))
            .err()
            .expect("unknown isa must be rejected")
            .to_string();
        assert!(err.contains("unknown isa `arm`"), "got: {err}");
        for isa in IsaId::ALL {
            assert!(err.contains(isa.name()), "error must offer {isa}: {err}");
        }
    }

    #[test]
    fn rv32i_kernels_resolve_against_the_port_catalogue() {
        // `gcc` exists in the Table 2 suite but has no rv32i port; the
        // error names the ports that do exist.
        let err = parse_campaign(&strings(&["--isa", "rv32i", "--kernel", "gcc"]))
            .err()
            .expect("unported kernel must be rejected")
            .to_string();
        assert!(err.contains("no rv32i port"), "got: {err}");
        assert!(err.contains("imaging|lisp|strings"), "got: {err}");
        // The ports themselves load and carry the rv32i stamp.
        for k in Rv32Kernel::ALL {
            let o = parse_campaign(&strings(&["--isa", "rv32i", "--kernel", k.name()])).unwrap();
            assert_eq!(o.program.isa(), IsaId::Rv32i);
            assert_eq!(o.program.inst_size(), 4);
        }
    }

    #[test]
    fn schemes_isa_selects_the_kernel_catalogue() {
        let o = parse_schemes(&strings(&["--isa", "rv32i"])).unwrap();
        assert_eq!(o.programs.len(), Rv32Kernel::ALL.len());
        for (name, program) in &o.programs {
            assert_eq!(program.isa(), IsaId::Rv32i, "kernel {name}");
        }
        // --target calibration only exists for the native suite.
        let err = parse_schemes(&strings(&["--isa", "rv32i", "--target", "100000"]))
            .err()
            .expect("--target under rv32i must be rejected")
            .to_string();
        assert!(
            err.contains("--target") && err.contains("--scale"),
            "got: {err}"
        );
    }

    #[test]
    fn flat_binaries_load_through_the_isa_frontend() {
        let frontend = IsaId::Rv32i.frontend();
        let program = frontend
            .assemble("  li a0, 7\n  li a7, 93\n  ecall\n")
            .unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("reese-cli-test-{}.bin", std::process::id()));
        std::fs::write(&path, program.text_image().unwrap()).unwrap();
        let o = parse_run(&strings(&["--isa", "rv32i", path.to_str().unwrap()])).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(o.program.isa(), IsaId::Rv32i);
        assert_eq!(o.program.text(), program.text());
        // A native loader would mis-chunk the 4-byte words; the flag
        // must reject garbage rather than mis-decode it.
        let path = dir.join(format!("reese-cli-test-native-{}.bin", std::process::id()));
        std::fs::write(&path, [0xFFu8; 8]).unwrap();
        let err = parse_run(&strings(&[path.to_str().unwrap()]))
            .err()
            .expect("garbage flat binary must be rejected")
            .to_string();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("byte offset"), "got: {err}");
    }

    #[test]
    fn asm_writes_a_flat_binary_the_loader_accepts() {
        let dir = std::env::temp_dir();
        let src = dir.join(format!("reese-asm-test-{}.s", std::process::id()));
        let bin = dir.join(format!("reese-asm-test-{}.bin", std::process::id()));
        std::fs::write(&src, "  li a0, 5\n  li a7, 93\n  ecall\n").unwrap();
        cmd_asm(&strings(&[
            src.to_str().unwrap(),
            "--isa",
            "rv32i",
            "-o",
            bin.to_str().unwrap(),
        ]))
        .unwrap();
        let o = parse_run(&strings(&["--isa", "rv32i", bin.to_str().unwrap()]));
        std::fs::remove_file(&src).ok();
        let o = o.unwrap();
        assert_eq!(o.program.isa(), IsaId::Rv32i);
        assert_eq!(o.program.len(), 3);
        // The output path is mandatory — a silent default would make
        // CI scripts guess where the binary landed.
        let err = cmd_asm(&strings(&[bin.to_str().unwrap()]))
            .expect_err("missing -o must be rejected")
            .to_string();
        std::fs::remove_file(&bin).ok();
        assert!(err.contains("-o"), "got: {err}");
    }

    #[test]
    fn missing_program_is_an_error() {
        assert!(parse_run(&[]).is_err());
        let args = vec!["--scheme".to_string(), "reese".to_string()];
        assert!(parse_run(&args).is_err());
    }

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn zero_metrics_interval_is_rejected_at_parse_time() {
        let err = parse_run(&strings(&[
            "--kernel",
            "strings",
            "--metrics-interval",
            "0",
        ]))
        .err()
        .expect("zero interval must be rejected")
        .to_string();
        assert!(err.contains("--metrics-interval"), "got: {err}");
        assert!(err.contains("at least 1"), "got: {err}");
        assert!(parse_campaign(&strings(&["--metrics-interval", "0"])).is_err());
        assert!(parse_shard(&strings(&["--metrics-interval", "0"])).is_err());
    }

    #[test]
    fn zero_jobs_is_rejected_at_parse_time() {
        for flag in ["-j", "--jobs"] {
            let err = parse_campaign(&strings(&[flag, "0"]))
                .err()
                .expect("zero jobs must be rejected")
                .to_string();
            assert!(err.contains(flag), "got: {err}");
            assert!(parse_shard(&strings(&[flag, "0"])).is_err());
        }
    }

    #[test]
    fn zero_intervals_is_rejected_at_parse_time() {
        let err = parse_shard(&strings(&["--intervals", "0"]))
            .err()
            .expect("zero intervals must be rejected")
            .to_string();
        assert!(
            err.contains("--intervals") && err.contains("at least 1"),
            "got: {err}"
        );
    }

    #[test]
    fn zero_machine_geometry_is_rejected_at_parse_time() {
        // A zero here used to survive parsing and blow up as an
        // `assert!` inside `Ruu::with_scheduler` / `Lsq::new`; all
        // three front ends must reject it with the flag name instead.
        for flag in ["--ruu-size", "--lsq-size", "--width"] {
            let err = parse_run(&strings(&["--kernel", "strings", flag, "0"]))
                .err()
                .expect("zero geometry must be rejected")
                .to_string();
            assert!(err.contains(flag), "got: {err}");
            assert!(err.contains("at least 1"), "got: {err}");
            assert!(parse_campaign(&strings(&[flag, "0"])).is_err());
            assert!(parse_shard(&strings(&[flag, "0"])).is_err());
        }
    }

    #[test]
    fn lsq_exceeding_ruu_is_rejected_at_parse_time() {
        let err = parse_run(&strings(&[
            "--kernel",
            "strings",
            "--ruu-size",
            "8",
            "--lsq-size",
            "16",
        ]))
        .err()
        .expect("LSQ > RUU must be rejected")
        .to_string();
        assert!(err.contains("--lsq-size"), "got: {err}");
        assert!(parse_campaign(&strings(&["--ruu-size", "8", "--lsq-size", "16"])).is_err());
        assert!(parse_shard(&strings(&["--ruu-size", "8", "--lsq-size", "16"])).is_err());
        // Valid overrides land in the config.
        let o = parse_run(&strings(&[
            "--kernel",
            "strings",
            "--ruu-size",
            "64",
            "--lsq-size",
            "32",
            "--width",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            (o.base.ruu_size, o.base.lsq_size, o.base.width),
            (64, 32, 4)
        );
    }

    #[test]
    fn non_numeric_positive_flags_report_the_flag_name() {
        let err = parse_campaign(&strings(&["--jobs", "many"]))
            .err()
            .expect("non-numeric jobs must be rejected")
            .to_string();
        assert!(err.contains("--jobs") && err.contains("many"), "got: {err}");
        // Valid positive values still parse.
        let o = parse_campaign(&strings(&["--jobs", "3", "--metrics-interval", "1"])).unwrap();
        assert_eq!(o.jobs, 3);
        assert_eq!(o.metrics_interval, 1);
    }
}
