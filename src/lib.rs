//! Facade crate for the REESE reproduction.
//!
//! REESE (REdundant Execution using Spare Elements — Nickel & Somani,
//! DSN 2001) detects soft errors in a superscalar processor by executing
//! every instruction twice and comparing results before commit, using
//! idle issue slots plus a small number of *spare* functional units to
//! keep the time overhead near zero.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`isa`] — the mini RISC instruction set, assembler, and program builder
//! * [`cpu`] — the functional (golden) emulator
//! * [`mem`] — caches, memory, and memory ports
//! * [`bpred`] — branch predictors
//! * [`pipeline`] — the baseline out-of-order superscalar timing simulator
//! * [`core`] — the REESE time-redundant simulator (the paper's contribution)
//! * [`faults`] — soft-error injection and detection-coverage campaigns
//! * [`workloads`] — SPEC95-integer-like synthetic kernels
//! * [`stats`] — counters, histograms, tables, and the deterministic PRNG
//! * [`trace`] — zero-cost-when-disabled pipetrace and sampled-metrics observability
//! * [`ckpt`] — binary simulator checkpoints and sharded single-run simulation
//!
//! # Quickstart
//!
//! ```
//! use reese::prelude::*;
//!
//! // Build a tiny program.
//! let program = reese::isa::assemble("  li t0, 1000\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n")?;
//!
//! // Run it on the baseline pipeline and on REESE with 2 spare ALUs.
//! let base = PipelineSim::new(PipelineConfig::starting()).run(&program)?;
//! let reese = ReeseSim::new(ReeseConfig::starting().with_spare_int_alus(2)).run(&program)?;
//!
//! // REESE executes everything twice but commits the same instructions.
//! assert_eq!(base.committed_instructions(), reese.committed_instructions());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use reese_bpred as bpred;
pub use reese_ckpt as ckpt;
pub use reese_core as core;
pub use reese_cpu as cpu;
pub use reese_faults as faults;
pub use reese_isa as isa;
pub use reese_mem as mem;
pub use reese_pipeline as pipeline;
pub use reese_stats as stats;
pub use reese_trace as trace;
pub use reese_workloads as workloads;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use reese_ckpt::{run_sharded, Checkpoint, Scheme, ShardOptions};
    pub use reese_core::{ReeseConfig, ReeseSim};
    pub use reese_cpu::Emulator;
    pub use reese_isa::{abi, assemble, Program, ProgramBuilder};
    pub use reese_pipeline::{PipelineConfig, PipelineSim};
    pub use reese_workloads::{Kernel, Suite};
}
