//! Metamorphic and golden-model properties of the execution semantics:
//! random ALU expression programs must compute exactly what an
//! independent Rust evaluation of the same expression computes.

use proptest::prelude::*;
use reese_cpu::Emulator;
use reese_isa::{abi::*, ProgramBuilder};

/// A tiny expression language mirrored by both the generated program
/// and a host-side evaluator.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Slt,
}

impl Op {
    fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Sll => a << (b & 63),
            Op::Srl => a >> (b & 63),
            Op::Slt => u64::from((a as i64) < (b as i64)),
        }
    }

    fn emit(self, b: &mut ProgramBuilder) {
        // acc (t0) = acc op operand (t1)
        match self {
            Op::Add => b.add(T0, T0, T1),
            Op::Sub => b.sub(T0, T0, T1),
            Op::Mul => b.mul(T0, T0, T1),
            Op::And => b.and(T0, T0, T1),
            Op::Or => b.or(T0, T0, T1),
            Op::Xor => b.xor(T0, T0, T1),
            Op::Sll => b.sll(T0, T0, T1),
            Op::Srl => b.srl(T0, T0, T1),
            Op::Slt => b.slt(T0, T0, T1),
        };
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Sll,
        Op::Srl,
        Op::Slt,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fold a random operand list through random operators: the machine
    /// and the host must agree bit for bit.
    #[test]
    fn alu_folds_match_host_arithmetic(
        seed in any::<i64>(),
        steps in prop::collection::vec((arb_op(), any::<i64>()), 1..24),
    ) {
        let mut b = ProgramBuilder::new();
        b.li(T0, seed);
        let mut expected = seed as u64;
        for &(op, operand) in &steps {
            b.li(T1, operand);
            op.emit(&mut b);
            expected = op.eval(expected, operand as u64);
        }
        b.print(T0);
        b.li(A0, 0);
        b.halt();
        let program = b.build().expect("builds");
        let run = Emulator::new(&program).run(10_000).expect("halts");
        prop_assert_eq!(run.output, vec![expected as i64]);
    }

    /// Memory round trip through every access width, with sign and zero
    /// extension matching the host.
    #[test]
    fn load_extension_matches_host(value in any::<i64>(), off in 0i64..64) {
        let mut b = ProgramBuilder::new();
        let buf = b.data_label("buf");
        b.space(128);
        b.la(A1, buf);
        b.li(T0, value);
        b.sd(T0, off, A1);
        b.lb(T1, off, A1);
        b.print(T1);
        b.lbu(T1, off, A1);
        b.print(T1);
        b.lh(T1, off, A1);
        b.print(T1);
        b.lhu(T1, off, A1);
        b.print(T1);
        b.lw(T1, off, A1);
        b.print(T1);
        b.lwu(T1, off, A1);
        b.print(T1);
        b.ld(T1, off, A1);
        b.print(T1);
        b.li(A0, 0);
        b.halt();
        let run = Emulator::new(&b.build().expect("builds")).run(1_000).expect("halts");
        let expected = vec![
            i64::from(value as i8),
            i64::from(value as u8),
            i64::from(value as i16),
            i64::from(value as u16),
            i64::from(value as i32),
            value as u32 as i64,
            value,
        ];
        prop_assert_eq!(run.output, expected);
    }

    /// Division conventions hold for every operand pair, including zero
    /// divisors and the wrap case.
    #[test]
    fn division_conventions_total(a in any::<i64>(), d in any::<i64>()) {
        let mut b = ProgramBuilder::new();
        b.li(T1, a);
        b.li(T2, d);
        b.div(T0, T1, T2);
        b.print(T0);
        b.rem(T0, T1, T2);
        b.print(T0);
        b.divu(T0, T1, T2);
        b.print(T0);
        b.remu(T0, T1, T2);
        b.print(T0);
        b.li(A0, 0);
        b.halt();
        let run = Emulator::new(&b.build().expect("builds")).run(1_000).expect("halts");
        let exp_div = if d == 0 { -1 } else { a.wrapping_div(d) };
        let exp_rem = if d == 0 { a } else { a.wrapping_rem(d) };
        let (ua, ud) = (a as u64, d as u64);
        let exp_divu = if ud == 0 { u64::MAX } else { ua / ud } as i64;
        let exp_remu = if ud == 0 { ua } else { ua % ud } as i64;
        prop_assert_eq!(run.output, vec![exp_div, exp_rem, exp_divu, exp_remu]);
    }

    /// Branch direction agrees with host comparison for all six
    /// conditions over arbitrary operands.
    #[test]
    fn branch_conditions_match_host(a in any::<i64>(), b_val in any::<i64>()) {
        use reese_isa::Opcode;
        let cases: [(Opcode, bool); 6] = [
            (Opcode::Beq, a == b_val),
            (Opcode::Bne, a != b_val),
            (Opcode::Blt, a < b_val),
            (Opcode::Bge, a >= b_val),
            (Opcode::Bltu, (a as u64) < (b_val as u64)),
            (Opcode::Bgeu, (a as u64) >= (b_val as u64)),
        ];
        for (op, expected_taken) in cases {
            let mut bld2 = ProgramBuilder::new();
            let yes2 = bld2.label("yes");
            bld2.li(T1, a);
            bld2.li(T2, b_val);
            match op {
                Opcode::Beq => bld2.beq(T1, T2, yes2),
                Opcode::Bne => bld2.bne(T1, T2, yes2),
                Opcode::Blt => bld2.blt(T1, T2, yes2),
                Opcode::Bge => bld2.bge(T1, T2, yes2),
                Opcode::Bltu => bld2.bltu(T1, T2, yes2),
                _ => bld2.bgeu(T1, T2, yes2),
            };
            bld2.li(A1, 0);
            bld2.print(A1);
            bld2.li(A0, 0);
            bld2.halt();
            bld2.bind(yes2);
            bld2.li(A1, 1);
            bld2.print(A1);
            bld2.li(A0, 0);
            bld2.halt();
            let run = Emulator::new(&bld2.build().expect("builds")).run(100).expect("halts");
            prop_assert_eq!(run.output, vec![i64::from(expected_taken)], "{}", op);
        }
    }
}
