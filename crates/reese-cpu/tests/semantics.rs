//! Metamorphic and golden-model properties of the execution semantics:
//! random ALU expression programs must compute exactly what an
//! independent Rust evaluation of the same expression computes.

use reese_cpu::Emulator;
use reese_isa::{abi::*, ProgramBuilder};
use reese_stats::SplitMix64;

/// A tiny expression language mirrored by both the generated program
/// and a host-side evaluator.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Slt,
}

impl Op {
    fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Sll => a << (b & 63),
            Op::Srl => a >> (b & 63),
            Op::Slt => u64::from((a as i64) < (b as i64)),
        }
    }

    fn emit(self, b: &mut ProgramBuilder) {
        // acc (t0) = acc op operand (t1)
        match self {
            Op::Add => b.add(T0, T0, T1),
            Op::Sub => b.sub(T0, T0, T1),
            Op::Mul => b.mul(T0, T0, T1),
            Op::And => b.and(T0, T0, T1),
            Op::Or => b.or(T0, T0, T1),
            Op::Xor => b.xor(T0, T0, T1),
            Op::Sll => b.sll(T0, T0, T1),
            Op::Srl => b.srl(T0, T0, T1),
            Op::Slt => b.slt(T0, T0, T1),
        };
    }
}

const ALL_OPS: [Op; 9] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Sll,
    Op::Srl,
    Op::Slt,
];

fn random_op(rng: &mut SplitMix64) -> Op {
    ALL_OPS[rng.index(ALL_OPS.len())]
}

/// Fold a random operand list through random operators: the machine
/// and the host must agree bit for bit.
#[test]
fn alu_folds_match_host_arithmetic() {
    let mut rng = SplitMix64::new(40);
    for _ in 0..128 {
        let seed = rng.next_u64() as i64;
        let steps: Vec<(Op, i64)> = (0..1 + rng.index(23))
            .map(|_| (random_op(&mut rng), rng.next_u64() as i64))
            .collect();
        let mut b = ProgramBuilder::new();
        b.li(T0, seed);
        let mut expected = seed as u64;
        for &(op, operand) in &steps {
            b.li(T1, operand);
            op.emit(&mut b);
            expected = op.eval(expected, operand as u64);
        }
        b.print(T0);
        b.li(A0, 0);
        b.halt();
        let program = b.build().expect("builds");
        let run = Emulator::new(&program).run(10_000).expect("halts");
        assert_eq!(run.output, vec![expected as i64]);
    }
}

/// Memory round trip through every access width, with sign and zero
/// extension matching the host.
#[test]
fn load_extension_matches_host() {
    let mut rng = SplitMix64::new(41);
    for _ in 0..128 {
        let value = rng.next_u64() as i64;
        let off = rng.range_u64(0, 64) as i64;
        run_load_extension_case(value, off);
    }
}

fn run_load_extension_case(value: i64, off: i64) {
    let mut b = ProgramBuilder::new();
    let buf = b.data_label("buf");
    b.space(128);
    b.la(A1, buf);
    b.li(T0, value);
    b.sd(T0, off, A1);
    b.lb(T1, off, A1);
    b.print(T1);
    b.lbu(T1, off, A1);
    b.print(T1);
    b.lh(T1, off, A1);
    b.print(T1);
    b.lhu(T1, off, A1);
    b.print(T1);
    b.lw(T1, off, A1);
    b.print(T1);
    b.lwu(T1, off, A1);
    b.print(T1);
    b.ld(T1, off, A1);
    b.print(T1);
    b.li(A0, 0);
    b.halt();
    let run = Emulator::new(&b.build().expect("builds"))
        .run(1_000)
        .expect("halts");
    let expected = vec![
        i64::from(value as i8),
        i64::from(value as u8),
        i64::from(value as i16),
        i64::from(value as u16),
        i64::from(value as i32),
        value as u32 as i64,
        value,
    ];
    assert_eq!(run.output, expected);
}

/// Division conventions hold for every operand pair, including zero
/// divisors and the wrap case.
#[test]
fn division_conventions_total() {
    let mut rng = SplitMix64::new(42);
    let mut cases: Vec<(i64, i64)> = (0..125)
        .map(|_| (rng.next_u64() as i64, rng.next_u64() as i64))
        .collect();
    // The corner cases randomness is unlikely to hit.
    cases.push((i64::MIN, -1));
    cases.push((7, 0));
    cases.push((-7, 0));
    for (a, d) in cases {
        run_division_case(a, d);
    }
}

fn run_division_case(a: i64, d: i64) {
    let mut b = ProgramBuilder::new();
    b.li(T1, a);
    b.li(T2, d);
    b.div(T0, T1, T2);
    b.print(T0);
    b.rem(T0, T1, T2);
    b.print(T0);
    b.divu(T0, T1, T2);
    b.print(T0);
    b.remu(T0, T1, T2);
    b.print(T0);
    b.li(A0, 0);
    b.halt();
    let run = Emulator::new(&b.build().expect("builds"))
        .run(1_000)
        .expect("halts");
    let exp_div = if d == 0 { -1 } else { a.wrapping_div(d) };
    let exp_rem = if d == 0 { a } else { a.wrapping_rem(d) };
    let (ua, ud) = (a as u64, d as u64);
    let exp_divu = ua.checked_div(ud).unwrap_or(u64::MAX) as i64;
    let exp_remu = ua.checked_rem(ud).unwrap_or(ua) as i64;
    assert_eq!(run.output, vec![exp_div, exp_rem, exp_divu, exp_remu]);
}

/// Branch direction agrees with host comparison for all six
/// conditions over arbitrary operands.
#[test]
fn branch_conditions_match_host() {
    let mut rng = SplitMix64::new(43);
    let mut cases: Vec<(i64, i64)> = (0..126)
        .map(|_| (rng.next_u64() as i64, rng.next_u64() as i64))
        .collect();
    cases.push((0, 0));
    cases.push((-1, 1));
    for (a, b_val) in cases {
        run_branch_case(a, b_val);
    }
}

fn run_branch_case(a: i64, b_val: i64) {
    use reese_isa::Opcode;
    let cases: [(Opcode, bool); 6] = [
        (Opcode::Beq, a == b_val),
        (Opcode::Bne, a != b_val),
        (Opcode::Blt, a < b_val),
        (Opcode::Bge, a >= b_val),
        (Opcode::Bltu, (a as u64) < (b_val as u64)),
        (Opcode::Bgeu, (a as u64) >= (b_val as u64)),
    ];
    for (op, expected_taken) in cases {
        let mut bld2 = ProgramBuilder::new();
        let yes2 = bld2.label("yes");
        bld2.li(T1, a);
        bld2.li(T2, b_val);
        match op {
            Opcode::Beq => bld2.beq(T1, T2, yes2),
            Opcode::Bne => bld2.bne(T1, T2, yes2),
            Opcode::Blt => bld2.blt(T1, T2, yes2),
            Opcode::Bge => bld2.bge(T1, T2, yes2),
            Opcode::Bltu => bld2.bltu(T1, T2, yes2),
            _ => bld2.bgeu(T1, T2, yes2),
        };
        bld2.li(A1, 0);
        bld2.print(A1);
        bld2.li(A0, 0);
        bld2.halt();
        bld2.bind(yes2);
        bld2.li(A1, 1);
        bld2.print(A1);
        bld2.li(A0, 0);
        bld2.halt();
        let run = Emulator::new(&bld2.build().expect("builds"))
            .run(100)
            .expect("halts");
        assert_eq!(run.output, vec![i64::from(expected_taken)], "{op}");
    }
}
