//! Architectural register state.

use reese_isa::{Reg, NUM_REGS};

/// The architectural state of the machine: the unified 64-entry
/// register file (32 integer + 32 FP) and the program counter.
///
/// Register `x0` is hardwired to zero: writes to it are discarded.
/// FP registers store IEEE-754 double bit patterns in their `u64` cells.
///
/// # Example
///
/// ```
/// use reese_cpu::ArchState;
/// use reese_isa::Reg;
///
/// let mut s = ArchState::new(0x1000);
/// s.write(Reg::x(5), 42);
/// s.write(Reg::ZERO, 99); // silently dropped
/// assert_eq!(s.read(Reg::x(5)), 42);
/// assert_eq!(s.read(Reg::ZERO), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; NUM_REGS as usize],
    /// Current program counter.
    pub pc: u64,
}

impl ArchState {
    /// Creates a zeroed state with the given entry PC.
    pub fn new(entry: u64) -> ArchState {
        ArchState {
            regs: [0; NUM_REGS as usize],
            pc: entry,
        }
    }

    /// Reads a register (always 0 for `x0`).
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        self.regs[r.raw() as usize]
    }

    /// Writes a register; writes to `x0` are discarded.
    #[inline]
    pub fn write(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.raw() as usize] = value;
        }
    }

    /// Reads an FP register as an `f64`.
    #[inline]
    pub fn read_f64(&self, r: Reg) -> f64 {
        f64::from_bits(self.read(r))
    }

    /// Writes an `f64` into an FP register.
    #[inline]
    pub fn write_f64(&mut self, r: Reg, value: f64) {
        self.write(r, value.to_bits());
    }

    /// The raw register file, `x0..x31` then `f0..f31`, for
    /// checkpointing.
    pub fn regs(&self) -> &[u64; NUM_REGS as usize] {
        &self.regs
    }

    /// Rebuilds a state from a raw register file and PC (the inverse of
    /// [`ArchState::regs`]). `x0` is forced back to zero so a corrupted
    /// snapshot cannot break the hardwired-zero invariant.
    pub fn from_regs(regs: [u64; NUM_REGS as usize], pc: u64) -> ArchState {
        let mut state = ArchState { regs, pc };
        state.regs[0] = 0;
        state
    }

    /// A stable digest of the full register file + PC, for equivalence
    /// tests between the emulator and the timing simulators.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the register file and PC.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01B3);
            }
        };
        for &r in &self.regs {
            mix(r);
        }
        mix(self.pc);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut s = ArchState::new(0);
        s.write(Reg::ZERO, 123);
        assert_eq!(s.read(Reg::ZERO), 0);
    }

    #[test]
    fn fp_round_trip() {
        let mut s = ArchState::new(0);
        s.write_f64(Reg::f(3), 2.75);
        assert_eq!(s.read_f64(Reg::f(3)), 2.75);
        assert_eq!(s.read(Reg::f(3)), 2.75f64.to_bits());
    }

    #[test]
    fn int_and_fp_files_disjoint() {
        let mut s = ArchState::new(0);
        s.write(Reg::x(4), 1);
        s.write(Reg::f(4), 2);
        assert_eq!(s.read(Reg::x(4)), 1);
        assert_eq!(s.read(Reg::f(4)), 2);
    }

    #[test]
    fn digest_distinguishes_states() {
        let mut a = ArchState::new(0x1000);
        let b = a.clone();
        assert_eq!(a.digest(), b.digest());
        a.write(Reg::x(31), 1);
        assert_ne!(a.digest(), b.digest());
    }
}
