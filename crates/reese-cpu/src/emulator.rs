//! The functional emulator: the machine's golden model.

use crate::{step_for, ArchState, StepInfo};
use reese_isa::{Instr, IsaId, Program, STACK_TOP};
use reese_mem::Memory;
use std::fmt;

/// Error conditions during emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The PC left the text segment (fell off the end, jumped wild).
    PcOutOfText {
        /// The offending PC.
        pc: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfText { pc } => {
                write!(f, "program counter {pc:#x} left the text segment")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Why a [`Emulator::run`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction executed.
    Halted {
        /// The exit code (from the halt's source register).
        exit_code: u64,
    },
    /// The dynamic instruction limit was reached first.
    InstructionLimit,
}

/// Summary of a finished (or limited) functional run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Values emitted by `print` instructions, in order.
    pub output: Vec<i64>,
    /// Digest of the final architectural register state.
    pub state_digest: u64,
}

impl RunResult {
    /// Whether the program ran to a `halt`.
    pub fn halted(&self) -> bool {
        matches!(self.stop, StopReason::Halted { .. })
    }
}

/// The functional (architectural) emulator.
///
/// Executes programs instruction-at-a-time with no timing model. The
/// timing simulators use it as their oracle: every run must produce the
/// same architectural results here and there.
///
/// # Example
///
/// ```
/// use reese_cpu::Emulator;
///
/// let prog = reese_isa::assemble(
///     "  li t0, 3\n  li t1, 4\n  mul t2, t0, t1\n  print t2\n  halt\n",
/// )?;
/// let mut emu = Emulator::new(&prog);
/// let result = emu.run(1_000)?;
/// assert!(result.halted());
/// assert_eq!(result.output, vec![12]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Program,
    state: ArchState,
    memory: Memory,
    output: Vec<i64>,
    instructions: u64,
    halted: Option<u64>,
    /// Pending architectural result faults: (dynamic instruction index,
    /// bit). Applied once when the matching instruction executes.
    faults: Vec<(u64, u8)>,
}

impl Emulator {
    /// Loads a program: data segment into memory, registers zeroed,
    /// stack pointer at [`STACK_TOP`], PC at the entry point.
    pub fn new(program: &Program) -> Emulator {
        let mut memory = Memory::new();
        memory.load_image(program.data_base(), program.data());
        if let Ok(image) = program.text_image() {
            memory.load_image(program.text_base(), &image);
        }
        let mut state = ArchState::new(program.entry());
        state.write(reese_isa::Reg::SP, STACK_TOP);
        Emulator {
            program: program.clone(),
            state,
            memory,
            output: Vec::new(),
            instructions: 0,
            halted: None,
            faults: Vec::new(),
        }
    }

    /// Rebuilds an emulator mid-run from checkpointed architectural
    /// state: registers + PC, memory image, printed output so far, the
    /// dynamic instruction count, and the halt latch. The program is
    /// not part of the checkpoint — it is the deterministic input that
    /// produced the state.
    pub fn from_parts(
        program: &Program,
        state: ArchState,
        memory: Memory,
        output: Vec<i64>,
        instructions: u64,
        halted: Option<u64>,
    ) -> Emulator {
        Emulator {
            program: program.clone(),
            state,
            memory,
            output,
            instructions,
            halted,
            faults: Vec::new(),
        }
    }

    /// Arms a single-bit architectural fault: when dynamic instruction
    /// `seq` executes, bit `bit` of its destination-register result is
    /// flipped — in the returned [`StepInfo`] *and* in the register
    /// file, so the error propagates through later instructions exactly
    /// as a real particle strike at writeback would. Faults on
    /// instructions that write no register (stores, branches, `print`,
    /// `halt`) are architecturally masked.
    ///
    /// This models the *unprotected* datapath: hardware schemes latch
    /// their compare values upstream of this point, so they inject into
    /// the pipeline model instead.
    pub fn inject_result_fault(&mut self, seq: u64, bit: u8) {
        self.faults.push((seq, bit));
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::PcOutOfText`] if the PC does not point at an
    /// instruction. Stepping an already-halted machine re-executes the
    /// `halt` (a benign no-op).
    pub fn step(&mut self) -> Result<StepInfo, EmuError> {
        let pc = self.state.pc;
        let instr: Instr = *self.program.fetch(pc).ok_or(EmuError::PcOutOfText { pc })?;
        let seq = self.instructions;
        let mut info = step_for(
            self.program.isa(),
            &mut self.state,
            &instr,
            &mut self.memory,
        );
        if !self.faults.is_empty() {
            let mut i = 0;
            while i < self.faults.len() {
                if self.faults[i].0 == seq {
                    let (_, bit) = self.faults.swap_remove(i);
                    if info.wrote_rd {
                        let flipped = info.result ^ (1u64 << (bit & 63));
                        self.state.write(instr.rd, flipped);
                        info.result = flipped;
                    }
                } else {
                    i += 1;
                }
            }
        }
        self.instructions += 1;
        if let Some(v) = info.printed {
            self.output.push(v);
        }
        if info.halted {
            self.halted = Some(info.result);
        }
        Ok(info)
    }

    /// Runs until `halt` or until `max_instructions` have executed.
    ///
    /// # Errors
    ///
    /// Propagates [`EmuError`] from [`Emulator::step`].
    pub fn run(&mut self, max_instructions: u64) -> Result<RunResult, EmuError> {
        let start = self.instructions;
        while self.halted.is_none() && self.instructions - start < max_instructions {
            self.step()?;
        }
        Ok(RunResult {
            stop: match self.halted {
                Some(exit_code) => StopReason::Halted { exit_code },
                None => StopReason::InstructionLimit,
            },
            instructions: self.instructions,
            output: self.output.clone(),
            state_digest: self.state.digest(),
        })
    }

    /// The ISA the loaded program executes under.
    pub fn isa(&self) -> IsaId {
        self.program.isa()
    }

    /// Size in bytes of one instruction in the loaded program.
    pub fn inst_size(&self) -> u64 {
        self.program.inst_size()
    }

    /// The architectural register state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The architectural memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Dynamic instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The exit code, if the machine has halted.
    pub fn exit_code(&self) -> Option<u64> {
        self.halted
    }

    /// Values printed so far.
    pub fn output(&self) -> &[i64] {
        &self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::{abi::*, assemble, ProgramBuilder};

    #[test]
    fn arithmetic_program() {
        let prog = assemble("  li t0, 21\n  add t1, t0, t0\n  print t1\n  halt\n").unwrap();
        let r = Emulator::new(&prog).run(100).unwrap();
        assert!(r.halted());
        assert_eq!(r.output, vec![42]);
        assert_eq!(r.instructions, 4);
    }

    #[test]
    fn loop_counts_dynamic_instructions() {
        let prog =
            assemble("  li t0, 10\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap();
        let r = Emulator::new(&prog).run(1_000).unwrap();
        // 1 li + 10*(addi+bne) + halt
        assert_eq!(r.instructions, 22);
    }

    #[test]
    fn instruction_limit_stops_infinite_loop() {
        let prog = assemble("loop: j loop\n  halt\n").unwrap();
        let r = Emulator::new(&prog).run(500).unwrap();
        assert_eq!(r.stop, StopReason::InstructionLimit);
        assert_eq!(r.instructions, 500);
    }

    #[test]
    fn memory_and_data_segment() {
        let prog = assemble(
            "  la a0, arr\n  ld t0, 0(a0)\n  ld t1, 8(a0)\n  add t2, t0, t1\n  sd t2, 16(a0)\n  ld a1, 16(a0)\n  print a1\n  halt\n\
             \n  .data\narr: .dword 30, 12, 0\n",
        )
        .unwrap();
        let mut emu = Emulator::new(&prog);
        let r = emu.run(100).unwrap();
        assert_eq!(r.output, vec![42]);
        assert_eq!(emu.memory().read_u64(prog.symbol("arr").unwrap() + 16), 42);
    }

    #[test]
    fn subroutine_call_and_stack() {
        let prog = assemble(
            "        .entry main\n\
             double: add a0, a0, a0\n\
                     ret\n\
             main:   li a0, 5\n\
                     addi sp, sp, -8\n\
                     sd ra, 0(sp)\n\
                     call double\n\
                     ld ra, 0(sp)\n\
                     addi sp, sp, 8\n\
                     print a0\n\
                     halt\n",
        )
        .unwrap();
        let r = Emulator::new(&prog).run(100).unwrap();
        assert_eq!(r.output, vec![10]);
    }

    #[test]
    fn wild_jump_is_an_error() {
        let prog = assemble("  li t0, 0x400000\n  jalr x0, 0(t0)\n  halt\n").unwrap();
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        emu.step().unwrap();
        assert_eq!(emu.step(), Err(EmuError::PcOutOfText { pc: 0x40_0000 }));
    }

    #[test]
    fn falling_off_the_end_is_an_error() {
        let prog = assemble("  nop\n").unwrap();
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        assert!(matches!(emu.step(), Err(EmuError::PcOutOfText { .. })));
    }

    #[test]
    fn halt_exit_code() {
        let prog = assemble("  li a0, 7\n  halt\n").unwrap();
        let mut emu = Emulator::new(&prog);
        let r = emu.run(10).unwrap();
        assert_eq!(r.stop, StopReason::Halted { exit_code: 7 });
        assert_eq!(emu.exit_code(), Some(7));
    }

    #[test]
    fn stack_pointer_initialised() {
        let prog = assemble("  halt\n").unwrap();
        let emu = Emulator::new(&prog);
        assert_eq!(emu.state().read(SP), STACK_TOP);
    }

    #[test]
    fn builder_program_runs() {
        let mut b = ProgramBuilder::new();
        let buf = b.data_label("buf");
        b.space(64);
        b.la(A1, buf);
        b.li(T0, 8);
        let top = b.here("top");
        b.addi(T0, T0, -1);
        b.slli(T1, T0, 3);
        b.add(T1, A1, T1);
        b.sd(T0, 0, T1);
        b.bnez(T0, top);
        b.ld(A0, 24, A1);
        b.print(A0);
        b.halt();
        let prog = b.build().unwrap();
        let r = Emulator::new(&prog).run(1_000).unwrap();
        assert_eq!(r.output, vec![3]);
    }

    #[test]
    fn injected_result_fault_propagates_architecturally() {
        let src = "  li t0, 21\n  add t1, t0, t0\n  print t1\n  halt\n";
        let prog = assemble(src).unwrap();
        let mut emu = Emulator::new(&prog);
        // Flip bit 3 of the `add` result (seq 1): 42 ^ 8 = 34, and the
        // corrupted value must flow into the print.
        emu.inject_result_fault(1, 3);
        let r = emu.run(100).unwrap();
        assert_eq!(r.output, vec![34]);
        assert_ne!(
            r.state_digest,
            Emulator::new(&prog).run(100).unwrap().state_digest
        );
    }

    #[test]
    fn fault_on_non_writing_instruction_is_masked() {
        let src = "  li t0, 21\n  add t1, t0, t0\n  print t1\n  halt\n";
        let prog = assemble(src).unwrap();
        let mut emu = Emulator::new(&prog);
        // `print` (seq 2) writes no register: architecturally masked.
        emu.inject_result_fault(2, 5);
        let r = emu.run(100).unwrap();
        let clean = Emulator::new(&prog).run(100).unwrap();
        assert_eq!(r, clean);
    }

    #[test]
    fn rv32i_program_runs_with_rv32_semantics() {
        let src = "\
  li t0, 10
  li t1, 0
loop:
  add t1, t1, t0
  addi t0, t0, -1
  bnez t0, loop
  li a7, 1
  mv a0, t1
  ecall
  li a7, 93
  li a0, 0
  ecall
";
        let prog = IsaId::Rv32i.frontend().assemble(src).unwrap();
        assert_eq!(prog.isa(), IsaId::Rv32i);
        let mut emu = Emulator::new(&prog);
        let r = emu.run(1_000).unwrap();
        assert_eq!(r.output, vec![55]);
        assert_eq!(r.stop, StopReason::Halted { exit_code: 0 });
    }

    #[test]
    fn rv32i_overflow_differs_from_native() {
        let src = "\
  li t0, 0x7FFFFFFF
  addi t0, t0, 1
  li a7, 1
  mv a0, t0
  ecall
  li a7, 93
  li a0, 0
  ecall
";
        let prog = IsaId::Rv32i.frontend().assemble(src).unwrap();
        let r = Emulator::new(&prog).run(100).unwrap();
        assert_eq!(r.output, vec![i32::MIN as i64], "32-bit add wraps");
    }

    #[test]
    fn deterministic_digest() {
        let prog = assemble("  li t0, 9\n  mul t1, t0, t0\n  halt\n").unwrap();
        let a = Emulator::new(&prog).run(100).unwrap();
        let b = Emulator::new(&prog).run(100).unwrap();
        assert_eq!(a.state_digest, b.state_digest);
    }
}
