//! Dynamic instruction traces: capture, binary serialisation, and
//! analysis.
//!
//! The counterpart of SimpleScalar's trace facilities: a [`Trace`] is a
//! compact record of one program run — enough to profile basic blocks,
//! branch behaviour, and memory working sets without re-running the
//! emulator, and enough to reproduce a workload's dynamic shape in
//! external tooling via the on-disk format.

use crate::{EmuError, Emulator, StepInfo};
use reese_isa::Program;
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// One dynamic instruction, 33 bytes on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// PC of the instruction.
    pub pc: u64,
    /// The encoded instruction word.
    pub word: u64,
    /// The next PC (branch targets resolved).
    pub next_pc: u64,
    /// Effective address for memory operations (0 otherwise; check
    /// [`TraceRecord::is_mem`]).
    pub mem_addr: u64,
    /// Packed flags (taken / memory / store / halt).
    pub flags: u8,
}

impl TraceRecord {
    const TAKEN: u8 = 1 << 0;
    const MEM: u8 = 1 << 1;
    const STORE: u8 = 1 << 2;
    const HALT: u8 = 1 << 3;
    /// On-disk record size in bytes.
    pub const SIZE: usize = 33;

    fn from_step(info: &StepInfo) -> io::Result<TraceRecord> {
        let word = reese_isa::encode(&info.instr)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut flags = 0;
        if info.taken {
            flags |= Self::TAKEN;
        }
        if let Some(m) = info.mem {
            flags |= Self::MEM;
            if m.is_store {
                flags |= Self::STORE;
            }
        }
        if info.halted {
            flags |= Self::HALT;
        }
        Ok(TraceRecord {
            pc: info.pc,
            word,
            next_pc: info.next_pc,
            mem_addr: info.mem.map_or(0, |m| m.addr),
            flags,
        })
    }

    /// Whether the (conditional-branch) instruction was taken.
    pub fn taken(&self) -> bool {
        self.flags & Self::TAKEN != 0
    }

    /// Whether this is a memory operation.
    pub fn is_mem(&self) -> bool {
        self.flags & Self::MEM != 0
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.flags & Self::STORE != 0
    }

    /// Whether this instruction halted the machine.
    pub fn is_halt(&self) -> bool {
        self.flags & Self::HALT != 0
    }

    /// Decodes the static instruction.
    ///
    /// # Errors
    ///
    /// Returns a decode error for a corrupted record.
    pub fn instr(&self) -> Result<reese_isa::Instr, reese_isa::DecodeError> {
        reese_isa::decode(self.word)
    }

    fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.pc.to_le_bytes())?;
        w.write_all(&self.word.to_le_bytes())?;
        w.write_all(&self.next_pc.to_le_bytes())?;
        w.write_all(&self.mem_addr.to_le_bytes())?;
        w.write_all(&[self.flags])
    }

    fn read_from<R: Read>(r: &mut R) -> io::Result<TraceRecord> {
        let mut buf = [0u8; Self::SIZE];
        r.read_exact(&mut buf)?;
        let u = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("8 bytes"));
        Ok(TraceRecord {
            pc: u(0),
            word: u(8),
            next_pc: u(16),
            mem_addr: u(24),
            flags: buf[32],
        })
    }
}

/// A captured dynamic instruction trace.
///
/// # Example
///
/// ```
/// use reese_cpu::Trace;
///
/// let prog = reese_isa::assemble(
///     "  li t0, 3\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
/// )?;
/// let trace = Trace::capture(&prog, 1_000)?;
/// assert_eq!(trace.len(), 8);
/// let (branches, taken) = trace.branch_profile();
/// assert_eq!((branches, taken), (3, 2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

const MAGIC: &[u8; 4] = b"RTRC";
const VERSION: u32 = 1;

impl Trace {
    /// Captures a trace by functional execution, up to
    /// `max_instructions`.
    ///
    /// # Errors
    ///
    /// Propagates emulation errors (wild jumps, running off the text
    /// segment).
    pub fn capture(program: &Program, max_instructions: u64) -> Result<Trace, EmuError> {
        let mut emu = Emulator::new(program);
        let mut records = Vec::new();
        for _ in 0..max_instructions {
            let info = emu.step()?;
            records.push(TraceRecord::from_step(&info).expect("program immediates encode"));
            if info.halted {
                break;
            }
        }
        Ok(Trace { records })
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Writes the trace in the binary `RTRC` format. A `&mut` reference
    /// may be passed for any `Write`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            r.write_to(&mut w)?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_to`]. A `&mut` reference
    /// may be passed for any `Read`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic, version, or truncation.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Trace> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a reese trace",
            ));
        }
        let mut v = [0u8; 4];
        r.read_exact(&mut v)?;
        if u32::from_le_bytes(v) != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported trace version",
            ));
        }
        let mut n = [0u8; 8];
        r.read_exact(&mut n)?;
        let n = u64::from_le_bytes(n) as usize;
        let mut records = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            records.push(TraceRecord::read_from(&mut r)?);
        }
        Ok(Trace { records })
    }

    /// (conditional branches, taken count).
    pub fn branch_profile(&self) -> (u64, u64) {
        let mut branches = 0;
        let mut taken = 0;
        for r in &self.records {
            if let Ok(i) = r.instr() {
                if i.op.kind() == reese_isa::OpKind::Branch {
                    branches += 1;
                    if r.taken() {
                        taken += 1;
                    }
                }
            }
        }
        (branches, taken)
    }

    /// Distinct cache lines of `line_bytes` touched by data accesses —
    /// the data working set.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn data_working_set(&self, line_bytes: u64) -> usize {
        assert!(line_bytes > 0, "line size must be positive");
        let mut lines = std::collections::HashSet::new();
        for r in &self.records {
            if r.is_mem() {
                lines.insert(r.mem_addr / line_bytes);
            }
        }
        lines.len()
    }

    /// The hottest basic-block leaders: `(leader pc, executions)`,
    /// descending, capped at `top`. A leader is the first instruction
    /// after a control transfer (or the entry).
    pub fn hot_blocks(&self, top: usize) -> Vec<(u64, u64)> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let mut at_leader = true;
        for r in &self.records {
            if at_leader {
                *counts.entry(r.pc).or_default() += 1;
            }
            let is_control = r.instr().map(|i| i.op.is_control()).unwrap_or(false);
            at_leader = is_control;
        }
        let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }

    /// Fraction of instructions that are memory operations.
    pub fn mem_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.is_mem()).count() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    fn loop_prog() -> Program {
        assemble("  li t0, 5\nloop: addi t0, t0, -1\n  sd t0, -8(sp)\n  bnez t0, loop\n  halt\n")
            .unwrap()
    }

    #[test]
    fn capture_counts_dynamic_instructions() {
        let t = Trace::capture(&loop_prog(), 1_000).unwrap();
        // 1 li + 5*(addi, sd, bnez) + halt
        assert_eq!(t.len(), 17);
        assert!(t.iter().last().unwrap().is_halt());
    }

    #[test]
    fn serialisation_round_trip() {
        let t = Trace::capture(&loop_prog(), 1_000).unwrap();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 16 + t.len() * TraceRecord::SIZE);
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(Trace::read_from(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        Trace::capture(&loop_prog(), 10)
            .unwrap()
            .write_to(&mut buf)
            .unwrap();
        buf.truncate(buf.len() - 1);
        assert!(Trace::read_from(buf.as_slice()).is_err());
        buf[4] = 99; // version byte
        assert!(Trace::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn branch_profile() {
        let t = Trace::capture(&loop_prog(), 1_000).unwrap();
        let (branches, taken) = t.branch_profile();
        assert_eq!(branches, 5);
        assert_eq!(taken, 4, "the final bnez falls through");
    }

    #[test]
    fn working_set_and_mem_fraction() {
        let t = Trace::capture(&loop_prog(), 1_000).unwrap();
        assert_eq!(
            t.data_working_set(64),
            1,
            "all stores hit the same stack line"
        );
        assert!((t.mem_fraction() - 5.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn hot_blocks_find_the_loop() {
        let t = Trace::capture(&loop_prog(), 1_000).unwrap();
        let blocks = t.hot_blocks(2);
        // The loop body leader (0x1008) is re-entered by 4 taken
        // branches; its first execution belongs to the entry block.
        assert_eq!(blocks[0], (0x1008, 4));
    }

    #[test]
    fn records_decode_back_to_instructions() {
        let t = Trace::capture(&loop_prog(), 1_000).unwrap();
        let first = t.iter().next().unwrap();
        assert_eq!(first.instr().unwrap().op, reese_isa::Opcode::Li);
        assert!(!first.is_mem());
        let store = t.iter().find(|r| r.is_store()).unwrap();
        assert_eq!(store.mem_addr, reese_isa::STACK_TOP - 8);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.mem_fraction(), 0.0);
        assert_eq!(t.branch_profile(), (0, 0));
        assert!(t.hot_blocks(5).is_empty());
    }
}
