//! Functional emulator for the REESE mini ISA.
//!
//! This crate is the architectural golden model — the equivalent of
//! SimpleScalar's functional core. [`step`] defines the semantics of
//! every opcode once; the [`Emulator`] drives whole programs; and the
//! [`StepInfo`] record it produces (operands, result, effective address,
//! next PC) is exactly the payload the REESE R-stream Queue carries
//! through the timing pipeline.
//!
//! # Example
//!
//! ```
//! use reese_cpu::Emulator;
//!
//! let prog = reese_isa::assemble("  li a0, 2\n  print a0\n  halt\n")?;
//! let result = Emulator::new(&prog).run(100)?;
//! assert_eq!(result.output, vec![2]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod emulator;
mod exec;
mod state;
mod trace;

pub use emulator::{EmuError, Emulator, RunResult, StopReason};
pub use exec::{step, step_for, step_rv32, MemAccess, StepInfo};
pub use state::ArchState;
pub use trace::{Trace, TraceRecord};
