//! Single-instruction execution semantics.
//!
//! [`step`] is the single source of truth for what every opcode *does*.
//! The functional emulator calls it directly; the timing simulators call
//! it at dispatch (SimpleScalar-style execution-driven simulation) and
//! record the returned [`StepInfo`], which carries exactly the
//! information the REESE R-stream Queue stores: the operand values and
//! the result.

use crate::ArchState;
use reese_isa::{Instr, IsaId, MemWidth, Opcode};
use reese_mem::Memory;

/// A memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Access width.
    pub width: MemWidth,
    /// Whether this is a store.
    pub is_store: bool,
    /// For stores, the value written (truncated to `width`); for loads,
    /// the value read (extended to 64 bits).
    pub value: u64,
}

/// Everything one dynamic instruction did.
///
/// This record is what flows down the simulated pipelines. In REESE
/// terms it is a complete R-stream Queue entry: "an entry … keeps the
/// values of the instruction operands and the result of the operation"
/// (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// PC of this instruction.
    pub pc: u64,
    /// The static instruction.
    pub instr: Instr,
    /// Value of the first operand actually read (0 if unused).
    pub src1: u64,
    /// Value of the second operand actually read (0 if unused).
    pub src2: u64,
    /// Value written to `rd` (0 if the instruction writes no register).
    pub result: u64,
    /// Whether `rd` was written (excludes `x0` sinks).
    pub wrote_rd: bool,
    /// Memory access, if any.
    pub mem: Option<MemAccess>,
    /// The next PC (branch targets already resolved).
    pub next_pc: u64,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// Whether this instruction halted the machine.
    pub halted: bool,
    /// Value emitted by a `print` instruction.
    pub printed: Option<i64>,
}

fn sdiv(a: i64, b: i64) -> i64 {
    if b == 0 {
        -1
    } else {
        a.wrapping_div(b)
    }
}

fn srem(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        a.wrapping_rem(b)
    }
}

fn udiv(a: u64, b: u64) -> u64 {
    a.checked_div(b).unwrap_or(u64::MAX)
}

fn urem(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        a % b
    }
}

fn f2i_saturating(f: f64) -> i64 {
    if f.is_nan() {
        0
    } else if f >= i64::MAX as f64 {
        i64::MAX
    } else if f <= i64::MIN as f64 {
        i64::MIN
    } else {
        f as i64
    }
}

/// Executes one instruction, updating `state` and `mem`, and returns the
/// full [`StepInfo`] record.
///
/// The PC in `state` is advanced to `next_pc`.
pub fn step(state: &mut ArchState, instr: &Instr, mem: &mut Memory) -> StepInfo {
    let pc = state.pc;
    let fallthrough = pc.wrapping_add(Instr::SIZE);
    // `lih` reads its own destination; everything else reads rs1/rs2 as
    // declared by the opcode tables.
    let src1 = if instr.op.reads_rs1() {
        state.read(instr.rs1)
    } else {
        0
    };
    let src2 = if instr.op.reads_rs2() {
        state.read(instr.rs2)
    } else {
        0
    };
    let imm = instr.imm;

    let mut info = StepInfo {
        pc,
        instr: *instr,
        src1,
        src2,
        result: 0,
        wrote_rd: false,
        mem: None,
        next_pc: fallthrough,
        taken: false,
        halted: false,
        printed: None,
    };

    let write_rd = |state: &mut ArchState, info: &mut StepInfo, v: u64| {
        state.write(instr.rd, v);
        info.result = v;
        info.wrote_rd = !instr.rd.is_zero();
    };

    use Opcode::*;
    match instr.op {
        Add => write_rd(state, &mut info, src1.wrapping_add(src2)),
        Sub => write_rd(state, &mut info, src1.wrapping_sub(src2)),
        Mul => write_rd(state, &mut info, src1.wrapping_mul(src2)),
        Div => write_rd(state, &mut info, sdiv(src1 as i64, src2 as i64) as u64),
        Rem => write_rd(state, &mut info, srem(src1 as i64, src2 as i64) as u64),
        Divu => write_rd(state, &mut info, udiv(src1, src2)),
        Remu => write_rd(state, &mut info, urem(src1, src2)),
        And => write_rd(state, &mut info, src1 & src2),
        Or => write_rd(state, &mut info, src1 | src2),
        Xor => write_rd(state, &mut info, src1 ^ src2),
        Sll => write_rd(state, &mut info, src1 << (src2 & 63)),
        Srl => write_rd(state, &mut info, src1 >> (src2 & 63)),
        Sra => write_rd(state, &mut info, ((src1 as i64) >> (src2 & 63)) as u64),
        Slt => write_rd(state, &mut info, u64::from((src1 as i64) < (src2 as i64))),
        Sltu => write_rd(state, &mut info, u64::from(src1 < src2)),

        Addi => write_rd(state, &mut info, src1.wrapping_add(imm as u64)),
        Andi => write_rd(state, &mut info, src1 & imm as u64),
        Ori => write_rd(state, &mut info, src1 | imm as u64),
        Xori => write_rd(state, &mut info, src1 ^ imm as u64),
        Slli => write_rd(state, &mut info, src1 << (imm as u64 & 63)),
        Srli => write_rd(state, &mut info, src1 >> (imm as u64 & 63)),
        Srai => write_rd(
            state,
            &mut info,
            ((src1 as i64) >> (imm as u64 & 63)) as u64,
        ),
        Slti => write_rd(state, &mut info, u64::from((src1 as i64) < imm)),
        Sltiu => write_rd(state, &mut info, u64::from(src1 < imm as u64)),
        Li => write_rd(state, &mut info, imm as u64),
        Auipc => write_rd(state, &mut info, pc.wrapping_add(imm as u64)),
        Lih => {
            let v = ((imm as u32 as u64) << 32) | (src1 & 0xFFFF_FFFF);
            write_rd(state, &mut info, v);
        }

        Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
            let width = instr.op.mem_width().expect("loads have widths");
            let addr = src1.wrapping_add(imm as u64);
            let raw = mem.read_uint(addr, width.bytes());
            let value = match instr.op {
                Lb => raw as u8 as i8 as i64 as u64,
                Lh => raw as u16 as i16 as i64 as u64,
                Lw => raw as u32 as i32 as i64 as u64,
                _ => raw,
            };
            info.mem = Some(MemAccess {
                addr,
                width,
                is_store: false,
                value,
            });
            write_rd(state, &mut info, value);
        }

        Sb | Sh | Sw | Sd | Fsd => {
            let width = instr.op.mem_width().expect("stores have widths");
            let addr = src1.wrapping_add(imm as u64);
            mem.write_uint(addr, width.bytes(), src2);
            let kept = if width.bytes() == 8 {
                src2
            } else {
                src2 & ((1 << (width.bytes() * 8)) - 1)
            };
            info.mem = Some(MemAccess {
                addr,
                width,
                is_store: true,
                value: kept,
            });
            // A store's "result" for P/R comparison purposes is the
            // value it wrote; the effective address is in `mem`.
            info.result = kept;
        }

        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let taken = match instr.op {
                Beq => src1 == src2,
                Bne => src1 != src2,
                Blt => (src1 as i64) < (src2 as i64),
                Bge => (src1 as i64) >= (src2 as i64),
                Bltu => src1 < src2,
                _ => src1 >= src2,
            };
            info.taken = taken;
            if taken {
                info.next_pc = pc.wrapping_add(imm as u64);
            }
            // The branch's comparison outcome is its "result".
            info.result = u64::from(taken);
        }

        Jal => {
            write_rd(state, &mut info, fallthrough);
            info.next_pc = pc.wrapping_add(imm as u64);
            info.taken = true;
        }
        Jalr => {
            let target = src1.wrapping_add(imm as u64);
            write_rd(state, &mut info, fallthrough);
            info.next_pc = target;
            info.taken = true;
        }

        Fadd => {
            let v = f64::from_bits(src1) + f64::from_bits(src2);
            write_rd(state, &mut info, v.to_bits());
        }
        Fsub => {
            let v = f64::from_bits(src1) - f64::from_bits(src2);
            write_rd(state, &mut info, v.to_bits());
        }
        Fmul => {
            let v = f64::from_bits(src1) * f64::from_bits(src2);
            write_rd(state, &mut info, v.to_bits());
        }
        Fdiv => {
            let v = f64::from_bits(src1) / f64::from_bits(src2);
            write_rd(state, &mut info, v.to_bits());
        }
        Fsqrt => write_rd(state, &mut info, f64::from_bits(src1).sqrt().to_bits()),
        Fmin => {
            let v = f64::from_bits(src1).min(f64::from_bits(src2));
            write_rd(state, &mut info, v.to_bits());
        }
        Fmax => {
            let v = f64::from_bits(src1).max(f64::from_bits(src2));
            write_rd(state, &mut info, v.to_bits());
        }
        Feq => write_rd(
            state,
            &mut info,
            u64::from(f64::from_bits(src1) == f64::from_bits(src2)),
        ),
        Flt => write_rd(
            state,
            &mut info,
            u64::from(f64::from_bits(src1) < f64::from_bits(src2)),
        ),
        Fle => write_rd(
            state,
            &mut info,
            u64::from(f64::from_bits(src1) <= f64::from_bits(src2)),
        ),
        Fcvtif => write_rd(state, &mut info, ((src1 as i64) as f64).to_bits()),
        Fcvtfi => write_rd(
            state,
            &mut info,
            f2i_saturating(f64::from_bits(src1)) as u64,
        ),
        Fmvif => write_rd(state, &mut info, src1),
        Fmvfi => write_rd(state, &mut info, src1),

        Halt => {
            info.halted = true;
            info.next_pc = pc;
            info.result = src1; // exit code
        }
        Print => {
            info.printed = Some(src1 as i64);
        }
        Ecall => ecall(pc, src1, src2, &mut info),
        Ebreak => {
            info.halted = true;
            info.next_pc = pc;
        }
        Nop => {}
    }

    state.pc = info.next_pc;
    info
}

/// Environment-call semantics shared by both ISAs: the syscall number is
/// in `a7` (`src1`), the argument in `a0` (`src2`). Syscall 1 prints the
/// argument, 93 exits with it; anything else halts with the unknown
/// number as the exit code.
fn ecall(pc: u64, src1: u64, src2: u64, info: &mut StepInfo) {
    match src1 {
        1 => info.printed = Some(src2 as i64),
        93 => {
            info.halted = true;
            info.next_pc = pc;
            info.result = src2;
        }
        _ => {
            info.halted = true;
            info.next_pc = pc;
            info.result = src1;
        }
    }
}

/// Executes one instruction under the semantics of `isa`.
///
/// [`IsaId::Native`] dispatches to [`step`]; [`IsaId::Rv32i`] dispatches
/// to [`step_rv32`]. Simulators should call this rather than `step`
/// whenever the program may carry a non-native ISA stamp.
pub fn step_for(isa: IsaId, state: &mut ArchState, instr: &Instr, mem: &mut Memory) -> StepInfo {
    match isa {
        IsaId::Native => step(state, instr, mem),
        IsaId::Rv32i => step_rv32(state, instr, mem),
    }
}

fn sext32(v: u32) -> u64 {
    v as i32 as i64 as u64
}

fn sdiv32(a: i32, b: i32) -> i32 {
    if b == 0 {
        -1
    } else {
        a.wrapping_div(b)
    }
}

fn srem32(a: i32, b: i32) -> i32 {
    if b == 0 {
        a
    } else {
        a.wrapping_rem(b)
    }
}

/// Executes one instruction with RV32I semantics.
///
/// Register cells hold 32-bit values sign-extended to 64 bits; every
/// result is computed in 32 bits and re-extended, which keeps the
/// shared 64-bit compare/branch logic correct (sign extension is
/// monotone for both signed and unsigned order). Differences from the
/// native executor: 4-byte pc arithmetic, shift amounts masked to 5
/// bits, `i32` division conventions (`MIN / -1` wraps to `MIN` with
/// remainder 0, division by zero yields `-1` / `u32::MAX`), and JALR
/// clears bit 0 of the target. Opcodes outside the RV32I encodable set
/// (`lih`, `halt`, `print`, fp ops) keep their native semantics so that
/// SWIFT-transformed programs, which splice such instructions into the
/// shadow stream, still execute.
pub fn step_rv32(state: &mut ArchState, instr: &Instr, mem: &mut Memory) -> StepInfo {
    let pc = state.pc;
    let fallthrough = sext32((pc as u32).wrapping_add(4));
    let src1 = if instr.op.reads_rs1() {
        state.read(instr.rs1)
    } else {
        0
    };
    let src2 = if instr.op.reads_rs2() {
        state.read(instr.rs2)
    } else {
        0
    };
    let a = src1 as u32;
    let b = src2 as u32;
    let imm = instr.imm;
    let imm32 = imm as u32;

    let mut info = StepInfo {
        pc,
        instr: *instr,
        src1,
        src2,
        result: 0,
        wrote_rd: false,
        mem: None,
        next_pc: fallthrough,
        taken: false,
        halted: false,
        printed: None,
    };

    let write_rd = |state: &mut ArchState, info: &mut StepInfo, v: u64| {
        state.write(instr.rd, v);
        info.result = v;
        info.wrote_rd = !instr.rd.is_zero();
    };
    let write32 = |state: &mut ArchState, info: &mut StepInfo, v: u32| {
        write_rd(state, info, sext32(v));
    };

    use Opcode::*;
    match instr.op {
        Add => write32(state, &mut info, a.wrapping_add(b)),
        Sub => write32(state, &mut info, a.wrapping_sub(b)),
        Mul => write32(state, &mut info, a.wrapping_mul(b)),
        Div => write32(state, &mut info, sdiv32(a as i32, b as i32) as u32),
        Rem => write32(state, &mut info, srem32(a as i32, b as i32) as u32),
        Divu => write32(state, &mut info, a.checked_div(b).unwrap_or(u32::MAX)),
        Remu => write32(state, &mut info, if b == 0 { a } else { a % b }),
        And => write32(state, &mut info, a & b),
        Or => write32(state, &mut info, a | b),
        Xor => write32(state, &mut info, a ^ b),
        Sll => write32(state, &mut info, a << (b & 31)),
        Srl => write32(state, &mut info, a >> (b & 31)),
        Sra => write32(state, &mut info, ((a as i32) >> (b & 31)) as u32),
        Slt => write32(state, &mut info, u32::from((a as i32) < (b as i32))),
        Sltu => write32(state, &mut info, u32::from(a < b)),

        Addi => write32(state, &mut info, a.wrapping_add(imm32)),
        Andi => write32(state, &mut info, a & imm32),
        Ori => write32(state, &mut info, a | imm32),
        Xori => write32(state, &mut info, a ^ imm32),
        Slli => write32(state, &mut info, a << (imm32 & 31)),
        Srli => write32(state, &mut info, a >> (imm32 & 31)),
        Srai => write32(state, &mut info, ((a as i32) >> (imm32 & 31)) as u32),
        Slti => write32(state, &mut info, u32::from((a as i32) < (imm as i32))),
        Sltiu => write32(state, &mut info, u32::from(a < imm32)),
        Li => write32(state, &mut info, imm32),
        Auipc => write32(state, &mut info, (pc as u32).wrapping_add(imm32)),
        Lih => {
            // Not encodable in RV32I; native semantics for spliced code.
            let v = ((imm as u32 as u64) << 32) | (src1 & 0xFFFF_FFFF);
            write_rd(state, &mut info, v);
        }

        Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
            let width = instr.op.mem_width().expect("loads have widths");
            let addr = a.wrapping_add(imm32) as u64;
            let raw = mem.read_uint(addr, width.bytes());
            let value = match instr.op {
                Lb => raw as u8 as i8 as i64 as u64,
                Lh => raw as u16 as i16 as i64 as u64,
                Lw => sext32(raw as u32),
                _ => raw,
            };
            info.mem = Some(MemAccess {
                addr,
                width,
                is_store: false,
                value,
            });
            write_rd(state, &mut info, value);
        }

        Sb | Sh | Sw | Sd | Fsd => {
            let width = instr.op.mem_width().expect("stores have widths");
            let addr = a.wrapping_add(imm32) as u64;
            mem.write_uint(addr, width.bytes(), src2);
            let kept = if width.bytes() == 8 {
                src2
            } else {
                src2 & ((1 << (width.bytes() * 8)) - 1)
            };
            info.mem = Some(MemAccess {
                addr,
                width,
                is_store: true,
                value: kept,
            });
            info.result = kept;
        }

        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            // Registers hold sign-extended-32 values, so 64-bit compares
            // agree with the 32-bit ones for both signedness flavours.
            let taken = match instr.op {
                Beq => src1 == src2,
                Bne => src1 != src2,
                Blt => (src1 as i64) < (src2 as i64),
                Bge => (src1 as i64) >= (src2 as i64),
                Bltu => src1 < src2,
                _ => src1 >= src2,
            };
            info.taken = taken;
            if taken {
                info.next_pc = sext32((pc as u32).wrapping_add(imm32));
            }
            info.result = u64::from(taken);
        }

        Jal => {
            write_rd(state, &mut info, fallthrough);
            info.next_pc = sext32((pc as u32).wrapping_add(imm32));
            info.taken = true;
        }
        Jalr => {
            let target = a.wrapping_add(imm32) & !1;
            write_rd(state, &mut info, fallthrough);
            info.next_pc = sext32(target);
            info.taken = true;
        }

        Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmin | Fmax | Feq | Flt | Fle | Fcvtif | Fcvtfi
        | Fmvif | Fmvfi => {
            // Not encodable in RV32I; native semantics for spliced code.
            let v = match instr.op {
                Fadd => (f64::from_bits(src1) + f64::from_bits(src2)).to_bits(),
                Fsub => (f64::from_bits(src1) - f64::from_bits(src2)).to_bits(),
                Fmul => (f64::from_bits(src1) * f64::from_bits(src2)).to_bits(),
                Fdiv => (f64::from_bits(src1) / f64::from_bits(src2)).to_bits(),
                Fsqrt => f64::from_bits(src1).sqrt().to_bits(),
                Fmin => f64::from_bits(src1).min(f64::from_bits(src2)).to_bits(),
                Fmax => f64::from_bits(src1).max(f64::from_bits(src2)).to_bits(),
                Feq => u64::from(f64::from_bits(src1) == f64::from_bits(src2)),
                Flt => u64::from(f64::from_bits(src1) < f64::from_bits(src2)),
                Fle => u64::from(f64::from_bits(src1) <= f64::from_bits(src2)),
                Fcvtif => ((src1 as i64) as f64).to_bits(),
                Fcvtfi => f2i_saturating(f64::from_bits(src1)) as u64,
                _ => src1,
            };
            write_rd(state, &mut info, v);
        }

        Halt => {
            info.halted = true;
            info.next_pc = pc;
            info.result = src1;
        }
        Print => {
            info.printed = Some(src1 as i64);
        }
        Ecall => ecall(pc, src1, src2, &mut info),
        Ebreak => {
            info.halted = true;
            info.next_pc = pc;
        }
        Nop => {}
    }

    state.pc = info.next_pc;
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::abi::*;

    fn run_one(
        instr: Instr,
        setup: impl FnOnce(&mut ArchState, &mut Memory),
    ) -> (StepInfo, ArchState, Memory) {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        setup(&mut s, &mut m);
        let info = step(&mut s, &instr, &mut m);
        (info, s, m)
    }

    #[test]
    fn add_and_overflow_wraps() {
        let (info, s, _) = run_one(Instr::rrr(Opcode::Add, T0, T1, T2), |s, _| {
            s.write(T1, u64::MAX);
            s.write(T2, 2);
        });
        assert_eq!(s.read(T0), 1);
        assert_eq!(info.result, 1);
        assert!(info.wrote_rd);
        assert_eq!(info.next_pc, 0x1008);
    }

    #[test]
    fn division_conventions() {
        let (i, ..) = run_one(Instr::rrr(Opcode::Div, T0, T1, T2), |s, _| {
            s.write(T1, 7);
            s.write(T2, 0);
        });
        assert_eq!(i.result as i64, -1);
        let (i, ..) = run_one(Instr::rrr(Opcode::Divu, T0, T1, T2), |s, _| {
            s.write(T1, 7);
        });
        assert_eq!(i.result, u64::MAX);
        let (i, ..) = run_one(Instr::rrr(Opcode::Rem, T0, T1, T2), |s, _| {
            s.write(T1, 7);
        });
        assert_eq!(i.result, 7);
        // i64::MIN / -1 wraps rather than trapping.
        let (i, ..) = run_one(Instr::rrr(Opcode::Div, T0, T1, T2), |s, _| {
            s.write(T1, i64::MIN as u64);
            s.write(T2, -1i64 as u64);
        });
        assert_eq!(i.result, i64::MIN as u64);
    }

    #[test]
    fn shifts_mask_to_six_bits() {
        let (i, ..) = run_one(Instr::rrr(Opcode::Sll, T0, T1, T2), |s, _| {
            s.write(T1, 1);
            s.write(T2, 65); // 65 & 63 == 1
        });
        assert_eq!(i.result, 2);
        let (i, ..) = run_one(Instr::rri(Opcode::Srai, T0, T1, 4), |s, _| {
            s.write(T1, (-32i64) as u64);
        });
        assert_eq!(i.result as i64, -2);
    }

    #[test]
    fn li_and_lih_compose_64_bit_constants() {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let v: i64 = 0x1234_5678_9ABC_DEF0u64 as i64;
        step(
            &mut s,
            &Instr::rri(Opcode::Li, T0, ZERO, v as u32 as i32 as i64),
            &mut m,
        );
        step(
            &mut s,
            &Instr {
                op: Opcode::Lih,
                rd: T0,
                rs1: T0,
                rs2: ZERO,
                imm: (v as u64 >> 32) as i64,
            },
            &mut m,
        );
        assert_eq!(s.read(T0), v as u64);
    }

    #[test]
    fn load_sign_extension() {
        let (i, ..) = run_one(Instr::load(Opcode::Lb, T0, T1, 0), |s, m| {
            s.write(T1, 0x2000);
            m.write_u8(0x2000, 0x80);
        });
        assert_eq!(i.result as i64, -128);
        let (i, ..) = run_one(Instr::load(Opcode::Lbu, T0, T1, 0), |s, m| {
            s.write(T1, 0x2000);
            m.write_u8(0x2000, 0x80);
        });
        assert_eq!(i.result, 0x80);
        let (i, ..) = run_one(Instr::load(Opcode::Lw, T0, T1, 4), |s, m| {
            s.write(T1, 0x2000);
            m.write_u32(0x2004, 0xFFFF_FFFF);
        });
        assert_eq!(i.result as i64, -1);
    }

    #[test]
    fn store_records_address_and_value() {
        let (i, _, m) = run_one(Instr::store(Opcode::Sw, T2, T1, 8), |s, _| {
            s.write(T1, 0x3000);
            s.write(T2, 0xAABB_CCDD_EEFF_1122);
        });
        let acc = i.mem.unwrap();
        assert!(acc.is_store);
        assert_eq!(acc.addr, 0x3008);
        assert_eq!(acc.value, 0xEEFF_1122);
        assert_eq!(m.read_u32(0x3008), 0xEEFF_1122);
        assert_eq!(m.read_u32(0x300C), 0, "narrow store must not spill");
        assert!(!i.wrote_rd);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let (i, s, _) = run_one(Instr::branch(Opcode::Beq, T1, T2, 64), |s, _| {
            s.write(T1, 5);
            s.write(T2, 5);
        });
        assert!(i.taken);
        assert_eq!(i.next_pc, 0x1040);
        assert_eq!(s.pc, 0x1040);
        assert_eq!(i.result, 1);

        let (i, ..) = run_one(Instr::branch(Opcode::Blt, T1, T2, 64), |s, _| {
            s.write(T1, 5);
            s.write(T2, 5);
        });
        assert!(!i.taken);
        assert_eq!(i.next_pc, 0x1008);
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let (i, ..) = run_one(Instr::branch(Opcode::Blt, T1, T2, 8), |s, _| {
            s.write(T1, (-1i64) as u64);
            s.write(T2, 1);
        });
        assert!(i.taken, "-1 < 1 signed");
        let (i, ..) = run_one(Instr::branch(Opcode::Bltu, T1, T2, 8), |s, _| {
            s.write(T1, (-1i64) as u64);
            s.write(T2, 1);
        });
        assert!(!i.taken, "u64::MAX > 1 unsigned");
    }

    #[test]
    fn jal_links_and_jumps() {
        let (i, s, _) = run_one(
            Instr::rri(Opcode::Jal, RA, ZERO, -16).canonical(),
            |_, _| {},
        );
        assert_eq!(s.read(RA), 0x1008);
        assert_eq!(i.next_pc, 0x1000 - 16);
        assert!(i.taken);
    }

    #[test]
    fn jalr_computes_register_target() {
        let (i, s, _) = run_one(Instr::rri(Opcode::Jalr, ZERO, RA, 8), |s, _| {
            s.write(RA, 0x5000);
        });
        assert_eq!(i.next_pc, 0x5008);
        assert_eq!(s.read(ZERO), 0);
        assert!(!i.wrote_rd, "x0 link is discarded");
    }

    #[test]
    fn fp_arithmetic() {
        let (i, ..) = run_one(Instr::rrr(Opcode::Fmul, F0, F1, F2), |s, _| {
            s.write_f64(F1, 1.5);
            s.write_f64(F2, 4.0);
        });
        assert_eq!(f64::from_bits(i.result), 6.0);
        let (i, ..) = run_one(Instr::rrr(Opcode::Fle, T0, F1, F2).canonical(), |s, _| {
            s.write_f64(F1, 2.0);
            s.write_f64(F2, 2.0);
        });
        assert_eq!(i.result, 1);
    }

    #[test]
    fn fp_conversions_saturate() {
        let (i, ..) = run_one(
            Instr::rrr(Opcode::Fcvtfi, T0, F1, ZERO).canonical(),
            |s, _| {
                s.write_f64(F1, 1e300);
            },
        );
        assert_eq!(i.result as i64, i64::MAX);
        let (i, ..) = run_one(
            Instr::rrr(Opcode::Fcvtfi, T0, F1, ZERO).canonical(),
            |s, _| {
                s.write_f64(F1, f64::NAN);
            },
        );
        assert_eq!(i.result, 0);
        let (i, ..) = run_one(
            Instr::rrr(Opcode::Fcvtif, F0, T1, ZERO).canonical(),
            |s, _| {
                s.write(T1, (-3i64) as u64);
            },
        );
        assert_eq!(f64::from_bits(i.result), -3.0);
    }

    #[test]
    fn halt_freezes_pc() {
        let (i, s, _) = run_one(
            Instr {
                op: Opcode::Halt,
                rs1: A0,
                ..Instr::nop()
            },
            |s, _| {
                s.write(A0, 3);
            },
        );
        assert!(i.halted);
        assert_eq!(s.pc, 0x1000);
        assert_eq!(i.result, 3);
    }

    #[test]
    fn print_captures_value() {
        let (i, ..) = run_one(
            Instr {
                op: Opcode::Print,
                rs1: A0,
                ..Instr::nop()
            },
            |s, _| {
                s.write(A0, (-7i64) as u64);
            },
        );
        assert_eq!(i.printed, Some(-7));
    }

    fn run_rv32(
        instr: Instr,
        setup: impl FnOnce(&mut ArchState, &mut Memory),
    ) -> (StepInfo, ArchState, Memory) {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        setup(&mut s, &mut m);
        let info = step_rv32(&mut s, &instr, &mut m);
        (info, s, m)
    }

    #[test]
    fn native_auipc_adds_to_pc() {
        let (i, ..) = run_one(
            Instr::rri(Opcode::Auipc, T0, ZERO, 0x2000).canonical(),
            |_, _| {},
        );
        assert_eq!(i.result, 0x3000);
        assert_eq!(i.next_pc, 0x1008);
    }

    #[test]
    fn ecall_print_exit_and_unknown() {
        let ec = Instr {
            op: Opcode::Ecall,
            ..Instr::nop()
        }
        .canonical();
        let (i, ..) = run_one(ec, |s, _| {
            s.write(A7, 1);
            s.write(A0, (-9i64) as u64);
        });
        assert_eq!(i.printed, Some(-9));
        assert!(!i.halted);
        let (i, s, _) = run_one(ec, |s, _| {
            s.write(A7, 93);
            s.write(A0, 17);
        });
        assert!(i.halted);
        assert_eq!(i.result, 17);
        assert_eq!(s.pc, 0x1000);
        let (i, ..) = run_one(ec, |s, _| {
            s.write(A7, 400);
        });
        assert!(i.halted);
        assert_eq!(i.result, 400);
    }

    #[test]
    fn rv32_results_are_sign_extended_32() {
        let (i, s, _) = run_rv32(Instr::rrr(Opcode::Add, T0, T1, T2), |s, _| {
            s.write(T1, sext32(0x7FFF_FFFF));
            s.write(T2, 1);
        });
        assert_eq!(s.read(T0), sext32(0x8000_0000));
        assert_eq!(i.result as i64, i32::MIN as i64, "32-bit overflow wraps");
        assert_eq!(i.next_pc, 0x1004, "rv32i pc advances by 4");
    }

    #[test]
    fn rv32_shift_amounts_mask_to_five_bits() {
        // A 64-bit executor would shift by 33 and keep the bit; RV32I
        // masks to 5 bits, so 33 & 31 == 1.
        let (i, ..) = run_rv32(Instr::rrr(Opcode::Sll, T0, T1, T2), |s, _| {
            s.write(T1, 1);
            s.write(T2, 33);
        });
        assert_eq!(i.result, 2);
        let (i, ..) = run_rv32(Instr::rri(Opcode::Srai, T0, T1, 31), |s, _| {
            s.write(T1, sext32(0x8000_0000));
        });
        assert_eq!(i.result as i64, -1);
        let (i, ..) = run_rv32(Instr::rri(Opcode::Srli, T0, T1, 1), |s, _| {
            s.write(T1, sext32(0x8000_0000));
        });
        assert_eq!(i.result, 0x4000_0000, "srli shifts the 32-bit value");
    }

    #[test]
    fn rv32_division_edge_cases() {
        let (i, ..) = run_rv32(Instr::rrr(Opcode::Div, T0, T1, T2), |s, _| {
            s.write(T1, sext32(i32::MIN as u32));
            s.write(T2, (-1i64) as u64);
        });
        assert_eq!(i.result as i64, i32::MIN as i64, "MIN / -1 wraps to MIN");
        let (i, ..) = run_rv32(Instr::rrr(Opcode::Rem, T0, T1, T2), |s, _| {
            s.write(T1, sext32(i32::MIN as u32));
            s.write(T2, (-1i64) as u64);
        });
        assert_eq!(i.result, 0, "MIN rem -1 is 0");
        let (i, ..) = run_rv32(Instr::rrr(Opcode::Div, T0, T1, T2), |s, _| {
            s.write(T1, 7);
        });
        assert_eq!(i.result as i64, -1, "x / 0 is -1");
        let (i, ..) = run_rv32(Instr::rrr(Opcode::Divu, T0, T1, T2), |s, _| {
            s.write(T1, 7);
        });
        assert_eq!(i.result, sext32(u32::MAX), "x /u 0 is 2^32-1");
        let (i, ..) = run_rv32(Instr::rrr(Opcode::Remu, T0, T1, T2), |s, _| {
            s.write(T1, 7);
        });
        assert_eq!(i.result, 7, "x remu 0 is x");
    }

    #[test]
    fn rv32_narrow_loads_sign_extend() {
        let (i, ..) = run_rv32(Instr::load(Opcode::Lw, T0, T1, 0), |s, m| {
            s.write(T1, 0x2000);
            m.write_u32(0x2000, 0x8000_0001);
        });
        assert_eq!(i.result as i64, 0x8000_0001u32 as i32 as i64);
        let (i, ..) = run_rv32(Instr::load(Opcode::Lh, T0, T1, 0), |s, m| {
            s.write(T1, 0x2000);
            m.write_u16(0x2000, 0x8000);
        });
        assert_eq!(i.result as i64, -32768);
        let (i, ..) = run_rv32(Instr::load(Opcode::Lhu, T0, T1, 0), |s, m| {
            s.write(T1, 0x2000);
            m.write_u16(0x2000, 0x8000);
        });
        assert_eq!(i.result, 0x8000);
    }

    #[test]
    fn rv32_jalr_clears_bit_zero_and_links_pc_plus_4() {
        let (i, s, _) = run_rv32(Instr::rri(Opcode::Jalr, RA, T1, 3), |s, _| {
            s.write(T1, 0x5000);
        });
        assert_eq!(i.next_pc, 0x5002, "bit 0 cleared");
        assert_eq!(s.read(RA), 0x1004, "link is pc + 4");
    }

    #[test]
    fn rv32_branch_and_auipc_use_32_bit_pc_math() {
        let (i, ..) = run_rv32(Instr::branch(Opcode::Bne, T1, T2, -8), |s, _| {
            s.write(T1, 1);
        });
        assert!(i.taken);
        assert_eq!(i.next_pc, 0x1000 - 8);
        let (i, ..) = run_rv32(
            Instr::rri(Opcode::Auipc, T0, ZERO, 0x7FFF_F000).canonical(),
            |_, _| {},
        );
        assert_eq!(i.result, sext32(0x7FFF_F000u32.wrapping_add(0x1000)));
    }

    #[test]
    fn rv32_sltu_matches_32_bit_unsigned_order() {
        let (i, ..) = run_rv32(Instr::rrr(Opcode::Sltu, T0, T1, T2), |s, _| {
            s.write(T1, 1);
            s.write(T2, sext32(0xFFFF_FFFF));
        });
        assert_eq!(i.result, 1, "1 <u 0xFFFFFFFF in 32-bit order");
    }

    #[test]
    fn step_for_dispatches_by_isa() {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let i = step_for(IsaId::Rv32i, &mut s, &Instr::nop(), &mut m);
        assert_eq!(i.next_pc, 0x1004);
        let mut s = ArchState::new(0x1000);
        let i = step_for(IsaId::Native, &mut s, &Instr::nop(), &mut m);
        assert_eq!(i.next_pc, 0x1008);
    }

    #[test]
    fn operands_recorded_for_rstream() {
        let (i, ..) = run_one(Instr::rrr(Opcode::Sub, T0, T1, T2), |s, _| {
            s.write(T1, 100);
            s.write(T2, 30);
        });
        assert_eq!((i.src1, i.src2, i.result), (100, 30, 70));
    }
}
