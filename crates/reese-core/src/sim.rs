//! The REESE time-redundant simulator.

use crate::seqmap::{SeqSet, SeqTable};
use crate::{
    DetectionEvent, DurationFault, DurationReport, InjectedFault, RQueue, RQueueEntry, ReeseConfig,
    ReeseError, ReeseResult, ReeseStats, Stream,
};
use reese_cpu::Emulator;
use reese_isa::{FuClass, Program};
use reese_mem::MemHierarchy;
use reese_pipeline::{
    FetchUnit, Fetched, FuPool, LoadPlan, Lsq, Ruu, SchedulerMode, Seq, SimError, SimStop,
    WarmState,
};
use reese_trace::{CycleState, NoopObserver, Observer, Stage, Stream as TStream, TraceEvent};
use std::collections::VecDeque;

const DEADLOCK_HORIZON: u64 = 100_000;

/// The REESE machine: the baseline pipeline plus the R-stream Queue.
///
/// Every instruction executes twice. The primary (P) execution flows
/// through the normal out-of-order pipeline; on completing at the RUU
/// head it migrates — with its operands and result — into the R-stream
/// Queue instead of committing. The redundant (R) execution is issued
/// from the queue into whatever functional units the primary stream
/// leaves idle (or that the configured *spare* units provide), and the
/// two results are compared before the instruction finally commits.
/// A mismatch flushes the pipeline and the queue and re-executes from
/// the faulting instruction; a second consecutive mismatch is reported
/// as a permanent fault.
///
/// # Example
///
/// ```
/// use reese_core::{ReeseConfig, ReeseSim};
///
/// let prog = reese_isa::assemble(
///     "  li t0, 100\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
/// )?;
/// let r = ReeseSim::new(ReeseConfig::starting()).run(&prog)?;
/// assert_eq!(r.committed_instructions(), 202);
/// assert_eq!(r.stats.comparisons, 202); // every instruction re-executed
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReeseSim {
    config: ReeseConfig,
}

impl ReeseSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ReeseConfig::validate`]).
    pub fn new(config: ReeseConfig) -> ReeseSim {
        config.validate();
        ReeseSim { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ReeseConfig {
        &self.config
    }

    /// Runs a program to its `halt` with no injected faults.
    ///
    /// # Errors
    ///
    /// Returns [`ReeseError::Sim`] for program or simulator failures.
    pub fn run(&self, program: &Program) -> Result<ReeseResult, ReeseError> {
        self.run_with_faults(program, &[], u64::MAX)
    }

    /// Runs until `halt` or `max_instructions` commits.
    ///
    /// # Errors
    ///
    /// See [`ReeseSim::run`].
    pub fn run_limit(
        &self,
        program: &Program,
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_with_faults(program, &[], max_instructions)
    }

    /// Runs with a set of faults to inject.
    ///
    /// # Errors
    ///
    /// Returns [`ReeseError::PermanentFault`] if a sticky fault makes
    /// the same instruction fail comparison twice, or [`ReeseError::Sim`]
    /// for underlying failures.
    pub fn run_with_faults(
        &self,
        program: &Program,
        faults: &[InjectedFault],
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_with_faults_observed(program, faults, 0, max_instructions, &mut NoopObserver)
    }

    /// Like [`ReeseSim::run_with_faults`] — with an optional functional
    /// fast-forward of `skip` instructions first — and an [`Observer`]
    /// receiving per-instruction lifecycle events (P and R streams
    /// tagged separately) plus per-cycle machine state. Observers are
    /// passive: results are bit-identical with any observer, and with
    /// [`NoopObserver`] the hooks compile away.
    ///
    /// # Errors
    ///
    /// See [`ReeseSim::run_with_faults`].
    pub fn run_with_faults_observed<O: Observer>(
        &self,
        program: &Program,
        faults: &[InjectedFault],
        skip: u64,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        let mut m = ReeseMachine::new(&self.config, program, faults);
        if skip > 0 {
            let skipped = m.fetch.fast_forward(skip);
            m.next_migrate_seq = skipped;
        }
        m.run(max_instructions, obs)
    }

    /// Runs with an environmental disturbance of duration Δt (§2 of the
    /// paper): every instruction of the matching functional-unit class
    /// that completes — in either stream — while the fault is active has
    /// one result bit flipped. If both executions of an instruction fall
    /// inside the window, the identical corruption passes the comparison
    /// silently; the returned [`DurationReport`] counts those escapes.
    ///
    /// # Errors
    ///
    /// Returns [`ReeseError::PermanentFault`] if the disturbance outlasts
    /// the retry (the paper's stop-and-notify case), or
    /// [`ReeseError::Sim`] for underlying failures.
    pub fn run_with_duration_fault(
        &self,
        program: &Program,
        fault: DurationFault,
        max_instructions: u64,
    ) -> Result<(ReeseResult, DurationReport), ReeseError> {
        let mut m = ReeseMachine::new(&self.config, program, &[]);
        m.duration_fault = Some(fault);
        let result = m.run(max_instructions, &mut NoopObserver)?;
        Ok((result, m.duration_report))
    }

    /// Fast-forwards `skip` instructions functionally, then simulates
    /// the timed region (see
    /// [`reese_pipeline::PipelineSim::run_region`]). Injected-fault
    /// sequence numbers keep counting from program start, so faults
    /// inside the skipped region never fire.
    ///
    /// # Errors
    ///
    /// See [`ReeseSim::run`].
    pub fn run_region(
        &self,
        program: &Program,
        skip: u64,
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_with_faults_observed(program, &[], skip, max_instructions, &mut NoopObserver)
    }

    /// Resumes detailed timing mid-program from a checkpoint-restored
    /// emulator, fault-free, until `halt` or until `max_instructions`
    /// commit in this interval (see
    /// [`reese_pipeline::PipelineSim::run_interval`]). Statistics cover
    /// this interval only, for stitching with
    /// [`crate::ReeseStats::merge`].
    ///
    /// # Errors
    ///
    /// See [`ReeseSim::run`].
    pub fn run_interval(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_interval_observed(emulator, warm, max_instructions, &mut NoopObserver)
    }

    /// Like [`ReeseSim::run_interval`] but with an [`Observer`].
    ///
    /// # Errors
    ///
    /// See [`ReeseSim::run`].
    pub fn run_interval_observed<O: Observer>(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_interval_with_faults_observed(emulator, warm, &[], max_instructions, obs)
    }

    /// Like [`ReeseSim::run_interval`] but with injected faults. Fault
    /// sequence numbers stay in the *global* dynamic-instruction
    /// numbering (the restored machine continues counting from the
    /// checkpoint boundary), so a fault targeting an instruction before
    /// the boundary never fires.
    ///
    /// # Errors
    ///
    /// See [`ReeseSim::run_with_faults`].
    pub fn run_interval_with_faults(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        faults: &[InjectedFault],
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_interval_with_faults_observed(
            emulator,
            warm,
            faults,
            max_instructions,
            &mut NoopObserver,
        )
    }

    /// Like [`ReeseSim::run_interval_with_faults`] but with an
    /// [`Observer`].
    ///
    /// # Errors
    ///
    /// See [`ReeseSim::run_with_faults`].
    pub fn run_interval_with_faults_observed<O: Observer>(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        faults: &[InjectedFault],
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        let mut m = ReeseMachine::restored(&self.config, emulator, warm, faults);
        m.run(max_instructions, obs)
    }
}

struct ReeseMachine<'c> {
    cfg: &'c ReeseConfig,
    cycle: u64,
    fetch: FetchUnit,
    fetchq: VecDeque<Fetched>,
    ruu: Ruu,
    lsq: Lsq,
    rqueue: RQueue,
    fu: FuPool,
    hierarchy: MemHierarchy,
    stats: ReeseStats,
    output: Vec<i64>,
    exit_code: Option<u64>,
    last_commit_cycle: u64,
    /// Pending injected faults keyed by target seq; seq-sorted so any
    /// walk over the bookkeeping is process-independent (std-hash
    /// iteration order is seeded per process — a latent determinism
    /// bug for campaign byte-identity).
    faults: SeqTable<Vec<InjectedFault>>,
    /// Cycle each fault first fired, keyed by target seq (same layout).
    inject_cycles: SeqTable<u64>,
    detections: Vec<DetectionEvent>,
    retry_seq: Option<Seq>,
    permanent: Option<(Seq, u64)>,
    /// Next sequence number to migrate into the R-stream Queue.
    next_migrate_seq: Seq,
    duration_fault: Option<DurationFault>,
    duration_report: DurationReport,
    duration_p_hits: SeqSet,
    /// Reused buffers for the per-cycle writeback/issue work lists, so
    /// the steady-state loop never allocates.
    scratch_done: Vec<Seq>,
    scratch_rdone: Vec<Seq>,
    scratch_ready: Vec<Seq>,
    scratch_pending: Vec<Seq>,
}

impl<'c> ReeseMachine<'c> {
    fn new(cfg: &'c ReeseConfig, program: &Program, faults: &[InjectedFault]) -> ReeseMachine<'c> {
        let fetch = FetchUnit::new(program, cfg.pipeline.predictor.clone());
        let hierarchy = MemHierarchy::new(cfg.pipeline.hierarchy.clone());
        ReeseMachine::with_front_end(cfg, fetch, hierarchy, faults)
    }

    fn restored(
        cfg: &'c ReeseConfig,
        emulator: Emulator,
        warm: Option<&WarmState>,
        faults: &[InjectedFault],
    ) -> ReeseMachine<'c> {
        let start = emulator.instructions();
        let mut fetch = FetchUnit::from_restored(emulator, cfg.pipeline.predictor.clone());
        let mut hierarchy = MemHierarchy::new(cfg.pipeline.hierarchy.clone());
        if let Some(w) = warm {
            fetch.import_branch_state(&w.branch);
            hierarchy.import_state(&w.hierarchy);
        }
        let mut m = ReeseMachine::with_front_end(cfg, fetch, hierarchy, faults);
        // Sequence numbering continues from the checkpoint boundary.
        m.next_migrate_seq = start;
        m
    }

    fn with_front_end(
        cfg: &'c ReeseConfig,
        fetch: FetchUnit,
        hierarchy: MemHierarchy,
        faults: &[InjectedFault],
    ) -> ReeseMachine<'c> {
        let mut map: SeqTable<Vec<InjectedFault>> = SeqTable::new();
        for f in faults {
            map.get_or_insert_with(f.seq, Vec::new).push(*f);
        }
        ReeseMachine {
            cfg,
            cycle: 0,
            fetch,
            fetchq: VecDeque::with_capacity(cfg.pipeline.fetch_queue_size),
            ruu: Ruu::with_scheduler(cfg.pipeline.ruu_size, cfg.pipeline.scheduler),
            lsq: Lsq::new(cfg.pipeline.lsq_size),
            rqueue: RQueue::with_scheduler(cfg.rqueue_size, cfg.pipeline.scheduler),
            fu: FuPool::new(cfg.pipeline.fu),
            hierarchy,
            stats: ReeseStats::new(cfg.rqueue_size),
            output: Vec::new(),
            exit_code: None,
            last_commit_cycle: 0,
            faults: map,
            inject_cycles: SeqTable::new(),
            detections: Vec::new(),
            retry_seq: None,
            permanent: None,
            next_migrate_seq: 0,
            duration_fault: None,
            duration_report: DurationReport::default(),
            duration_p_hits: SeqSet::new(),
            scratch_done: Vec::new(),
            scratch_rdone: Vec::new(),
            scratch_ready: Vec::new(),
            scratch_pending: Vec::new(),
        }
    }

    fn run<O: Observer>(
        &mut self,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        let stop = loop {
            // The cycle hook fires for the *previous* cycle once all its
            // stages have run; the final cycle's hook fires after the
            // loop breaks.
            if O::ENABLED && self.cycle > 0 {
                obs.cycle(self.cycle, &self.cycle_state());
            }
            self.cycle += 1;
            if self.cfg.pipeline.scheduler == SchedulerMode::EventDriven {
                self.skip_idle_cycles(obs);
            }

            self.commit(max_instructions, obs);
            if let Some((seq, pc)) = self.permanent {
                return Err(ReeseError::PermanentFault { seq, pc });
            }
            if self.exit_code.is_some() {
                break SimStop::Halted;
            }
            if self.stats.pipeline.committed >= max_instructions {
                break SimStop::InstructionLimit;
            }
            self.migrate(obs);
            self.writeback(obs);
            self.issue(obs);
            self.dispatch(obs);
            self.do_fetch(obs);
            self.stats.rqueue_occupancy.record(self.rqueue.len() as u64);

            if self.cfg.pipeline.max_cycles > 0 && self.cycle >= self.cfg.pipeline.max_cycles {
                break SimStop::CycleLimit;
            }
            if self.machine_drained() {
                if let Some(e) = self.fetch.error() {
                    return Err(ReeseError::Sim(SimError::Emulation(e.clone())));
                }
                break SimStop::InstructionLimit;
            }
            if self.cycle - self.last_commit_cycle > DEADLOCK_HORIZON {
                return Err(ReeseError::Sim(SimError::Deadlock { cycle: self.cycle }));
            }
        };
        if O::ENABLED {
            obs.cycle(self.cycle, &self.cycle_state());
        }
        self.finalise();
        Ok(ReeseResult {
            stop,
            stats: self.stats.clone(),
            output: std::mem::take(&mut self.output),
            exit_code: self.exit_code,
            state_digest: self.fetch.state_digest(),
            detections: std::mem::take(&mut self.detections),
        })
    }

    fn machine_drained(&self) -> bool {
        self.fetch.exhausted()
            && self.fetchq.is_empty()
            && self.ruu.is_empty()
            && self.rqueue.is_empty()
    }

    /// The cumulative-counter snapshot handed to [`Observer::cycle`].
    /// Only built when an observer is enabled.
    fn cycle_state(&self) -> CycleState {
        CycleState {
            committed: self.stats.pipeline.committed,
            issued: self.stats.pipeline.issued,
            r_issued: self.stats.r_issued,
            r_missed: self.stats.r_missed,
            dispatch_stall_ruu: self.stats.pipeline.dispatch_stall_ruu_full,
            dispatch_stall_lsq: self.stats.pipeline.dispatch_stall_lsq_full,
            fetch_empty: self.stats.pipeline.fetch_queue_empty_cycles,
            fu_busy: self.fu.busy_by_class(),
            sched_ops: self.ruu.sched_ops() + self.rqueue.sched_ops(),
            ruu_occ: self.ruu.len(),
            lsq_occ: self.lsq.len(),
            rqueue_occ: self.rqueue.len(),
            fetchq_occ: self.fetchq.len(),
        }
    }

    /// Jumps the clock over cycles on which no stage can act (see the
    /// baseline's `skip_idle_cycles`): no comparable queue head, no
    /// migratable RUU instruction, no P or R completion due, nothing
    /// ready or pending to issue, nothing to dispatch, fetch dormant.
    /// Skipped cycles get their per-cycle statistics applied in bulk;
    /// the landing cycle runs the normal loop body so the cycle-limit
    /// and deadlock checks fire exactly as in `Scan` mode.
    fn skip_idle_cycles<O: Observer>(&mut self, obs: &mut O) {
        if self.rqueue.head().is_some_and(|e| e.commit_ready())
            || self.ruu.has_ready()
            || !self.fetchq.is_empty()
        {
            return;
        }
        // A completed migration candidate acts this cycle even when the
        // queue is full (it counts a `rqueue_full_stalls` sample).
        if self
            .ruu
            .get(self.next_migrate_seq)
            .is_some_and(|e| e.completed)
        {
            return;
        }
        let p_wake = self.ruu.next_completion_cycle();
        let r_wake = self.rqueue.next_r_completion_cycle();
        if p_wake.is_some_and(|t| t <= self.cycle) || r_wake.is_some_and(|t| t <= self.cycle) {
            return;
        }
        let fetch_at = self.fetch.next_fetch_cycle(self.cycle);
        if fetch_at == Some(self.cycle) {
            return;
        }
        // Pending redundant work no longer pins the clock to one cycle
        // at a time: during a skip nothing issues anywhere, so the pool's
        // per-class free times and the lookahead window are both static,
        // and the earliest cycle the R stream can move is the minimum
        // over the window of each entry's needed-class free time (memory
        // verifications need an address-generation ALU *and* a port, so
        // they wait for the later of the two). If anything can issue
        // *now*, this cycle acts; otherwise that minimum becomes one
        // more wake source.
        let mut fu_wake = None;
        let mut window_len = 0u64;
        if self.rqueue.has_pending_r() {
            let mut pending = std::mem::take(&mut self.scratch_pending);
            self.rqueue
                .pending_r_front_into(self.cfg.r_issue_lookahead, &mut pending);
            window_len = pending.len() as u64;
            let mut wake = u64::MAX;
            for &seq in &pending {
                let entry = self.rqueue.get(seq).expect("pending seq in queue");
                let at = if entry.info.mem.is_some() {
                    self.fu
                        .earliest_free(FuClass::IntAlu)
                        .max(self.fu.earliest_free(FuClass::MemPort))
                } else {
                    self.fu.earliest_free(entry.info.instr.op.fu_class())
                };
                wake = wake.min(at);
            }
            self.scratch_pending = pending;
            if wake <= self.cycle {
                return; // an R entry can issue this cycle
            }
            if wake < u64::MAX {
                fu_wake = Some(wake);
            }
        }
        let Some(target) = [p_wake, r_wake, fetch_at, fu_wake]
            .into_iter()
            .flatten()
            .min()
        else {
            // Nothing will ever wake: let the drain/deadlock path run.
            return;
        };
        let mut target = target.min(self.last_commit_cycle + DEADLOCK_HORIZON + 1);
        if self.cfg.pipeline.max_cycles > 0 {
            target = target.min(self.cfg.pipeline.max_cycles);
        }
        if target <= self.cycle {
            return;
        }
        // Per-cycle bookkeeping the skipped no-op cycles would have done:
        // the occupancy sample, the empty-queue counter, the R-priority
        // counter (`issue` counts it even when nothing issues), and —
        // when pending R work sat blocked on busy units — the
        // tried/missed accounting the scan-mode redundant scheduler
        // accrues every cycle it reconsiders the same window.
        let skipped = target - self.cycle;
        self.stats
            .rqueue_occupancy
            .record_n(self.rqueue.len() as u64, skipped);
        self.stats.pipeline.fetch_queue_empty_cycles += skipped;
        if self.rqueue.len() >= self.cfg.high_water {
            self.stats.r_priority_cycles += skipped;
        }
        self.stats.r_tried += window_len * skipped;
        self.stats.r_missed += window_len * skipped;
        if O::ENABLED {
            obs.idle_skip(self.cycle, target, &self.cycle_state());
        }
        self.cycle = target;
    }

    /// Commit from the R-stream Queue head: compare P and R results,
    /// then retire (paper Figure 1: comparison sits between writeback
    /// and commit).
    fn commit<O: Observer>(&mut self, max_instructions: u64, obs: &mut O) {
        for _ in 0..self.cfg.pipeline.width {
            if self.stats.pipeline.committed >= max_instructions {
                return;
            }
            let Some(head) = self.rqueue.head() else {
                return;
            };
            if !head.commit_ready() {
                return;
            }
            if !head.results_match() {
                self.detect_and_flush(obs);
                return;
            }
            let e = self.rqueue.pop_head().expect("checked head");
            if !self.cfg.early_removal {
                // The RUU entry was held until this comparison: retire
                // it now.
                debug_assert_eq!(self.ruu.head().map(|h| h.seq), Some(e.seq));
                let p = self.ruu.pop_head();
                self.lsq.remove(p.seq);
            }
            if !e.skip_r {
                self.stats.comparisons += 1;
                self.stats
                    .pr_separation
                    .record(e.r_complete_cycle.saturating_sub(e.p_complete_cycle));
                if O::ENABLED {
                    obs.event(TraceEvent {
                        cycle: self.cycle,
                        seq: e.seq,
                        pc: e.info.pc,
                        stage: Stage::Compare,
                        stream: TStream::Redundant,
                    });
                }
            } else {
                self.stats.r_skipped += 1;
            }
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: e.seq,
                    pc: e.info.pc,
                    stage: Stage::Commit,
                    stream: TStream::Primary,
                });
            }
            self.fetch.on_commit(1);
            self.stats.pipeline.committed += 1;
            self.last_commit_cycle = self.cycle;
            if self.retry_seq == Some(e.seq) {
                self.retry_seq = None;
            }
            if let Some(v) = e.info.printed {
                self.output.push(v);
            }
            if e.info.halted {
                self.exit_code = Some(e.info.result);
                return;
            }
        }
    }

    /// A comparison failed at the queue head: record the detection and
    /// flush the machine back to the faulting instruction.
    fn detect_and_flush<O: Observer>(&mut self, obs: &mut O) {
        let head = *self.rqueue.head().expect("mismatch needs a head");
        if O::ENABLED {
            // The mismatching comparison, then the squash it triggers.
            obs.event(TraceEvent {
                cycle: self.cycle,
                seq: head.seq,
                pc: head.info.pc,
                stage: Stage::Compare,
                stream: TStream::Redundant,
            });
            obs.event(TraceEvent {
                cycle: self.cycle,
                seq: head.seq,
                pc: head.info.pc,
                stage: Stage::Flush,
                stream: TStream::Primary,
            });
        }
        self.stats.detections += 1;
        self.stats.flushes += 1;
        self.detections.push(DetectionEvent {
            seq: head.seq,
            pc: head.info.pc,
            detect_cycle: self.cycle,
            inject_cycle: self
                .inject_cycles
                .get(head.seq)
                .copied()
                .unwrap_or(self.cycle),
        });
        if self.retry_seq == Some(head.seq) {
            // Second consecutive failure of the same instruction: the
            // paper stops the pipeline and notifies the user.
            self.permanent = Some((head.seq, head.info.pc));
            return;
        }
        self.retry_seq = Some(head.seq);
        self.next_migrate_seq = head.seq;
        self.rqueue.flush_all();
        self.ruu.flush_all();
        self.lsq.flush_all();
        self.fetchq.clear();
        self.fu.flush();
        self.fetch
            .flush_to(head.seq, self.cycle + 1 + u64::from(self.cfg.flush_penalty));
    }

    /// Migrate completed instructions from the RUU head into the
    /// R-stream Queue ("the R-stream Queue can be allowed to remove
    /// instructions from the pipeline before the instructions are ready
    /// to commit", §4.3).
    ///
    /// With `early_removal` the RUU entry is popped as it migrates,
    /// freeing window space; otherwise the RUU entry is held until the
    /// comparison commits (the conservative implementation), and only a
    /// copy enters the queue.
    fn migrate<O: Observer>(&mut self, obs: &mut O) {
        // Size the whole batch up front: one contiguous walk over the
        // completed run at the migration point replaces the per-seq
        // probe-check-full sequence the old loop ran for every entry.
        let run = self
            .ruu
            .completed_run_len(self.next_migrate_seq, self.cfg.pipeline.width);
        if run == 0 {
            return;
        }
        let space = self.rqueue.capacity() - self.rqueue.len();
        let take = run.min(space);
        for _ in 0..take {
            let seq = self.next_migrate_seq;
            let (info, p_done) = if self.cfg.early_removal {
                debug_assert_eq!(self.ruu.head().map(|h| h.seq), Some(seq));
                let e = self.ruu.pop_head();
                self.lsq.remove(e.seq);
                (e.info, e.complete_cycle)
            } else {
                let e = self.ruu.get(seq).expect("sized batch is resident");
                (*e.info, e.complete_cycle)
            };
            self.next_migrate_seq = seq + 1;
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq,
                    pc: info.pc,
                    stage: Stage::Migrate,
                    stream: TStream::Primary,
                });
            }
            let skip_r = !seq.is_multiple_of(self.cfg.duplication_period) && !info.halted;
            let mut entry = RQueueEntry::new(seq, info, self.cycle, skip_r).with_p_complete(p_done);
            self.apply_faults(&mut entry, Stream::Primary);
            self.apply_duration_fault(&mut entry, Stream::Primary);
            self.rqueue.push(entry);
        }
        if take < run {
            // The next completed candidate found the queue full — the
            // same single stall sample per cycle the per-entry loop
            // recorded before bailing out.
            self.stats.rqueue_full_stalls += 1;
        }
    }

    fn apply_faults(&mut self, entry: &mut RQueueEntry, stream: Stream) {
        Self::apply_faults_to(
            &mut self.faults,
            &mut self.inject_cycles,
            self.cycle,
            entry,
            stream,
        );
    }

    /// Field-wise form of [`Self::apply_faults`] so call sites that
    /// already hold a mutable borrow of the queue (writeback's in-place
    /// pass) can split-borrow the fault state instead of copying the
    /// entry out and back.
    fn apply_faults_to(
        faults: &mut SeqTable<Vec<InjectedFault>>,
        inject_cycles: &mut SeqTable<u64>,
        cycle: u64,
        entry: &mut RQueueEntry,
        stream: Stream,
    ) {
        if faults.is_empty() {
            // The common case outside injection campaigns: skip the
            // per-instruction probe entirely.
            return;
        }
        let Some(list) = faults.get_mut(entry.seq) else {
            return;
        };
        let mut fired = false;
        list.retain(|f| {
            if f.stream != stream {
                return true;
            }
            match stream {
                Stream::Primary => entry.p_value ^= f.mask(),
                Stream::Redundant => entry.r_value ^= f.mask(),
            }
            fired = true;
            f.sticky // transient faults are consumed; sticky ones persist
        });
        if fired {
            inject_cycles.insert_if_absent(entry.seq, cycle);
        }
        if list.is_empty() {
            faults.remove(entry.seq);
        }
    }

    /// Applies an active [`DurationFault`] to one stream's result if
    /// the corresponding execution completed inside the fault window on
    /// the affected functional-unit class.
    fn apply_duration_fault(&mut self, entry: &mut RQueueEntry, stream: Stream) {
        Self::apply_duration_fault_to(
            self.duration_fault,
            &mut self.duration_report,
            &mut self.duration_p_hits,
            &mut self.inject_cycles,
            self.cycle,
            entry,
            stream,
        );
    }

    /// Field-wise form of [`Self::apply_duration_fault`] (see
    /// [`Self::apply_faults_to`] for why it exists).
    fn apply_duration_fault_to(
        duration_fault: Option<DurationFault>,
        duration_report: &mut DurationReport,
        duration_p_hits: &mut SeqSet,
        inject_cycles: &mut SeqTable<u64>,
        cycle: u64,
        entry: &mut RQueueEntry,
        stream: Stream,
    ) {
        let Some(fault) = duration_fault else { return };
        if entry.info.instr.op.fu_class() != fault.class {
            return;
        }
        match stream {
            Stream::Primary if fault.active_at(entry.p_complete_cycle) => {
                entry.p_value ^= fault.mask();
                duration_report.p_corrupted += 1;
                duration_p_hits.insert(entry.seq);
                inject_cycles.insert_if_absent(entry.seq, cycle);
            }
            Stream::Redundant if fault.active_at(entry.r_complete_cycle) => {
                entry.r_value ^= fault.mask();
                duration_report.r_corrupted += 1;
                if duration_p_hits.contains(entry.seq) {
                    // Both copies hit inside the window: identical flips,
                    // the comparison will pass — a silent escape (§2).
                    duration_report.silent_both += 1;
                }
                inject_cycles.insert_if_absent(entry.seq, cycle);
            }
            _ => {}
        }
    }

    /// Writeback for both streams: P completions in the RUU (waking
    /// dependants, resolving control) and R completions in the queue.
    fn writeback<O: Observer>(&mut self, obs: &mut O) {
        // Primary stream, identical to the baseline.
        let mut done = std::mem::take(&mut self.scratch_done);
        match self.cfg.pipeline.scheduler {
            SchedulerMode::Scan => {
                done.clear();
                done.extend(
                    self.ruu
                        .iter()
                        .filter(|e| e.issued && !e.completed && e.complete_cycle <= self.cycle)
                        .map(|e| e.seq),
                );
            }
            SchedulerMode::EventDriven => self.ruu.take_completions_into(self.cycle, &mut done),
        }
        for seq in done.drain(..) {
            self.ruu.complete(seq);
            // Copy out the two Copy fields needed below rather than
            // cloning the whole entry per completion.
            let e = self.ruu.get(seq).expect("just completed");
            let is_mem = e.is_mem();
            let fetched = e.is_control().then_some(Fetched {
                seq: e.seq,
                info: *e.info,
                pred: e.pred,
            });
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq,
                    pc: e.info.pc,
                    stage: Stage::Writeback,
                    stream: TStream::Primary,
                });
            }
            if is_mem {
                self.lsq.mark_executed(seq);
            }
            if let Some(fetched) = fetched {
                self.fetch.resolve_control(
                    &fetched,
                    self.cycle,
                    self.cfg.pipeline.mispredict_penalty,
                );
            }
        }
        self.scratch_done = done;
        // Redundant stream completions: one in-place pass. Splitting the
        // borrows (queue vs fault state) avoids the old
        // copy-out/apply/copy-back dance, which walked the queue twice
        // per completion on top of the linear `get_mut` lookups. Fault
        // application is per-seq and order-independent, so the event
        // wheel's (cycle, seq) pop order is as good as queue order.
        let cycle = self.cycle;
        let event_driven = self.cfg.pipeline.scheduler == SchedulerMode::EventDriven;
        let mut r_done = std::mem::take(&mut self.scratch_rdone);
        if event_driven {
            self.rqueue.take_r_completions_into(cycle, &mut r_done);
        }
        let Self {
            rqueue,
            faults,
            inject_cycles,
            duration_fault,
            duration_report,
            duration_p_hits,
            ..
        } = self;
        let mut finish = |entry: &mut RQueueEntry| {
            entry.r_completed = true;
            Self::apply_faults_to(faults, inject_cycles, cycle, entry, Stream::Redundant);
            Self::apply_duration_fault_to(
                *duration_fault,
                duration_report,
                duration_p_hits,
                inject_cycles,
                cycle,
                entry,
                Stream::Redundant,
            );
        };
        if event_driven {
            for seq in r_done.drain(..) {
                let entry = rqueue.get_mut(seq).expect("completing seq in queue");
                finish(entry);
                if O::ENABLED {
                    obs.event(TraceEvent {
                        cycle,
                        seq,
                        pc: entry.info.pc,
                        stage: Stage::Writeback,
                        stream: TStream::Redundant,
                    });
                }
            }
        } else {
            for entry in rqueue.iter_mut() {
                if entry.r_issued && !entry.r_completed && entry.r_complete_cycle <= cycle {
                    finish(entry);
                    if O::ENABLED {
                        obs.event(TraceEvent {
                            cycle,
                            seq: entry.seq,
                            pc: entry.info.pc,
                            stage: Stage::Writeback,
                            stream: TStream::Redundant,
                        });
                    }
                }
            }
        }
        self.scratch_rdone = r_done;
    }

    /// Issue both streams under a shared width budget. Primary
    /// instructions have priority ("we want to always choose the P
    /// stream instruction, whenever possible", §4.3) until the queue
    /// crosses its high-water mark, at which point the redundant stream
    /// goes first to guarantee forward progress.
    fn issue<O: Observer>(&mut self, obs: &mut O) {
        let mut budget = self.cfg.pipeline.width;
        if self.rqueue.len() >= self.cfg.high_water {
            self.stats.r_priority_cycles += 1;
            self.issue_redundant(&mut budget, obs);
            self.issue_primary(&mut budget, obs);
        } else {
            self.issue_primary(&mut budget, obs);
            self.issue_redundant(&mut budget, obs);
        }
    }

    fn issue_primary<O: Observer>(&mut self, budget: &mut usize, obs: &mut O) {
        let mut ready = std::mem::take(&mut self.scratch_ready);
        let event_driven = self.cfg.pipeline.scheduler == SchedulerMode::EventDriven;
        match self.cfg.pipeline.scheduler {
            SchedulerMode::Scan => {
                ready.clear();
                ready.extend(self.ruu.ready_seqs());
            }
            SchedulerMode::EventDriven => self.ruu.ready_into(&mut ready),
        }
        for seq in ready.drain(..) {
            if *budget == 0 {
                break;
            }
            let e = self.ruu.get(seq).expect("ready seq in window");
            let op = e.info.instr.op;
            // O(1) per-class gate (event mode): `class_free` is exactly
            // `try_issue`'s success condition, so a blocked entry is
            // skipped on one compare instead of a per-unit probe. Stores
            // need an address-generation ALU and a port together; loads
            // are never gated because a forwarded load issues without
            // any functional unit.
            if event_driven {
                let blocked = match e.info.mem {
                    None => !self.fu.class_free(op.fu_class(), self.cycle),
                    Some(mem) if mem.is_store => {
                        !(self.fu.class_free(FuClass::IntAlu, self.cycle)
                            && self.fu.class_free(FuClass::MemPort, self.cycle))
                    }
                    Some(_) => false,
                };
                if blocked {
                    continue;
                }
            }
            let latency: u64 = if let Some(mem) = e.info.mem {
                if mem.is_store {
                    if !self.fu.try_issue_mem(op, self.cycle) {
                        continue;
                    }
                    1 + u64::from(self.hierarchy.access_data(mem.addr, true))
                } else {
                    match self.lsq.plan_load(seq, mem.addr, mem.width.bytes()) {
                        LoadPlan::Wait { .. } => continue,
                        LoadPlan::Forward { .. } => {
                            self.stats.pipeline.loads_forwarded += 1;
                            2
                        }
                        LoadPlan::CacheAccess => {
                            if !self.fu.try_issue_mem(op, self.cycle) {
                                continue;
                            }
                            1 + u64::from(self.hierarchy.access_data(mem.addr, false))
                        }
                    }
                }
            } else {
                if !self.fu.try_issue(op, self.cycle) {
                    continue;
                }
                u64::from(op.latency())
            };
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq,
                    pc: e.info.pc,
                    stage: Stage::Issue,
                    stream: TStream::Primary,
                });
            }
            self.ruu.mark_issued(seq, self.cycle, self.cycle + latency);
            *budget -= 1;
            self.stats.pipeline.issued += 1;
        }
        self.scratch_ready = ready;
    }

    /// Issue redundant executions from the front of the R-stream Queue.
    ///
    /// R instructions carry their operands and results, so they are
    /// always data-ready; the only constraints are functional units and
    /// the FIFO lookahead. R loads are guaranteed L1 hits — the primary
    /// access warmed the cache (§4.4) — so they charge the hit latency
    /// and a memory port but never walk the hierarchy.
    fn issue_redundant<O: Observer>(&mut self, budget: &mut usize, obs: &mut O) {
        let cycle = self.cycle;
        let l1d_hit = u64::from(self.hierarchy.l1d_hit_latency());
        let lookahead = self.cfg.r_issue_lookahead;
        let mut issued_now = 0u64;
        let mut tried = 0u64;
        match self.cfg.pipeline.scheduler {
            SchedulerMode::Scan => {
                let mut considered = 0usize;
                for entry in self.rqueue.iter_mut() {
                    if *budget == 0 || considered == lookahead {
                        break;
                    }
                    if entry.r_issued || entry.skip_r {
                        continue;
                    }
                    considered += 1;
                    tried += 1;
                    let op = entry.info.instr.op;
                    // R memory verifications recompute the effective
                    // address on an integer ALU and re-access the cache
                    // (a guaranteed L1 hit, §4.4) through a port, just
                    // like the primary access.
                    let issued = if entry.info.mem.is_some() {
                        self.fu.try_issue_mem(op, cycle)
                    } else {
                        self.fu.try_issue(op, cycle)
                    };
                    if !issued {
                        // A blocked entry does not dam the whole queue:
                        // the scheduler may slip past it within the small
                        // lookahead window (limited out-of-order slip,
                        // like a real issue window over the queue's head
                        // entries).
                        continue;
                    }
                    let latency: u64 = if entry.info.mem.is_some() {
                        1 + l1d_hit
                    } else {
                        u64::from(op.latency())
                    };
                    if O::ENABLED {
                        obs.event(TraceEvent {
                            cycle,
                            seq: entry.seq,
                            pc: entry.info.pc,
                            stage: Stage::Issue,
                            stream: TStream::Redundant,
                        });
                    }
                    entry.r_issued = true;
                    entry.r_complete_cycle = cycle + latency;
                    *budget -= 1;
                    issued_now += 1;
                }
            }
            SchedulerMode::EventDriven => {
                // `pending_r_front_into` is exactly the set of entries
                // the scan above would have counted as `considered`: the
                // first `lookahead` un-issued, un-skipped entries in
                // queue (= seq) order (served from the incrementally
                // maintained front window, not a per-cycle ring scan).
                let mut pending = std::mem::take(&mut self.scratch_pending);
                self.rqueue.pending_r_front_into(lookahead, &mut pending);
                for seq in pending.drain(..) {
                    if *budget == 0 {
                        break;
                    }
                    tried += 1;
                    let entry = self.rqueue.get(seq).expect("pending seq in queue");
                    let op = entry.info.instr.op;
                    let is_mem = entry.info.mem.is_some();
                    let pc = entry.info.pc;
                    // O(1) per-class gate: `class_free` is exactly the
                    // success condition of `try_issue`, so a busy class
                    // skips the entry without probing per-unit state.
                    let free = if is_mem {
                        self.fu.class_free(FuClass::IntAlu, cycle)
                            && self.fu.class_free(FuClass::MemPort, cycle)
                    } else {
                        self.fu.class_free(op.fu_class(), cycle)
                    };
                    if !free {
                        continue;
                    }
                    let issued = if is_mem {
                        self.fu.try_issue_mem(op, cycle)
                    } else {
                        self.fu.try_issue(op, cycle)
                    };
                    debug_assert!(issued, "a free class must accept the issue");
                    let latency: u64 = if is_mem {
                        1 + l1d_hit
                    } else {
                        u64::from(op.latency())
                    };
                    if O::ENABLED {
                        obs.event(TraceEvent {
                            cycle,
                            seq,
                            pc,
                            stage: Stage::Issue,
                            stream: TStream::Redundant,
                        });
                    }
                    self.rqueue.mark_r_issued(seq, cycle + latency);
                    *budget -= 1;
                    issued_now += 1;
                }
                self.scratch_pending = pending;
            }
        }
        self.stats.r_issued += issued_now;
        self.stats.r_tried += tried;
        self.stats.r_missed += tried - issued_now;
    }

    fn dispatch<O: Observer>(&mut self, obs: &mut O) {
        if self.fetchq.is_empty() {
            self.stats.pipeline.fetch_queue_empty_cycles += 1;
            return;
        }
        for _ in 0..self.cfg.pipeline.width {
            let Some(front) = self.fetchq.front() else {
                break;
            };
            if self.ruu.is_full() {
                self.stats.pipeline.dispatch_stall_ruu_full += 1;
                break;
            }
            if front.info.mem.is_some() && self.lsq.is_full() {
                self.stats.pipeline.dispatch_stall_lsq_full += 1;
                break;
            }
            let f = self.fetchq.pop_front().expect("checked front");
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: f.seq,
                    pc: f.info.pc,
                    stage: Stage::Dispatch,
                    stream: TStream::Primary,
                });
            }
            self.ruu.dispatch(f.seq, f.info, f.pred, self.cycle);
            if let Some(mem) = f.info.mem {
                self.lsq
                    .insert(f.seq, mem.addr, mem.width.bytes(), mem.is_store);
            }
        }
    }

    fn do_fetch<O: Observer>(&mut self, obs: &mut O) {
        let space = self.cfg.pipeline.fetch_queue_size - self.fetchq.len();
        if space == 0 {
            return;
        }
        let batch = self.fetch.fetch_cycle(
            self.cycle,
            self.cfg.pipeline.width,
            space,
            &mut self.hierarchy,
        );
        if O::ENABLED {
            for f in &batch {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: f.seq,
                    pc: f.info.pc,
                    stage: Stage::Fetch,
                    stream: TStream::Primary,
                });
            }
        }
        self.fetchq.extend(batch);
    }

    fn finalise(&mut self) {
        self.stats.pipeline.cycles = self.cycle;
        self.stats.pipeline.fetched = self.fetch.total_fetched();
        self.stats.pipeline.branch = self.fetch.branch_stats();
        self.stats.pipeline.hierarchy = Some(self.hierarchy.stats());
        self.stats.pipeline.fu_utilisation = FuClass::ALL
            .iter()
            .map(|&c| (c, self.fu.utilisation(c, self.cycle)))
            .collect();
        self.stats.rqueue_peak = self.rqueue.peak_occupancy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;
    use reese_pipeline::{PipelineConfig, PipelineSim};

    const LOOP: &str = "  li t0, 100\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n";

    fn run_reese(src: &str) -> ReeseResult {
        let prog = assemble(src).unwrap();
        ReeseSim::new(ReeseConfig::starting()).run(&prog).unwrap()
    }

    #[test]
    fn commits_same_instructions_as_baseline() {
        let prog = assemble(LOOP).unwrap();
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let reese = ReeseSim::new(ReeseConfig::starting()).run(&prog).unwrap();
        assert_eq!(
            reese.committed_instructions(),
            base.committed_instructions()
        );
        assert_eq!(reese.state_digest, base.state_digest);
        assert_eq!(reese.output, base.output);
    }

    #[test]
    fn every_instruction_is_compared() {
        let r = run_reese(LOOP);
        assert_eq!(r.stats.comparisons, r.committed_instructions());
        assert_eq!(r.stats.r_issued, r.committed_instructions());
        assert_eq!(r.stats.r_skipped, 0);
    }

    #[test]
    fn reese_is_slower_than_baseline_without_spares() {
        let prog = assemble(LOOP).unwrap();
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let reese = ReeseSim::new(ReeseConfig::starting()).run(&prog).unwrap();
        assert!(
            reese.cycles() >= base.cycles(),
            "doubling executed work cannot be free: reese {} vs base {}",
            reese.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn detects_primary_fault_and_recovers() {
        let prog = assemble(LOOP).unwrap();
        let faults = [InjectedFault::primary(10, 5)];
        let r = ReeseSim::new(ReeseConfig::starting())
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        assert_eq!(r.stats.detections, 1);
        assert_eq!(r.stats.flushes, 1);
        assert_eq!(r.detections.len(), 1);
        assert_eq!(r.detections[0].seq, 10);
        // Architectural results are unaffected by the transient fault.
        let clean = run_reese(LOOP);
        assert_eq!(r.committed_instructions(), clean.committed_instructions());
        assert_eq!(r.state_digest, clean.state_digest);
        assert!(r.cycles() > clean.cycles(), "recovery costs cycles");
    }

    #[test]
    fn detects_redundant_stream_fault() {
        let prog = assemble(LOOP).unwrap();
        let faults = [InjectedFault::redundant(20, 63)];
        let r = ReeseSim::new(ReeseConfig::starting())
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        assert_eq!(r.stats.detections, 1);
        assert_eq!(r.detections[0].seq, 20);
        assert_eq!(r.exit_code, Some(0));
    }

    #[test]
    fn multiple_faults_all_detected() {
        let prog = assemble(LOOP).unwrap();
        let faults = [
            InjectedFault::primary(5, 1),
            InjectedFault::primary(50, 2),
            InjectedFault::redundant(100, 3),
        ];
        let r = ReeseSim::new(ReeseConfig::starting())
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        assert_eq!(r.stats.detections, 3);
    }

    #[test]
    fn permanent_fault_reported() {
        let prog = assemble(LOOP).unwrap();
        let faults = [InjectedFault::permanent(10, 4)];
        let err = ReeseSim::new(ReeseConfig::starting())
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap_err();
        assert!(matches!(err, ReeseError::PermanentFault { seq: 10, .. }));
    }

    #[test]
    fn detection_latency_positive() {
        let prog = assemble(LOOP).unwrap();
        let faults = [InjectedFault::primary(10, 5)];
        let r = ReeseSim::new(ReeseConfig::starting())
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        assert!(
            r.detections[0].latency() >= 1,
            "compare happens after R execution"
        );
    }

    #[test]
    fn partial_duplication_skips_and_speeds_up() {
        let prog = assemble(LOOP).unwrap();
        let full = ReeseSim::new(ReeseConfig::starting()).run(&prog).unwrap();
        let half = ReeseSim::new(ReeseConfig::starting().with_duplication_period(2))
            .run(&prog)
            .unwrap();
        assert!(half.stats.r_skipped > 0);
        assert_eq!(
            half.stats.r_skipped + half.stats.comparisons,
            half.committed_instructions()
        );
        assert!(
            half.cycles() <= full.cycles(),
            "re-executing less cannot be slower"
        );
    }

    #[test]
    fn partial_duplication_misses_faults_on_skipped_instructions() {
        let prog = assemble(LOOP).unwrap();
        // Period 2 re-executes even seqs; corrupt an odd one.
        let faults = [InjectedFault::primary(11, 5)];
        let r = ReeseSim::new(ReeseConfig::starting().with_duplication_period(2))
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        assert_eq!(
            r.stats.detections, 0,
            "skipped instructions are unprotected"
        );
    }

    #[test]
    fn spare_alus_reduce_cycles() {
        // An ALU-saturated loop: spares must help REESE.
        let src = "  li s0, 300\n\
                   loop: addi t0, t0, 1\n  addi t1, t1, 1\n  addi t2, t2, 1\n  addi t3, t3, 1\n\
                   \n  addi s0, s0, -1\n  bnez s0, loop\n  halt\n";
        let prog = assemble(src).unwrap();
        let plain = ReeseSim::new(ReeseConfig::starting()).run(&prog).unwrap();
        let spared = ReeseSim::new(ReeseConfig::starting().with_spare_int_alus(2))
            .run(&prog)
            .unwrap();
        assert!(
            spared.cycles() < plain.cycles(),
            "+2 ALUs must speed up an ALU-bound REESE run ({} vs {})",
            spared.cycles(),
            plain.cycles()
        );
    }

    #[test]
    fn rqueue_never_exceeds_capacity() {
        let r = run_reese(LOOP);
        assert!(r.stats.rqueue_peak <= 32);
        assert!(r.stats.rqueue_occupancy.samples() > 0);
    }

    #[test]
    fn memory_program_matches_baseline() {
        let src = "  la a0, arr\n  li t0, 0\n  li t1, 16\n\
             loop: slli t2, t0, 3\n  add t3, a0, t2\n  sd t0, 0(t3)\n  ld t4, 0(t3)\n  add t5, t5, t4\n  addi t0, t0, 1\n  bne t0, t1, loop\n\
             \n  print t5\n  halt\n  .data\narr: .space 128\n";
        let prog = assemble(src).unwrap();
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let reese = ReeseSim::new(ReeseConfig::starting()).run(&prog).unwrap();
        assert_eq!(reese.output, base.output);
        assert_eq!(reese.output, vec![120]);
    }

    #[test]
    fn determinism() {
        let a = run_reese(LOOP);
        let b = run_reese(LOOP);
        assert_eq!(a, b);
    }

    #[test]
    fn instruction_limit_respected() {
        let prog = assemble("loop: addi t0, t0, 1\n  j loop\n  halt\n").unwrap();
        let r = ReeseSim::new(ReeseConfig::starting())
            .run_limit(&prog, 100)
            .unwrap();
        assert_eq!(r.stop, SimStop::InstructionLimit);
        assert!(r.committed_instructions() >= 100);
    }

    #[test]
    fn scan_and_event_driven_agree() {
        let mem_src = "  la a0, arr\n  li t0, 0\n  li t1, 16\n\
             loop: slli t2, t0, 3\n  add t3, a0, t2\n  sd t0, 0(t3)\n  ld t4, 0(t3)\n  add t5, t5, t4\n  addi t0, t0, 1\n  bne t0, t1, loop\n\
             \n  print t5\n  halt\n  .data\narr: .space 128\n";
        for src in [LOOP, mem_src] {
            let prog = assemble(src).unwrap();
            let scan = ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::Scan))
                .run(&prog)
                .unwrap();
            let event =
                ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::EventDriven))
                    .run(&prog)
                    .unwrap();
            assert_eq!(scan, event, "modes diverged on {src:?}");
        }
    }

    #[test]
    fn scan_and_event_driven_agree_under_faults() {
        // Detection flushes must fully drain the ready set and both
        // event wheels; any stale event would desynchronise the modes
        // (or fire against a re-delivered seq).
        let prog = assemble(LOOP).unwrap();
        let faults = [
            InjectedFault::primary(5, 1),
            InjectedFault::redundant(50, 63),
            InjectedFault::primary(100, 2),
        ];
        let scan = ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::Scan))
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        let event =
            ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::EventDriven))
                .run_with_faults(&prog, &faults, u64::MAX)
                .unwrap();
        assert_eq!(scan, event);
        assert_eq!(event.stats.detections, 3);
    }

    #[test]
    fn repeated_flush_stress_with_seeded_faults() {
        // A crude SplitMix64 drives fault placement so the schedule of
        // flushes is arbitrary but reproducible; every trial must agree
        // across modes and still drain to a clean halt.
        let prog = assemble(LOOP).unwrap();
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for trial in 0..10 {
            let faults: Vec<InjectedFault> = (0..3)
                .map(|_| {
                    let seq = next() % 200;
                    let bit = (next() % 64) as u8;
                    if next() % 2 == 0 {
                        InjectedFault::primary(seq, bit)
                    } else {
                        InjectedFault::redundant(seq, bit)
                    }
                })
                .collect();
            let scan = ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::Scan))
                .run_with_faults(&prog, &faults, u64::MAX)
                .unwrap();
            let event =
                ReeseSim::new(ReeseConfig::starting().with_scheduler(SchedulerMode::EventDriven))
                    .run_with_faults(&prog, &faults, u64::MAX)
                    .unwrap();
            assert_eq!(scan, event, "trial {trial} faults {faults:?}");
            assert_eq!(event.stop, SimStop::Halted, "trial {trial}");
            assert_eq!(event.exit_code, Some(0), "trial {trial}");
        }
    }

    #[test]
    fn fault_on_halt_detected() {
        let prog = assemble("  li a0, 7\n  halt\n").unwrap();
        // halt is seq 1; corrupt its (exit-code) result latch.
        let faults = [InjectedFault::primary(1, 0)];
        let r = ReeseSim::new(ReeseConfig::starting())
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        assert_eq!(r.stats.detections, 1);
        assert_eq!(r.exit_code, Some(7), "recovered exit code is clean");
    }
}
