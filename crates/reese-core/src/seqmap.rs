//! Seq-indexed fault bookkeeping with deterministic iteration order.
//!
//! `ReeseMachine` used to key its injected-fault lists and
//! injection-cycle records with `std::collections::HashMap<Seq, _>`.
//! Lookups were fine, but the std hasher is seeded per process, so the
//! *iteration* order of those maps differs run to run — a latent
//! determinism bug for anything that walks the bookkeeping (debug
//! dumps, future report fields) and a standing risk to the campaign
//! byte-identity guarantee. These containers store `(Seq, T)` pairs
//! sorted by seq instead: iteration order is defined by construction,
//! lookups are a branch-free binary search over a dense sorted slice
//! (cache-friendly at campaign sizes of one to a handful of faults),
//! and the sorted layout matches the arena's seq-indexed view of the
//! world — injected faults apply at migrate time in ascending seq
//! order, so inserts are pure appends on the hot path.

use reese_pipeline::Seq;

/// A map from sequence number to `T`, stored as a seq-sorted vector.
#[derive(Debug, Clone, Default)]
pub(crate) struct SeqTable<T> {
    entries: Vec<(Seq, T)>,
}

impl<T> SeqTable<T> {
    pub fn new() -> SeqTable<T> {
        SeqTable {
            entries: Vec::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, seq: Seq) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&seq, |&(s, _)| s)
    }

    pub fn get(&self, seq: Seq) -> Option<&T> {
        self.position(seq).ok().map(|i| &self.entries[i].1)
    }

    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut T> {
        match self.position(seq) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// The value at `seq`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, seq: Seq, default: impl FnOnce() -> T) -> &mut T {
        let i = match self.position(seq) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (seq, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Inserts `value` at `seq` only if no value is recorded yet (the
    /// `HashMap::entry(..).or_insert(..)` idiom).
    pub fn insert_if_absent(&mut self, seq: Seq, value: T) {
        if let Err(i) = self.position(seq) {
            self.entries.insert(i, (seq, value));
        }
    }

    pub fn remove(&mut self, seq: Seq) {
        if let Ok(i) = self.position(seq) {
            self.entries.remove(i);
        }
    }
}

/// A set of sequence numbers, stored sorted.
#[derive(Debug, Clone, Default)]
pub(crate) struct SeqSet {
    seqs: Vec<Seq>,
}

impl SeqSet {
    pub fn new() -> SeqSet {
        SeqSet { seqs: Vec::new() }
    }

    pub fn insert(&mut self, seq: Seq) {
        if let Err(i) = self.seqs.binary_search(&seq) {
            self.seqs.insert(i, seq);
        }
    }

    pub fn contains(&self, seq: Seq) -> bool {
        self.seqs.binary_search(&seq).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup_insert_remove() {
        let mut t: SeqTable<u64> = SeqTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(3), None);
        // Out-of-order inserts land sorted.
        for seq in [9, 3, 7] {
            t.get_or_insert_with(seq, || seq * 10);
        }
        assert_eq!(
            t.entries.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            [3, 7, 9]
        );
        assert_eq!(t.get(7), Some(&70));
        *t.get_mut(7).unwrap() = 71;
        assert_eq!(t.get(7), Some(&71));
        t.insert_if_absent(7, 999);
        assert_eq!(t.get(7), Some(&71), "first record wins");
        t.insert_if_absent(5, 50);
        assert_eq!(t.get(5), Some(&50));
        t.remove(7);
        assert_eq!(t.get(7), None);
        t.remove(7); // absent: no-op
        assert_eq!(t.entries.len(), 3);
    }

    #[test]
    fn set_insert_contains() {
        let mut s = SeqSet::new();
        for seq in [4, 1, 4, 2] {
            s.insert(seq);
        }
        assert!(s.contains(1) && s.contains(2) && s.contains(4));
        assert!(!s.contains(3));
        assert_eq!(s.seqs, [1, 2, 4], "duplicates collapse, order sorted");
    }
}
