//! REESE: REdundant Execution using Spare Elements.
//!
//! The paper's contribution (Nickel & Somani, DSN 2001): a
//! microarchitectural soft-error detection scheme that executes every
//! instruction twice on the same pipeline. The primary (P) stream runs
//! normally; completed instructions migrate — carrying their operands
//! and results — into the [`RQueue`] (the R-stream Queue) just before
//! commit, are re-executed through idle and *spare* functional units as
//! the redundant (R) stream, and commit only after the two results
//! compare equal. A mismatch flushes the machine and re-executes; a
//! persistent mismatch is reported as a permanent fault.
//!
//! The central experimental question ("how much spare hardware is
//! needed to decrease the fault-tolerance overhead to zero?") is asked
//! by layering [`ReeseConfig`] spares on top of any baseline
//! [`reese_pipeline::PipelineConfig`] and comparing IPC.
//!
//! # Example
//!
//! ```
//! use reese_core::{InjectedFault, ReeseConfig, ReeseSim};
//!
//! let prog = reese_isa::assemble(
//!     "  li t0, 50\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
//! )?;
//! // Inject a transient bit flip into instruction #10's result latch.
//! let sim = ReeseSim::new(ReeseConfig::starting().with_spare_int_alus(2));
//! let r = sim.run_with_faults(&prog, &[InjectedFault::primary(10, 5)], u64::MAX)?;
//! assert_eq!(r.stats.detections, 1); // caught by the P/R comparison
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod duplex;
mod fault;
mod rqueue;
mod seqmap;
mod sim;
mod stats;

pub use config::ReeseConfig;
pub use duplex::DuplexSim;
pub use fault::{DetectionEvent, DurationFault, DurationReport, InjectedFault, Stream};
pub use rqueue::{RQueue, RQueueEntry};
pub use sim::ReeseSim;
pub use stats::{ReeseError, ReeseResult, ReeseStats};

// The scheduler-mode knob lives on the pipeline config; re-export it so
// REESE-level callers can flip it without importing reese-pipeline.
pub use reese_pipeline::SchedulerMode;

// Campaigns and sweeps share one `ReeseSim` across worker threads
// (each `run*` call builds its own machine internally); keep the
// simulator and its configuration `Send + Sync` so that fan-out stays
// possible. This fails to compile if a non-shareable field sneaks in.
const _: () = {
    const fn shareable<T: Send + Sync>() {}
    shareable::<ReeseConfig>();
    shareable::<ReeseSim>();
};
