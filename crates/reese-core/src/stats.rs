//! REESE run results and statistics.

use crate::DetectionEvent;
use reese_pipeline::{PipelineStats, SimStop};
use reese_stats::Histogram;
use std::fmt;

/// Statistics specific to the time-redundant machine, on top of the
/// shared [`PipelineStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReeseStats {
    /// The shared pipeline statistics. `pipeline.committed` counts
    /// architecturally committed (primary) instructions, so IPC is
    /// directly comparable with the baseline, exactly as the paper
    /// plots it.
    pub pipeline: PipelineStats,
    /// Redundant executions issued.
    pub r_issued: u64,
    /// Redundant-issue opportunities considered: pending entries inside
    /// the lookahead window examined by the scheduler, whether or not a
    /// functional unit accepted them. Part of result equality, so the
    /// scan and event-driven schedulers must account it identically —
    /// including across bulk-skipped idle cycles.
    pub r_tried: u64,
    /// Considered-but-not-issued redundant opportunities: the window
    /// entry found no idle functional unit this cycle. `r_tried -
    /// r_issued` over the whole run; the paper's "unused hardware"
    /// harvest failing to materialise for a cycle.
    pub r_missed: u64,
    /// Comparisons performed at commit.
    pub comparisons: u64,
    /// Instructions committed without re-execution (partial duplication).
    pub r_skipped: u64,
    /// Mismatches detected.
    pub detections: u64,
    /// Detection flushes performed.
    pub flushes: u64,
    /// Cycles in which the RUU head was ready to migrate but the
    /// R-stream Queue was full.
    pub rqueue_full_stalls: u64,
    /// Per-cycle occupancy of the R-stream Queue.
    pub rqueue_occupancy: Histogram,
    /// Highest occupancy observed.
    pub rqueue_peak: usize,
    /// Cycles in which redundant issue had priority (high-water mode).
    pub r_priority_cycles: u64,
    /// Distribution of P-to-R completion separation in cycles — the
    /// quantity §2's detection guarantee is stated in terms of.
    pub pr_separation: Histogram,
}

impl ReeseStats {
    /// Creates zeroed statistics for a queue of the given capacity.
    pub fn new(rqueue_capacity: usize) -> ReeseStats {
        ReeseStats {
            pipeline: PipelineStats::default(),
            r_issued: 0,
            r_tried: 0,
            r_missed: 0,
            comparisons: 0,
            r_skipped: 0,
            detections: 0,
            flushes: 0,
            rqueue_full_stalls: 0,
            rqueue_occupancy: Histogram::new("rqueue_occupancy", rqueue_capacity + 1),
            rqueue_peak: 0,
            r_priority_cycles: 0,
            pr_separation: Histogram::new("pr_separation", 256),
        }
    }

    /// Committed instructions per cycle (primary stream only, the
    /// paper's metric).
    pub fn ipc(&self) -> f64 {
        self.pipeline.ipc()
    }

    /// Accumulates another interval's statistics into this one (see
    /// [`PipelineStats::merge`]): counters add, histograms pool, and
    /// the queue peak takes the maximum across intervals.
    pub fn merge(&mut self, other: &ReeseStats) {
        self.pipeline.merge(&other.pipeline);
        self.r_issued += other.r_issued;
        self.r_tried += other.r_tried;
        self.r_missed += other.r_missed;
        self.comparisons += other.comparisons;
        self.r_skipped += other.r_skipped;
        self.detections += other.detections;
        self.flushes += other.flushes;
        self.rqueue_full_stalls += other.rqueue_full_stalls;
        self.rqueue_occupancy.merge(&other.rqueue_occupancy);
        self.rqueue_peak = self.rqueue_peak.max(other.rqueue_peak);
        self.r_priority_cycles += other.r_priority_cycles;
        self.pr_separation.merge(&other.pr_separation);
    }
}

impl fmt::Display for ReeseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pipeline)?;
        writeln!(
            f,
            "redundant stream: {} issued ({} tried, {} missed), {} compared, {} skipped; {} detections, {} flushes",
            self.r_issued, self.r_tried, self.r_missed, self.comparisons, self.r_skipped,
            self.detections, self.flushes
        )?;
        writeln!(
            f,
            "R-queue: mean occupancy {:.1}, peak {}, {} full-queue stalls, {} R-priority cycles",
            self.rqueue_occupancy.mean(),
            self.rqueue_peak,
            self.rqueue_full_stalls,
            self.r_priority_cycles
        )?;
        writeln!(
            f,
            "P→R separation: mean {:.1} cycles, max {}",
            self.pr_separation.mean(),
            self.pr_separation.max()
        )
    }
}

/// The result of one REESE simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReeseResult {
    /// Why the run stopped.
    pub stop: SimStop,
    /// Timing and redundancy statistics.
    pub stats: ReeseStats,
    /// Values printed by committed `print` instructions.
    pub output: Vec<i64>,
    /// Exit code from the committed `halt`, if any.
    pub exit_code: Option<u64>,
    /// Digest of the final architectural register state.
    pub state_digest: u64,
    /// Every soft-error detection, in order.
    pub detections: Vec<DetectionEvent>,
}

impl ReeseResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Committed (primary) instruction count.
    pub fn committed_instructions(&self) -> u64 {
        self.stats.pipeline.committed
    }

    /// Simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.pipeline.cycles
    }
}

/// Errors a REESE run can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum ReeseError {
    /// An underlying simulation error.
    Sim(reese_pipeline::SimError),
    /// The same instruction failed comparison twice in a row: the fault
    /// is not transient. The paper: "the pipeline will have to stop and
    /// notify the user of the error."
    PermanentFault {
        /// Dynamic sequence number of the faulting instruction.
        seq: u64,
        /// Its PC.
        pc: u64,
    },
}

impl fmt::Display for ReeseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReeseError::Sim(e) => write!(f, "{e}"),
            ReeseError::PermanentFault { seq, pc } => {
                write!(
                    f,
                    "permanent fault: instruction #{seq} at {pc:#x} failed comparison twice"
                )
            }
        }
    }
}

impl std::error::Error for ReeseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReeseError::Sim(e) => Some(e),
            ReeseError::PermanentFault { .. } => None,
        }
    }
}

impl From<reese_pipeline::SimError> for ReeseError {
    fn from(e: reese_pipeline::SimError) -> Self {
        ReeseError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_delegates_to_pipeline() {
        let mut s = ReeseStats::new(32);
        s.pipeline.cycles = 100;
        s.pipeline.committed = 120;
        assert!((s.ipc() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = ReeseError::PermanentFault { seq: 7, pc: 0x1038 };
        let s = e.to_string();
        assert!(s.contains("#7"));
        assert!(s.contains("0x1038"));
    }
}
