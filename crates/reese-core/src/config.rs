//! REESE configuration.

use reese_pipeline::{FuCounts, PipelineConfig, SchedulerMode};

/// Configuration of the REESE time-redundant machine.
///
/// Wraps a baseline [`PipelineConfig`] and adds the REESE-specific
/// knobs: the R-stream Queue geometry, the redundant-issue policy, the
/// spare functional units the paper's experiments add, and the partial
/// duplication ratio from the paper's future-work section.
///
/// # Example
///
/// ```
/// use reese_core::ReeseConfig;
///
/// // The paper's "REESE + 2 ALU" variant on the starting machine.
/// let cfg = ReeseConfig::starting().with_spare_int_alus(2);
/// assert_eq!(cfg.pipeline.fu.int_alu, 6);
/// assert_eq!(cfg.rqueue_size, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReeseConfig {
    /// The underlying pipeline configuration.
    pub pipeline: PipelineConfig,
    /// R-stream Queue capacity; the paper's initial maximum is 32.
    pub rqueue_size: usize,
    /// Occupancy at which redundant issue takes priority over primary
    /// issue, so the queue cannot wedge the pipeline.
    pub high_water: usize,
    /// How many leading un-issued R-queue entries the redundant
    /// scheduler may consider per cycle (a small FIFO lookahead).
    pub r_issue_lookahead: usize,
    /// Re-execute one in `duplication_period` instructions. `1` is the
    /// paper's baseline (full duplication); larger values model the
    /// future-work partial-duplication idea of §7.
    pub duplication_period: u64,
    /// Extra front-end cycles charged after an error-detection flush.
    pub flush_penalty: u32,
    /// Whether completed instructions leave the RUU as they migrate into
    /// the R-stream Queue (§4.3's "remove instructions from the pipeline
    /// before the instructions are ready to commit" — an optimisation
    /// the paper notes "requires additional hardware complexity").
    ///
    /// The default is `false` (RUU entries are held until the comparison
    /// commits), which reproduces the paper's measured overheads; the
    /// `true` setting quantifies how much the proposed optimisation
    /// would buy (see the `ablations` bench).
    pub early_removal: bool,
}

impl ReeseConfig {
    /// REESE on the paper's Table 1 starting configuration with a
    /// 32-entry R-stream Queue and full duplication.
    pub fn starting() -> ReeseConfig {
        ReeseConfig::over(PipelineConfig::starting())
    }

    /// REESE layered over an arbitrary baseline machine.
    pub fn over(pipeline: PipelineConfig) -> ReeseConfig {
        let rqueue_size = 32;
        ReeseConfig {
            high_water: rqueue_size - pipeline.width.min(rqueue_size - 1),
            pipeline,
            rqueue_size,
            r_issue_lookahead: 8,
            duplication_period: 1,
            flush_penalty: 3,
            early_removal: false,
        }
    }

    /// Sets the RUU-removal policy (see [`ReeseConfig::early_removal`]).
    pub fn with_early_removal(mut self, on: bool) -> ReeseConfig {
        self.early_removal = on;
        self
    }

    /// Sets the R-stream Queue size (adjusting the high-water mark to
    /// stay `width` entries below the cap).
    pub fn with_rqueue_size(mut self, n: usize) -> ReeseConfig {
        self.rqueue_size = n;
        self.high_water = n.saturating_sub(self.pipeline.width).max(1);
        self
    }

    /// Adds spare integer ALUs (the paper's "+1 ALU" / "+2 ALU").
    pub fn with_spare_int_alus(mut self, n: u32) -> ReeseConfig {
        self.pipeline.fu.int_alu += n;
        self
    }

    /// Adds spare integer multiplier/dividers ("+1 Mult").
    pub fn with_spare_int_muldivs(mut self, n: u32) -> ReeseConfig {
        self.pipeline.fu.int_muldiv += n;
        self
    }

    /// Sets the functional-unit counts outright.
    pub fn with_fu(mut self, fu: FuCounts) -> ReeseConfig {
        self.pipeline.fu = fu;
        self
    }

    /// Sets the partial-duplication period (`1` = every instruction).
    pub fn with_duplication_period(mut self, k: u64) -> ReeseConfig {
        self.duplication_period = k;
        self
    }

    /// Selects the cycle-loop scheduler implementation (results are
    /// bit-identical either way; see
    /// [`reese_pipeline::SchedulerMode`]).
    pub fn with_scheduler(mut self, mode: SchedulerMode) -> ReeseConfig {
        self.pipeline.scheduler = mode;
        self
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline config is invalid, the R-queue is empty or
    /// smaller than the high-water mark, or the duplication period is 0.
    pub fn validate(&self) {
        self.pipeline.validate();
        assert!(self.rqueue_size > 0, "R-stream Queue must be non-empty");
        assert!(
            (1..=self.rqueue_size).contains(&self.high_water),
            "high-water mark must be within the queue"
        );
        assert!(self.r_issue_lookahead > 0, "lookahead must be positive");
        assert!(
            self.duplication_period > 0,
            "duplication period must be positive"
        );
    }
}

impl Default for ReeseConfig {
    fn default() -> Self {
        ReeseConfig::starting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starting_defaults() {
        let c = ReeseConfig::starting();
        assert_eq!(c.rqueue_size, 32);
        assert_eq!(c.high_water, 24, "width 8 below the cap");
        assert_eq!(c.duplication_period, 1);
        c.validate();
    }

    #[test]
    fn spares_add_to_pipeline_counts() {
        let c = ReeseConfig::starting()
            .with_spare_int_alus(2)
            .with_spare_int_muldivs(1);
        assert_eq!(c.pipeline.fu.int_alu, 6);
        assert_eq!(c.pipeline.fu.int_muldiv, 2);
        c.validate();
    }

    #[test]
    fn rqueue_resize_moves_high_water() {
        let c = ReeseConfig::starting().with_rqueue_size(64);
        assert_eq!(c.rqueue_size, 64);
        assert_eq!(c.high_water, 56);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "duplication period")]
    fn zero_duplication_rejected() {
        ReeseConfig::starting()
            .with_duplication_period(0)
            .validate();
    }

    #[test]
    fn scheduler_knob_reaches_pipeline() {
        let c = ReeseConfig::starting().with_scheduler(SchedulerMode::Scan);
        assert_eq!(c.pipeline.scheduler, SchedulerMode::Scan);
        c.validate();
    }

    #[test]
    fn over_wide_machine() {
        let c = ReeseConfig::over(PipelineConfig::starting().with_width(16));
        c.validate();
        assert_eq!(c.high_water, 16);
    }
}
