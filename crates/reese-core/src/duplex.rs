//! The dispatch-duplication baseline (after Franklin, the paper's
//! reference \[24\]).
//!
//! Franklin's scheme duplicates every instruction *at the dynamic
//! scheduler*: both copies occupy window slots, issue like ordinary
//! instructions, and their results are compared at the bottom of the
//! pipeline. There is no R-stream Queue, no carried operands, and no
//! guaranteed cache hits — the redundant copy competes for everything.
//!
//! REESE's §3 argument ("our approach goes a step further than
//! Franklin") is that deferring the redundant execution into a
//! dedicated queue frees window capacity and removes the redundant
//! stream's dependences. [`DuplexSim`] makes that claim measurable:
//! run the same workload on both machines and compare.

use crate::seqmap::SeqTable;
use crate::{DetectionEvent, InjectedFault, ReeseError, ReeseResult, ReeseStats, Stream};
use reese_cpu::Emulator;
use reese_isa::{FuClass, Program};
use reese_mem::MemHierarchy;
use reese_pipeline::{
    FetchUnit, Fetched, FuPool, LoadPlan, Lsq, PipelineConfig, PredictionInfo, Ruu, SchedulerMode,
    Seq, SimError, SimStop, WarmState,
};
use reese_trace::{CycleState, NoopObserver, Observer, Stage, Stream as TStream, TraceEvent};
use std::collections::VecDeque;

const DEADLOCK_HORIZON: u64 = 100_000;

/// The dispatch-duplication machine: every fetched instruction enters
/// the RUU twice (redundant copy first, primary copy second, so
/// dependants read the primary), both copies execute, and the pair
/// commits together after an implicit comparison.
///
/// # Example
///
/// ```
/// use reese_core::DuplexSim;
/// use reese_pipeline::PipelineConfig;
///
/// let prog = reese_isa::assemble(
///     "  li t0, 10\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
/// )?;
/// let r = DuplexSim::new(PipelineConfig::starting()).run(&prog)?;
/// assert_eq!(r.committed_instructions(), 22);
/// assert_eq!(r.stats.comparisons, 22);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DuplexSim {
    config: PipelineConfig,
}

impl DuplexSim {
    /// Creates the dispatch-duplication machine over a baseline
    /// pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PipelineConfig) -> DuplexSim {
        config.validate();
        DuplexSim { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs a program to its `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`ReeseError::Sim`] for program or simulator failures.
    pub fn run(&self, program: &Program) -> Result<ReeseResult, ReeseError> {
        self.run_limit(program, u64::MAX)
    }

    /// Runs until `halt` or `max_instructions` commits.
    ///
    /// # Errors
    ///
    /// See [`DuplexSim::run`].
    pub fn run_limit(
        &self,
        program: &Program,
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_limit_observed(program, max_instructions, &mut NoopObserver)
    }

    /// Like [`DuplexSim::run_limit`] but reporting per-cycle state and
    /// per-instruction lifecycle events to `obs`. With
    /// [`NoopObserver`] this compiles down to exactly
    /// [`DuplexSim::run_limit`].
    ///
    /// # Errors
    ///
    /// See [`DuplexSim::run`].
    pub fn run_limit_observed<O: Observer>(
        &self,
        program: &Program,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_with_faults_observed(program, &[], max_instructions, obs)
    }

    /// Runs with a set of faults to inject. A fault targeting dynamic
    /// instruction `seq` corrupts one copy's latched result, so the
    /// pair comparison at commit fails: the machine records a
    /// [`DetectionEvent`], flushes, and re-executes from the faulting
    /// instruction — Franklin's comparison at the bottom of the
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ReeseError::PermanentFault`] if a sticky fault makes
    /// the same comparison fail twice in a row.
    pub fn run_with_faults(
        &self,
        program: &Program,
        faults: &[InjectedFault],
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_with_faults_observed(program, faults, max_instructions, &mut NoopObserver)
    }

    /// Like [`DuplexSim::run_with_faults`] but with an observer.
    ///
    /// # Errors
    ///
    /// See [`DuplexSim::run_with_faults`].
    pub fn run_with_faults_observed<O: Observer>(
        &self,
        program: &Program,
        faults: &[InjectedFault],
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        let mut m = DuplexMachine::new(&self.config, program, faults);
        m.run(max_instructions, obs)
    }

    /// Runs one sharded interval: continues from a restored emulator,
    /// optionally warming the caches and branch predictor from a
    /// [`WarmState`], and stops after `max_instructions` pair commits.
    ///
    /// # Errors
    ///
    /// See [`DuplexSim::run`].
    pub fn run_interval(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_interval_observed(emulator, warm, max_instructions, &mut NoopObserver)
    }

    /// Like [`DuplexSim::run_interval`] but with an observer.
    ///
    /// # Errors
    ///
    /// See [`DuplexSim::run`].
    pub fn run_interval_observed<O: Observer>(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_interval_with_faults_observed(emulator, warm, &[], max_instructions, obs)
    }

    /// Like [`DuplexSim::run_interval`] but with injected faults. Fault
    /// sequence numbers are global (the restored emulator keeps
    /// counting from its checkpoint boundary).
    ///
    /// # Errors
    ///
    /// See [`DuplexSim::run_with_faults`].
    pub fn run_interval_with_faults(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        faults: &[InjectedFault],
        max_instructions: u64,
    ) -> Result<ReeseResult, ReeseError> {
        self.run_interval_with_faults_observed(
            emulator,
            warm,
            faults,
            max_instructions,
            &mut NoopObserver,
        )
    }

    /// Like [`DuplexSim::run_interval_with_faults`] but with an
    /// observer.
    ///
    /// # Errors
    ///
    /// See [`DuplexSim::run_with_faults`].
    pub fn run_interval_with_faults_observed<O: Observer>(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        faults: &[InjectedFault],
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        let mut m = DuplexMachine::restored(&self.config, emulator, warm, faults);
        m.run(max_instructions, obs)
    }
}

struct DuplexMachine<'c> {
    cfg: &'c PipelineConfig,
    cycle: u64,
    fetch: FetchUnit,
    fetchq: VecDeque<Fetched>,
    ruu: Ruu,
    lsq: Lsq,
    fu: FuPool,
    hierarchy: MemHierarchy,
    stats: ReeseStats,
    output: Vec<i64>,
    exit_code: Option<u64>,
    last_commit_cycle: u64,
    scratch_done: Vec<Seq>,
    scratch_ready: Vec<Seq>,
    /// Pending injected faults keyed by *fetch* seq (the pair index).
    faults: SeqTable<Vec<InjectedFault>>,
    detections: Vec<DetectionEvent>,
    /// Pair currently re-executing after a detection flush; a second
    /// consecutive mismatch there is a permanent fault.
    retry_seq: Option<Seq>,
    permanent: Option<(Seq, u64)>,
}

impl<'c> DuplexMachine<'c> {
    fn new(
        cfg: &'c PipelineConfig,
        program: &Program,
        faults: &[InjectedFault],
    ) -> DuplexMachine<'c> {
        let fetch = FetchUnit::new(program, cfg.predictor.clone());
        let hierarchy = MemHierarchy::new(cfg.hierarchy.clone());
        DuplexMachine::with_front_end(cfg, fetch, hierarchy, faults)
    }

    fn restored(
        cfg: &'c PipelineConfig,
        emulator: Emulator,
        warm: Option<&WarmState>,
        faults: &[InjectedFault],
    ) -> DuplexMachine<'c> {
        let mut fetch = FetchUnit::from_restored(emulator, cfg.predictor.clone());
        let mut hierarchy = MemHierarchy::new(cfg.hierarchy.clone());
        if let Some(w) = warm {
            fetch.import_branch_state(&w.branch);
            hierarchy.import_state(&w.hierarchy);
        }
        DuplexMachine::with_front_end(cfg, fetch, hierarchy, faults)
    }

    fn with_front_end(
        cfg: &'c PipelineConfig,
        fetch: FetchUnit,
        hierarchy: MemHierarchy,
        faults: &[InjectedFault],
    ) -> DuplexMachine<'c> {
        let mut map: SeqTable<Vec<InjectedFault>> = SeqTable::new();
        for f in faults {
            map.get_or_insert_with(f.seq, Vec::new).push(*f);
        }
        DuplexMachine {
            cfg,
            cycle: 0,
            fetch,
            fetchq: VecDeque::with_capacity(cfg.fetch_queue_size),
            ruu: Ruu::with_scheduler(cfg.ruu_size, cfg.scheduler),
            lsq: Lsq::new(cfg.lsq_size),
            fu: FuPool::new(cfg.fu),
            hierarchy,
            stats: ReeseStats::new(1),
            output: Vec::new(),
            exit_code: None,
            last_commit_cycle: 0,
            scratch_done: Vec::new(),
            scratch_ready: Vec::new(),
            faults: map,
            detections: Vec::new(),
            retry_seq: None,
            permanent: None,
        }
    }

    fn run<O: Observer>(
        &mut self,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<ReeseResult, ReeseError> {
        let stop = loop {
            if O::ENABLED && self.cycle > 0 {
                obs.cycle(self.cycle, &self.cycle_state());
            }
            self.cycle += 1;
            if self.cfg.scheduler == SchedulerMode::EventDriven {
                self.skip_idle_cycles(obs);
            }

            self.commit(max_instructions, obs);
            if let Some((seq, pc)) = self.permanent {
                return Err(ReeseError::PermanentFault { seq, pc });
            }
            if self.exit_code.is_some() {
                break SimStop::Halted;
            }
            if self.stats.pipeline.committed >= max_instructions {
                break SimStop::InstructionLimit;
            }
            self.writeback(obs);
            self.issue(obs);
            self.dispatch(obs);
            self.do_fetch(obs);

            if self.cfg.max_cycles > 0 && self.cycle >= self.cfg.max_cycles {
                break SimStop::CycleLimit;
            }
            if self.fetch.exhausted() && self.fetchq.is_empty() && self.ruu.is_empty() {
                if let Some(e) = self.fetch.error() {
                    return Err(ReeseError::Sim(SimError::Emulation(e.clone())));
                }
                break SimStop::InstructionLimit;
            }
            if self.cycle - self.last_commit_cycle > DEADLOCK_HORIZON {
                return Err(ReeseError::Sim(SimError::Deadlock { cycle: self.cycle }));
            }
        };
        if O::ENABLED {
            obs.cycle(self.cycle, &self.cycle_state());
        }
        self.finalise();
        Ok(ReeseResult {
            stop,
            stats: self.stats.clone(),
            output: std::mem::take(&mut self.output),
            exit_code: self.exit_code,
            state_digest: self.fetch.state_digest(),
            detections: std::mem::take(&mut self.detections),
        })
    }

    /// Jumps the clock over cycles on which no stage can act (see the
    /// baseline's `skip_idle_cycles`). Pair commit needs a *completed*
    /// head, so an incomplete head makes commit a guaranteed no-op.
    /// Snapshot of the cumulative counters and queue occupancies the
    /// metrics sampler records. Duplex has no R-stream Queue, so the
    /// R-queue occupancy and missed-slot counters stay zero; redundant
    /// copies are identified by RUU seq parity instead.
    fn cycle_state(&self) -> CycleState {
        CycleState {
            committed: self.stats.pipeline.committed,
            issued: self.stats.pipeline.issued,
            r_issued: self.stats.r_issued,
            r_missed: 0,
            dispatch_stall_ruu: self.stats.pipeline.dispatch_stall_ruu_full,
            dispatch_stall_lsq: self.stats.pipeline.dispatch_stall_lsq_full,
            fetch_empty: self.stats.pipeline.fetch_queue_empty_cycles,
            fu_busy: self.fu.busy_by_class(),
            sched_ops: self.ruu.sched_ops(),
            ruu_occ: self.ruu.len(),
            lsq_occ: self.lsq.len(),
            rqueue_occ: 0,
            fetchq_occ: self.fetchq.len(),
        }
    }

    fn skip_idle_cycles<O: Observer>(&mut self, obs: &mut O) {
        if self.ruu.head().is_some_and(|e| e.completed)
            || self.ruu.has_ready()
            || !self.fetchq.is_empty()
        {
            return;
        }
        if self
            .ruu
            .next_completion_cycle()
            .is_some_and(|t| t <= self.cycle)
        {
            return;
        }
        let fetch_at = self.fetch.next_fetch_cycle(self.cycle);
        if fetch_at == Some(self.cycle) {
            return;
        }
        let Some(target) = [self.ruu.next_completion_cycle(), fetch_at]
            .into_iter()
            .flatten()
            .min()
        else {
            // Nothing will ever wake: let the drain/deadlock path run.
            return;
        };
        let mut target = target.min(self.last_commit_cycle + DEADLOCK_HORIZON + 1);
        if self.cfg.max_cycles > 0 {
            target = target.min(self.cfg.max_cycles);
        }
        if target <= self.cycle {
            return;
        }
        self.stats.pipeline.fetch_queue_empty_cycles += target - self.cycle;
        if O::ENABLED {
            obs.idle_skip(self.cycle, target, &self.cycle_state());
        }
        self.cycle = target;
    }

    /// Commits pairs: the redundant copy (even RUU seq) and the primary
    /// copy (odd RUU seq) retire together once both have completed —
    /// the comparison point of Franklin's scheme.
    fn commit<O: Observer>(&mut self, max_instructions: u64, obs: &mut O) {
        for _ in 0..self.cfg.width / 2 {
            if self.stats.pipeline.committed >= max_instructions {
                return;
            }
            let Some(r_copy) = self.ruu.head() else {
                return;
            };
            if !r_copy.completed {
                return;
            }
            debug_assert_eq!(r_copy.seq % 2, 0, "head of a pair is the redundant copy");
            let Some(p_copy) = self.ruu.get(r_copy.seq + 1) else {
                return;
            };
            if !p_copy.completed {
                return;
            }
            // The comparison point: a pending injected fault corrupted
            // one copy's latched result, so the pair mismatches here.
            let pair_seq = r_copy.seq / 2;
            if self.faults.get(pair_seq).is_some_and(|l| !l.is_empty()) {
                let (pc, r_done, p_done) =
                    (p_copy.info.pc, r_copy.complete_cycle, p_copy.complete_cycle);
                self.detect_and_flush(pair_seq, pc, r_done, p_done, obs);
                return;
            }
            let r_copy = self.ruu.pop_head();
            let p_copy = self.ruu.pop_head();
            debug_assert_eq!(r_copy.info.result, p_copy.info.result, "fault-free run");
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: r_copy.seq,
                    pc: p_copy.info.pc,
                    stage: Stage::Compare,
                    stream: TStream::Redundant,
                });
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: p_copy.seq,
                    pc: p_copy.info.pc,
                    stage: Stage::Commit,
                    stream: TStream::Primary,
                });
            }
            self.lsq.remove(r_copy.seq);
            self.lsq.remove(p_copy.seq);
            self.fetch.on_commit(1);
            self.stats.pipeline.committed += 1;
            self.stats.comparisons += 1;
            self.last_commit_cycle = self.cycle;
            if self.retry_seq == Some(pair_seq) {
                self.retry_seq = None;
            }
            if let Some(v) = p_copy.info.printed {
                self.output.push(v);
            }
            if p_copy.info.halted {
                self.exit_code = Some(p_copy.info.result);
                return;
            }
        }
    }

    /// A pair comparison failed at the RUU head: record the detection
    /// and flush the machine back to the faulting instruction. A
    /// transient fault is consumed (the re-execution compares clean); a
    /// sticky fault fires again and the second consecutive mismatch
    /// stops the machine as a permanent fault.
    fn detect_and_flush<O: Observer>(
        &mut self,
        seq: Seq,
        pc: u64,
        r_done: u64,
        p_done: u64,
        obs: &mut O,
    ) {
        let list = self.faults.get_mut(seq).expect("pending fault");
        let fault = list[0];
        if !fault.sticky {
            list.remove(0);
        }
        let inject_cycle = match fault.stream {
            Stream::Primary => p_done,
            Stream::Redundant => r_done,
        };
        if O::ENABLED {
            // The mismatching comparison, then the squash it triggers.
            obs.event(TraceEvent {
                cycle: self.cycle,
                seq: seq * 2,
                pc,
                stage: Stage::Compare,
                stream: TStream::Redundant,
            });
            obs.event(TraceEvent {
                cycle: self.cycle,
                seq: seq * 2 + 1,
                pc,
                stage: Stage::Flush,
                stream: TStream::Primary,
            });
        }
        self.stats.detections += 1;
        self.stats.flushes += 1;
        self.detections.push(DetectionEvent {
            seq,
            pc,
            detect_cycle: self.cycle,
            inject_cycle,
        });
        if self.retry_seq == Some(seq) {
            // Second consecutive failure of the same pair: stop the
            // pipeline and notify, as REESE's permanent-fault path does.
            self.permanent = Some((seq, pc));
            return;
        }
        self.retry_seq = Some(seq);
        self.ruu.flush_all();
        self.lsq.flush_all();
        self.fetchq.clear();
        self.fu.flush();
        // Duplex has no dedicated flush ladder; the recovery squash
        // costs the same front-end refill as a mispredict.
        self.fetch
            .flush_to(seq, self.cycle + 1 + u64::from(self.cfg.mispredict_penalty));
    }

    fn writeback<O: Observer>(&mut self, obs: &mut O) {
        let mut done = std::mem::take(&mut self.scratch_done);
        match self.cfg.scheduler {
            SchedulerMode::Scan => {
                done.clear();
                done.extend(
                    self.ruu
                        .iter()
                        .filter(|e| e.issued && !e.completed && e.complete_cycle <= self.cycle)
                        .map(|e| e.seq),
                );
            }
            SchedulerMode::EventDriven => self.ruu.take_completions_into(self.cycle, &mut done),
        }
        for seq in done.drain(..) {
            self.ruu.complete(seq);
            // Copy out the two Copy fields needed below rather than
            // cloning the whole entry per completion.
            let e = self.ruu.get(seq).expect("just completed");
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq,
                    pc: e.info.pc,
                    stage: Stage::Writeback,
                    stream: if seq % 2 == 0 {
                        TStream::Redundant
                    } else {
                        TStream::Primary
                    },
                });
            }
            let is_mem = e.is_mem();
            // Resolve control once per pair, on the primary copy.
            let fetched = (e.is_control() && e.seq % 2 == 1).then_some(Fetched {
                seq: e.seq / 2,
                info: *e.info,
                pred: e.pred,
            });
            if is_mem {
                self.lsq.mark_executed(seq);
            }
            if let Some(fetched) = fetched {
                self.fetch
                    .resolve_control(&fetched, self.cycle, self.cfg.mispredict_penalty);
            }
        }
        self.scratch_done = done;
    }

    fn issue<O: Observer>(&mut self, obs: &mut O) {
        let mut ready = std::mem::take(&mut self.scratch_ready);
        match self.cfg.scheduler {
            SchedulerMode::Scan => {
                ready.clear();
                ready.extend(self.ruu.ready_seqs());
            }
            SchedulerMode::EventDriven => self.ruu.ready_into(&mut ready),
        }
        let event_driven = self.cfg.scheduler == SchedulerMode::EventDriven;
        let mut issued = 0usize;
        for seq in ready.drain(..) {
            if issued == self.cfg.width {
                break;
            }
            let e = self.ruu.get(seq).expect("ready seq in window");
            let op = e.info.instr.op;
            // O(1) per-class gate (event mode) — see the baseline
            // machine's `issue`: loads are never gated because a
            // forwarded load needs no functional unit.
            if event_driven {
                let blocked = match e.info.mem {
                    None => !self.fu.class_free(op.fu_class(), self.cycle),
                    Some(mem) if mem.is_store => {
                        !(self.fu.class_free(FuClass::IntAlu, self.cycle)
                            && self.fu.class_free(FuClass::MemPort, self.cycle))
                    }
                    Some(_) => false,
                };
                if blocked {
                    continue;
                }
            }
            let latency: u64 = if let Some(mem) = e.info.mem {
                if mem.is_store {
                    if !self.fu.try_issue_mem(op, self.cycle) {
                        continue;
                    }
                    1 + u64::from(self.hierarchy.access_data(mem.addr, true))
                } else {
                    match self.lsq.plan_load(seq, mem.addr, mem.width.bytes()) {
                        LoadPlan::Wait { .. } => continue,
                        LoadPlan::Forward { .. } => {
                            self.stats.pipeline.loads_forwarded += 1;
                            2
                        }
                        LoadPlan::CacheAccess => {
                            if !self.fu.try_issue_mem(op, self.cycle) {
                                continue;
                            }
                            1 + u64::from(self.hierarchy.access_data(mem.addr, false))
                        }
                    }
                }
            } else {
                if !self.fu.try_issue(op, self.cycle) {
                    continue;
                }
                u64::from(op.latency())
            };
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq,
                    pc: e.info.pc,
                    stage: Stage::Issue,
                    stream: if seq % 2 == 0 {
                        TStream::Redundant
                    } else {
                        TStream::Primary
                    },
                });
            }
            self.ruu.mark_issued(seq, self.cycle, self.cycle + latency);
            issued += 1;
            self.stats.pipeline.issued += 1;
            if seq % 2 == 0 {
                self.stats.r_issued += 1;
            }
        }
        self.scratch_ready = ready;
    }

    /// Dispatches each fetched instruction twice: the redundant copy
    /// first (even RUU seq), the primary second (odd), so later readers
    /// rename against the primary.
    fn dispatch<O: Observer>(&mut self, obs: &mut O) {
        if self.fetchq.is_empty() {
            self.stats.pipeline.fetch_queue_empty_cycles += 1;
            return;
        }
        for _ in 0..self.cfg.width / 2 {
            let Some(front) = self.fetchq.front() else {
                break;
            };
            // A pair needs two RUU slots (and two LSQ slots if memory).
            if self.ruu.len() + 2 > self.ruu.capacity() {
                self.stats.pipeline.dispatch_stall_ruu_full += 1;
                break;
            }
            if front.info.mem.is_some() && self.lsq.len() + 2 > self.lsq.capacity() {
                self.stats.pipeline.dispatch_stall_lsq_full += 1;
                break;
            }
            let f = self.fetchq.pop_front().expect("checked front");
            let (r_seq, p_seq) = (f.seq * 2, f.seq * 2 + 1);
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: r_seq,
                    pc: f.info.pc,
                    stage: Stage::Dispatch,
                    stream: TStream::Redundant,
                });
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: p_seq,
                    pc: f.info.pc,
                    stage: Stage::Dispatch,
                    stream: TStream::Primary,
                });
            }
            self.ruu
                .dispatch(r_seq, f.info, PredictionInfo::default(), self.cycle);
            self.ruu.dispatch(p_seq, f.info, f.pred, self.cycle);
            if let Some(mem) = f.info.mem {
                self.lsq
                    .insert(r_seq, mem.addr, mem.width.bytes(), mem.is_store);
                self.lsq
                    .insert(p_seq, mem.addr, mem.width.bytes(), mem.is_store);
            }
        }
    }

    fn do_fetch<O: Observer>(&mut self, obs: &mut O) {
        let space = self.cfg.fetch_queue_size - self.fetchq.len();
        if space == 0 {
            return;
        }
        let batch = self
            .fetch
            .fetch_cycle(self.cycle, self.cfg.width, space, &mut self.hierarchy);
        if O::ENABLED {
            for f in &batch {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: f.seq,
                    pc: f.info.pc,
                    stage: Stage::Fetch,
                    stream: TStream::Primary,
                });
            }
        }
        self.fetchq.extend(batch);
    }

    fn finalise(&mut self) {
        self.stats.pipeline.cycles = self.cycle;
        self.stats.pipeline.fetched = self.fetch.total_fetched();
        self.stats.pipeline.branch = self.fetch.branch_stats();
        self.stats.pipeline.hierarchy = Some(self.hierarchy.stats());
        self.stats.pipeline.fu_utilisation = FuClass::ALL
            .iter()
            .map(|&c| (c, self.fu.utilisation(c, self.cycle)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReeseConfig, ReeseSim};
    use reese_isa::assemble;
    use reese_pipeline::PipelineSim;

    const LOOP: &str = "  li t0, 100\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n";

    #[test]
    fn duplex_commits_correct_results() {
        let prog = assemble(LOOP).unwrap();
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let dup = DuplexSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        assert_eq!(dup.committed_instructions(), base.committed_instructions());
        assert_eq!(dup.state_digest, base.state_digest);
        assert_eq!(dup.output, base.output);
        assert_eq!(dup.stats.comparisons, dup.committed_instructions());
    }

    #[test]
    fn duplex_is_slower_than_baseline() {
        let prog = assemble(LOOP).unwrap();
        let base = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let dup = DuplexSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        assert!(
            dup.cycles() > base.cycles(),
            "two window slots per instruction must cost cycles ({} vs {})",
            dup.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn reese_beats_dispatch_duplication() {
        // The paper's §3 claim: deferring redundancy into the R-stream
        // Queue beats duplicating in the scheduler window.
        let prog = reese_workloads_like_program();
        let dup = DuplexSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let reese = ReeseSim::new(ReeseConfig::starting()).run(&prog).unwrap();
        assert!(
            reese.ipc() > dup.ipc(),
            "REESE {:.3} must beat dispatch duplication {:.3}",
            reese.ipc(),
            dup.ipc()
        );
    }

    /// A loop with enough mixed work for the window pressure to matter.
    fn reese_workloads_like_program() -> reese_isa::Program {
        assemble(
            "  la a0, buf\n  li s0, 400\n\
             loop: andi t4, s0, 255\n  slli t2, t4, 3\n  add t3, a0, t2\n  ld t0, 0(t3)\n\
             \n  addi t0, t0, 3\n  mul t1, t0, s0\n  xor t5, t5, t1\n  sd t0, 0(t3)\n\
             \n  addi s0, s0, -1\n  bnez s0, loop\n  print t5\n  halt\n\
             \n  .data\nbuf: .space 2048\n",
        )
        .unwrap()
    }

    #[test]
    fn duplex_handles_memory_and_calls() {
        let prog = assemble(
            "        .entry main\n\
             f:      sd a0, -8(sp)\n\
                     ld a1, -8(sp)\n\
                     add a0, a1, a1\n\
                     ret\n\
             main:   li a0, 21\n\
                     call f\n\
                     print a0\n\
                     halt\n",
        )
        .unwrap();
        let r = DuplexSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        assert_eq!(r.output, vec![42]);
    }

    #[test]
    fn duplex_respects_instruction_limit() {
        let prog = assemble("loop: addi t0, t0, 1\n  j loop\n  halt\n").unwrap();
        let r = DuplexSim::new(PipelineConfig::starting())
            .run_limit(&prog, 50)
            .unwrap();
        assert_eq!(r.stop, SimStop::InstructionLimit);
        assert!(r.committed_instructions() >= 50);
    }

    #[test]
    fn scan_and_event_driven_agree() {
        let prog = reese_workloads_like_program();
        let scan = DuplexSim::new(PipelineConfig::starting().with_scheduler(SchedulerMode::Scan))
            .run(&prog)
            .unwrap();
        let event =
            DuplexSim::new(PipelineConfig::starting().with_scheduler(SchedulerMode::EventDriven))
                .run(&prog)
                .unwrap();
        assert_eq!(scan, event);
    }

    #[test]
    fn transient_fault_is_detected_and_recovered() {
        let prog = assemble(LOOP).unwrap();
        let clean = DuplexSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let faulted = DuplexSim::new(PipelineConfig::starting())
            .run_with_faults(&prog, &[InjectedFault::primary(40, 7)], u64::MAX)
            .unwrap();
        assert_eq!(faulted.stats.detections, 1);
        assert_eq!(faulted.stats.flushes, 1);
        assert_eq!(faulted.detections.len(), 1);
        assert_eq!(faulted.detections[0].seq, 40);
        // Recovery is architecturally transparent.
        assert_eq!(faulted.output, clean.output);
        assert_eq!(faulted.state_digest, clean.state_digest);
        assert!(
            faulted.cycles() > clean.cycles(),
            "the detection flush must cost cycles"
        );
    }

    #[test]
    fn redundant_stream_fault_is_detected_too() {
        let prog = assemble(LOOP).unwrap();
        let r = DuplexSim::new(PipelineConfig::starting())
            .run_with_faults(&prog, &[InjectedFault::redundant(10, 3)], u64::MAX)
            .unwrap();
        assert_eq!(r.stats.detections, 1);
        assert!(r.detections[0].detect_cycle >= r.detections[0].inject_cycle);
    }

    #[test]
    fn permanent_fault_stops_the_machine() {
        let prog = assemble(LOOP).unwrap();
        let err = DuplexSim::new(PipelineConfig::starting())
            .run_with_faults(&prog, &[InjectedFault::permanent(15, 2)], u64::MAX)
            .unwrap_err();
        assert!(matches!(err, ReeseError::PermanentFault { seq: 15, .. }));
    }

    #[test]
    fn faulted_scan_and_event_driven_agree() {
        let prog = reese_workloads_like_program();
        let faults = [
            InjectedFault::primary(100, 5),
            InjectedFault::redundant(900, 60),
        ];
        let scan = DuplexSim::new(PipelineConfig::starting().with_scheduler(SchedulerMode::Scan))
            .run_with_faults(&prog, &faults, u64::MAX)
            .unwrap();
        let event =
            DuplexSim::new(PipelineConfig::starting().with_scheduler(SchedulerMode::EventDriven))
                .run_with_faults(&prog, &faults, u64::MAX)
                .unwrap();
        assert_eq!(scan, event);
        assert_eq!(scan.stats.detections, 2);
    }

    #[test]
    fn duplex_determinism() {
        let prog = assemble(LOOP).unwrap();
        let a = DuplexSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        let b = DuplexSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        assert_eq!(a, b);
    }
}
