//! Fault-injection hooks and detection events.
//!
//! REESE's claim is that any transient error that corrupts the *result*
//! of an instruction before the P/R comparison is detected. This module
//! defines the injection interface the simulator honours; the
//! `reese-faults` crate builds Monte-Carlo campaigns on top of it.
//!
//! Injection corrupts only the simulator's *latched* result copies — the
//! P value carried into the R-stream Queue, or the recomputed R value —
//! never the architectural state, which matches the transient-fault
//! model: the re-execution after the detection flush sees clean values.

use reese_pipeline::Seq;

/// Which execution stream a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// The primary execution's latched result.
    Primary,
    /// The redundant execution's recomputed result.
    Redundant,
}

/// A single fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Dynamic instruction (fetch sequence number) to corrupt.
    pub seq: Seq,
    /// Which stream's result latch is hit.
    pub stream: Stream,
    /// Bit to flip in the 64-bit result.
    pub bit: u8,
    /// Transient faults (`false`) fire once and vanish, so the
    /// post-detection re-execution succeeds. Sticky faults (`true`)
    /// re-apply on every replay, modelling a permanent fault that makes
    /// REESE stop the machine.
    pub sticky: bool,
}

impl InjectedFault {
    /// A transient fault flipping `bit` of instruction `seq`'s primary
    /// result.
    pub fn primary(seq: Seq, bit: u8) -> InjectedFault {
        InjectedFault {
            seq,
            stream: Stream::Primary,
            bit: bit & 63,
            sticky: false,
        }
    }

    /// A transient fault flipping `bit` of instruction `seq`'s redundant
    /// result.
    pub fn redundant(seq: Seq, bit: u8) -> InjectedFault {
        InjectedFault {
            seq,
            stream: Stream::Redundant,
            bit: bit & 63,
            sticky: false,
        }
    }

    /// A permanent (sticky) fault on the primary result: the comparison
    /// fails again after the flush and REESE reports a permanent fault.
    pub fn permanent(seq: Seq, bit: u8) -> InjectedFault {
        InjectedFault {
            seq,
            stream: Stream::Primary,
            bit: bit & 63,
            sticky: true,
        }
    }

    /// The XOR mask this fault applies.
    pub fn mask(&self) -> u64 {
        1u64 << (self.bit & 63)
    }
}

/// An environmental disturbance lasting Δt cycles (paper §2).
///
/// While active, the fault flips one result bit of *every* instruction
/// of the matching functional-unit class that completes execution inside
/// the window — in the primary stream, the redundant stream, or both.
/// This is the paper's transient model: "if the cause of a soft error
/// is present for time Δt, then detection of the soft error is only
/// guaranteed if the P-stream and R-stream executions are separated by
/// a time greater than Δt. If the executions are separated by a smaller
/// time period, then both might be susceptible to the same soft error"
/// — in which case both copies are corrupted identically and the
/// comparison passes silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurationFault {
    /// First cycle the disturbance is active.
    pub start_cycle: u64,
    /// Number of cycles it stays active (Δt).
    pub duration: u64,
    /// The functional-unit class it strikes.
    pub class: reese_isa::FuClass,
    /// Result bit it flips.
    pub bit: u8,
}

impl DurationFault {
    /// Whether the disturbance is active at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        cycle >= self.start_cycle && cycle < self.start_cycle + self.duration
    }

    /// The XOR mask applied to affected results.
    pub fn mask(&self) -> u64 {
        1u64 << (self.bit & 63)
    }
}

/// Outcome accounting for a [`DurationFault`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationReport {
    /// Instructions whose primary execution was corrupted.
    pub p_corrupted: u64,
    /// Instructions whose redundant execution was corrupted.
    pub r_corrupted: u64,
    /// Instructions corrupted in *both* streams — identical flips, so
    /// the comparison passes and the error escapes silently (the §2
    /// separation hazard).
    pub silent_both: u64,
}

impl DurationReport {
    /// Instructions corrupted in exactly one stream (detectable).
    pub fn detectable(&self) -> u64 {
        self.p_corrupted + self.r_corrupted - 2 * self.silent_both
    }

    /// Whether any corruption happened at all.
    pub fn affected(&self) -> bool {
        self.p_corrupted + self.r_corrupted > 0
    }
}

/// A soft error detected by the P/R comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionEvent {
    /// Dynamic instruction whose comparison failed.
    pub seq: Seq,
    /// PC of that instruction.
    pub pc: u64,
    /// Cycle at which the mismatch was caught.
    pub detect_cycle: u64,
    /// Cycle at which the corrupted value entered the window (the
    /// enqueue of the P value, or the completion of the R execution).
    pub inject_cycle: u64,
}

impl DetectionEvent {
    /// Cycles from corruption to detection.
    pub fn latency(&self) -> u64 {
        self.detect_cycle.saturating_sub(self.inject_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_mask_bits() {
        let f = InjectedFault::primary(10, 65);
        assert_eq!(f.bit, 1);
        assert_eq!(f.mask(), 2);
        assert_eq!(f.stream, Stream::Primary);
        let f = InjectedFault::redundant(10, 63);
        assert_eq!(f.mask(), 1 << 63);
        assert_eq!(f.stream, Stream::Redundant);
    }

    #[test]
    fn detection_latency() {
        let d = DetectionEvent {
            seq: 1,
            pc: 0x1000,
            detect_cycle: 120,
            inject_cycle: 100,
        };
        assert_eq!(d.latency(), 20);
    }
}
