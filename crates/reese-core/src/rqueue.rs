//! The R-stream Queue: the heart of REESE.

use reese_cpu::StepInfo;
use reese_pipeline::{EventWheel, ReadyRing, SchedulerMode, Seq};
use std::collections::VecDeque;

/// One R-stream Queue entry.
///
/// Per the paper (§4.3), an entry "keeps the values of the instruction
/// operands and the result of the operation", so the redundant execution
/// has no data or control dependences: operands come from the entry, the
/// branch direction is already known, and the result comparison needs no
/// register-file read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RQueueEntry {
    /// Dynamic sequence number of the instruction.
    pub seq: Seq,
    /// Full functional record from the primary execution.
    pub info: StepInfo,
    /// The latched primary-stream result that will be compared
    /// (fault injection may corrupt this copy).
    pub p_value: u64,
    /// The redundant-stream result (valid once `r_completed`; fault
    /// injection may corrupt it).
    pub r_value: u64,
    /// Whether the redundant execution has been issued.
    pub r_issued: bool,
    /// Whether the redundant execution has completed.
    pub r_completed: bool,
    /// Cycle the redundant execution completes (valid once issued).
    pub r_complete_cycle: u64,
    /// Cycle the primary execution completed (for P↔R separation
    /// statistics and duration-fault windows).
    pub p_complete_cycle: u64,
    /// Cycle the entry entered the queue.
    pub enqueue_cycle: u64,
    /// Entry exempted from re-execution (partial duplication, §7).
    pub skip_r: bool,
}

impl RQueueEntry {
    /// Creates an entry from a completed primary-stream instruction.
    pub fn new(seq: Seq, info: StepInfo, cycle: u64, skip_r: bool) -> RQueueEntry {
        RQueueEntry {
            seq,
            info,
            p_value: info.result,
            r_value: info.result,
            r_issued: false,
            r_completed: false,
            r_complete_cycle: 0,
            p_complete_cycle: cycle,
            enqueue_cycle: cycle,
            skip_r,
        }
    }

    /// Overrides the recorded primary-completion cycle.
    pub fn with_p_complete(mut self, cycle: u64) -> RQueueEntry {
        self.p_complete_cycle = cycle;
        self
    }

    /// Whether the entry is ready to be compared and committed.
    pub fn commit_ready(&self) -> bool {
        self.skip_r || self.r_completed
    }

    /// Whether the primary and redundant results agree.
    ///
    /// Skipped entries vacuously match (nothing was recomputed).
    pub fn results_match(&self) -> bool {
        self.skip_r || self.p_value == self.r_value
    }
}

/// The FIFO of completed primary instructions awaiting redundant
/// execution and comparison, sitting between writeback and commit
/// (paper Figure 1).
///
/// # Example
///
/// ```
/// use reese_core::RQueue;
///
/// let q = RQueue::new(32);
/// assert!(q.is_empty());
/// assert_eq!(q.capacity(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct RQueue {
    entries: VecDeque<RQueueEntry>,
    capacity: usize,
    peak_occupancy: usize,
    mode: SchedulerMode,
    /// Seqs awaiting redundant issue (non-skip, not yet issued), kept in
    /// ascending order — the redundant scheduler's FIFO-lookahead order.
    /// [`SchedulerMode::EventDriven`] only.
    pending_r: ReadyRing,
    /// Redundant-completion event wheel keyed by
    /// `(r_complete_cycle, seq)`. [`SchedulerMode::EventDriven`] only.
    completions: EventWheel,
    /// Scheduler bookkeeping operations performed so far: ReadyRing
    /// inserts/removes plus EventWheel pushes/pops, plus front-window
    /// rebuild scans. Stays 0 under [`SchedulerMode::Scan`]; read by
    /// the metrics sampler.
    sched_ops: u64,
    /// Incrementally maintained cache of the oldest
    /// `min(pending, front_limit)` pending seqs, ascending — the
    /// redundant scheduler's lookahead window. Valid only when
    /// `front_valid`; rebuilt lazily from `pending_r` otherwise.
    front_window: Vec<Seq>,
    /// The lookahead limit `front_window` was built for.
    front_limit: usize,
    /// Whether `front_window` currently reflects `pending_r`.
    front_valid: bool,
}

impl RQueue {
    /// Creates an empty queue with the default (event-driven) scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RQueue {
        RQueue::with_scheduler(capacity, SchedulerMode::default())
    }

    /// Creates an empty queue with an explicit scheduler mode. Under
    /// [`SchedulerMode::Scan`] no incremental structures are maintained
    /// and the simulator falls back to whole-queue scans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_scheduler(capacity: usize, mode: SchedulerMode) -> RQueue {
        assert!(capacity > 0, "R-stream Queue capacity must be positive");
        RQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            peak_occupancy: 0,
            mode,
            pending_r: ReadyRing::new(capacity),
            completions: EventWheel::new(),
            sched_ops: 0,
            front_window: Vec::new(),
            front_limit: 0,
            front_valid: false,
        }
    }

    /// Scheduler bookkeeping operations (ReadyRing + EventWheel)
    /// performed so far; 0 under [`SchedulerMode::Scan`].
    pub fn sched_ops(&self) -> u64 {
        self.sched_ops
    }

    fn event_driven(&self) -> bool {
        self.mode == SchedulerMode::EventDriven
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full — a full queue blocks the RUU head,
    /// which is the only way REESE can inhibit the primary pipeline
    /// (paper §4.3).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy seen so far.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Enqueues a completed primary instruction.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or program order is violated.
    pub fn push(&mut self, entry: RQueueEntry) {
        assert!(!self.is_full(), "push into a full R-stream Queue");
        if let Some(back) = self.entries.back() {
            assert!(
                entry.seq > back.seq,
                "R-stream Queue must fill in program order"
            );
        }
        if self.event_driven() && !entry.skip_r {
            self.pending_r.insert(entry.seq);
            self.sched_ops += 1;
            // A migrating seq is larger than every pending seq, so it
            // belongs in the front window exactly when the window is not
            // yet at its limit (a short window holds *all* pending seqs).
            if self.front_valid && self.front_window.len() < self.front_limit {
                self.front_window.push(entry.seq);
            }
        }
        self.entries.push_back(entry);
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
    }

    /// Records that the redundant execution of `seq` issued, leaving
    /// the pending pool and scheduling its completion event.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not resident.
    pub fn mark_r_issued(&mut self, seq: Seq, r_complete_cycle: u64) {
        let event_driven = self.event_driven();
        let entry = self.get_mut(seq).expect("issuing an R seq not in queue");
        debug_assert!(
            !entry.r_issued && !entry.skip_r,
            "only pending entries issue"
        );
        entry.r_issued = true;
        entry.r_complete_cycle = r_complete_cycle;
        if event_driven {
            // When the window holds every pending seq, removal keeps it
            // exact; otherwise a seq beyond the window tail must slide
            // in, which only a rebuild can find — invalidate and let the
            // next lookup rescan once.
            if self.front_valid {
                if self.front_window.len() == self.pending_r.len() {
                    match self.front_window.binary_search(&seq) {
                        Ok(pos) => {
                            self.front_window.remove(pos);
                        }
                        Err(_) => self.front_valid = false,
                    }
                } else {
                    self.front_valid = false;
                }
            }
            self.pending_r.remove(seq);
            self.completions.push(r_complete_cycle, seq);
            self.sched_ops += 2;
        }
    }

    /// The first `limit` seqs awaiting redundant issue, oldest first —
    /// exactly the entries the FIFO-lookahead scan would consider
    /// (event-driven mode only; empty under [`SchedulerMode::Scan`]).
    pub fn pending_r_front(&mut self, limit: usize) -> Vec<Seq> {
        let mut out = Vec::with_capacity(limit.min(self.pending_r.len()));
        self.pending_r_front_into(limit, &mut out);
        out
    }

    /// Like [`RQueue::pending_r_front`] but reusing a caller-owned
    /// buffer (cleared first), so the per-cycle redundant-issue loop
    /// allocates nothing.
    ///
    /// Served from the incrementally maintained front window: migration
    /// appends, issue removes, and only an issue that slides the window
    /// (or a flush, or a changed `limit`) forces a rebuild scan of the
    /// pending ring. Steady-state cycles where the window is unchanged
    /// pay a memcpy of at most `limit` seqs instead of a ring scan.
    pub fn pending_r_front_into(&mut self, limit: usize, out: &mut Vec<Seq>) {
        out.clear();
        self.refresh_front_window(limit);
        out.extend_from_slice(&self.front_window);
    }

    /// Rebuilds the cached front window if it is stale or was built for
    /// a different lookahead limit.
    fn refresh_front_window(&mut self, limit: usize) {
        if self.front_valid && self.front_limit == limit {
            return;
        }
        self.front_window.clear();
        self.front_limit = limit;
        self.front_valid = true;
        let Some(front) = self.entries.front() else {
            return;
        };
        self.pending_r
            .collect_from(front.seq, limit, &mut self.front_window);
        // A rebuild costs one ring scan: bill one op per recovered seq
        // (plus one for the scan itself) so the sched-op counter shows
        // how rarely the window must be rebuilt.
        self.sched_ops += self.front_window.len() as u64 + 1;
    }

    /// Whether any entry awaits redundant issue (event-driven mode only).
    pub fn has_pending_r(&self) -> bool {
        !self.pending_r.is_empty()
    }

    /// Pops the seqs of every redundant completion due at or before
    /// `now`, in `(cycle, seq)` order (event-driven mode only).
    pub fn take_r_completions(&mut self, now: u64) -> Vec<Seq> {
        let due = self.completions.take_due(now);
        self.sched_ops += due.len() as u64;
        due
    }

    /// Like [`RQueue::take_r_completions`] but reusing a caller-owned
    /// buffer (cleared first), so the per-cycle writeback loop
    /// allocates nothing.
    pub fn take_r_completions_into(&mut self, now: u64, out: &mut Vec<Seq>) {
        self.completions.take_due_into(now, out);
        self.sched_ops += out.len() as u64;
    }

    /// Cycle of the earliest scheduled redundant completion, if any
    /// (event-driven mode only).
    pub fn next_r_completion_cycle(&mut self) -> Option<u64> {
        self.completions.next_cycle()
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RQueueEntry> {
        self.entries.front()
    }

    /// Removes the oldest entry (after comparison at commit).
    pub fn pop_head(&mut self) -> Option<RQueueEntry> {
        self.entries.pop_front()
    }

    /// Shared access to an entry by sequence number (see
    /// [`RQueue::get_mut`] for why the lookup is O(1)).
    pub fn get(&self, seq: Seq) -> Option<&RQueueEntry> {
        let front = self.entries.front()?.seq;
        let idx = usize::try_from(seq.checked_sub(front)?).ok()?;
        let entry = self.entries.get(idx)?;
        debug_assert_eq!(entry.seq, seq, "R-stream Queue seqs must be contiguous");
        (entry.seq == seq).then_some(entry)
    }

    /// Mutable access to an entry by sequence number.
    ///
    /// O(1): migration fills the queue with consecutive sequence
    /// numbers (and a detection flush empties it wholesale), so an
    /// entry's position is `seq - head.seq`. Falls back to `None` —
    /// never a scan — if `seq` is outside the resident range.
    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut RQueueEntry> {
        let front = self.entries.front()?.seq;
        let idx = usize::try_from(seq.checked_sub(front)?).ok()?;
        let entry = self.entries.get_mut(idx)?;
        debug_assert_eq!(entry.seq, seq, "R-stream Queue seqs must be contiguous");
        (entry.seq == seq).then_some(entry)
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &RQueueEntry> {
        self.entries.iter()
    }

    /// Mutable iteration, oldest-first (for the redundant scheduler).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RQueueEntry> {
        self.entries.iter_mut()
    }

    /// Clears the queue (error-detection flush).
    ///
    /// The pending set and the completion wheel are drained too: the
    /// flush rewinds fetch, so the *same* sequence numbers re-enter the
    /// queue later and stale events must never fire against them.
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.pending_r.clear();
        self.completions.clear();
        // An empty window over an empty pending set is exact, so the
        // cache stays valid across a flush and refills via `push`.
        self.front_window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::{step, ArchState};
    use reese_isa::{abi::*, Instr, Opcode};
    use reese_mem::Memory;

    fn entry(seq: Seq) -> RQueueEntry {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let info = step(&mut s, &Instr::rri(Opcode::Li, T0, ZERO, 7), &mut m);
        RQueueEntry::new(seq, info, 0, false)
    }

    #[test]
    fn fifo_order() {
        let mut q = RQueue::new(4);
        q.push(entry(0));
        q.push(entry(1));
        assert_eq!(q.head().unwrap().seq, 0);
        assert_eq!(q.pop_head().unwrap().seq, 0);
        assert_eq!(q.pop_head().unwrap().seq, 1);
        assert!(q.pop_head().is_none());
    }

    #[test]
    fn capacity_and_peak() {
        let mut q = RQueue::new(2);
        q.push(entry(0));
        q.push(entry(1));
        assert!(q.is_full());
        assert_eq!(q.peak_occupancy(), 2);
        q.pop_head();
        assert!(!q.is_full());
        assert_eq!(q.peak_occupancy(), 2, "peak is sticky");
    }

    #[test]
    #[should_panic(expected = "full R-stream Queue")]
    fn overfill_panics() {
        let mut q = RQueue::new(1);
        q.push(entry(0));
        q.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_push_panics() {
        let mut q = RQueue::new(4);
        q.push(entry(5));
        q.push(entry(3));
    }

    #[test]
    fn entry_match_semantics() {
        let mut e = entry(0);
        assert!(e.results_match());
        assert!(!e.commit_ready());
        e.r_completed = true;
        assert!(e.commit_ready());
        e.r_value ^= 1 << 13;
        assert!(!e.results_match(), "a flipped bit must be visible");
    }

    #[test]
    fn skipped_entries_commit_without_comparison() {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let info = step(&mut s, &Instr::rri(Opcode::Li, T0, ZERO, 7), &mut m);
        let mut e = RQueueEntry::new(0, info, 0, true);
        assert!(e.commit_ready());
        e.p_value ^= 1; // even a corrupted latch goes unnoticed
        assert!(
            e.results_match(),
            "partial duplication trades coverage for speed"
        );
    }

    #[test]
    fn get_mut_is_positional() {
        let mut q = RQueue::new(4);
        q.push(entry(3));
        q.push(entry(4));
        assert_eq!(q.get_mut(3).unwrap().seq, 3);
        assert_eq!(q.get_mut(4).unwrap().seq, 4);
        assert!(q.get_mut(2).is_none(), "below the resident range");
        assert!(q.get_mut(5).is_none(), "above the resident range");
        q.pop_head();
        assert_eq!(
            q.get_mut(4).unwrap().seq,
            4,
            "positions shift with the head"
        );
        assert!(q.get_mut(3).is_none());
    }

    #[test]
    fn flush_empties_queue() {
        let mut q = RQueue::new(4);
        q.push(entry(0));
        q.flush_all();
        assert!(q.is_empty());
    }

    #[test]
    fn pending_pool_tracks_issue() {
        let mut q = RQueue::new(8);
        q.push(entry(0));
        q.push(entry(1));
        q.push(entry(2));
        assert!(q.has_pending_r());
        assert_eq!(q.pending_r_front(2), vec![0, 1]);
        q.mark_r_issued(1, 7);
        assert_eq!(q.pending_r_front(8), vec![0, 2]);
        assert_eq!(q.get_mut(1).unwrap().r_complete_cycle, 7);
        assert!(q.get_mut(1).unwrap().r_issued);
    }

    #[test]
    fn skipped_entries_never_pend() {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let info = step(&mut s, &Instr::rri(Opcode::Li, T0, ZERO, 7), &mut m);
        let mut q = RQueue::new(4);
        q.push(RQueueEntry::new(0, info, 0, true));
        assert!(!q.has_pending_r());
        assert_eq!(q.pending_r_front(4), Vec::<Seq>::new());
    }

    #[test]
    fn front_window_slides_after_issue() {
        let mut q = RQueue::new(8);
        for seq in 0..6 {
            q.push(entry(seq));
        }
        assert_eq!(q.pending_r_front(3), vec![0, 1, 2]);
        q.mark_r_issued(1, 9);
        assert_eq!(
            q.pending_r_front(3),
            vec![0, 2, 3],
            "window must slide past the issued seq"
        );
        q.mark_r_issued(0, 9);
        q.mark_r_issued(2, 9);
        assert_eq!(q.pending_r_front(3), vec![3, 4, 5]);
        q.mark_r_issued(3, 10);
        q.mark_r_issued(4, 10);
        assert_eq!(
            q.pending_r_front(3),
            vec![5],
            "window shrinks as pending dries up"
        );
        q.mark_r_issued(5, 10);
        assert_eq!(q.pending_r_front(3), Vec::<Seq>::new());
    }

    #[test]
    fn front_window_refills_incrementally_after_flush() {
        let mut q = RQueue::new(8);
        q.push(entry(0));
        assert_eq!(q.pending_r_front(4), vec![0]);
        q.flush_all();
        assert_eq!(q.pending_r_front(4), Vec::<Seq>::new());
        // Fetch rewinds after a detection: the same seqs migrate again
        // and must re-enter the window.
        q.push(entry(0));
        q.push(entry(1));
        assert_eq!(q.pending_r_front(4), vec![0, 1]);
    }

    #[test]
    fn front_window_tracks_limit_changes() {
        let mut q = RQueue::new(8);
        for seq in 0..5 {
            q.push(entry(seq));
        }
        assert_eq!(q.pending_r_front(2), vec![0, 1]);
        assert_eq!(q.pending_r_front(4), vec![0, 1, 2, 3]);
        assert_eq!(q.pending_r_front(2), vec![0, 1]);
    }

    #[test]
    fn front_window_matches_fresh_scan_under_churn() {
        // SplitMix64-driven push/issue/retire/flush churn: the cached
        // window must always equal a from-scratch FIFO-lookahead scan.
        let mut state: u64 = 0x51ce_b00c_5eed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut q = RQueue::new(16);
        let mut next_seq: Seq = 0;
        for round in 0..5_000 {
            match next() % 8 {
                0..=2 => {
                    if !q.is_full() {
                        let mut s = ArchState::new(0x1000);
                        let mut m = Memory::new();
                        let info = step(&mut s, &Instr::rri(Opcode::Li, T0, ZERO, 7), &mut m);
                        q.push(RQueueEntry::new(next_seq, info, 0, next() % 4 == 0));
                        next_seq += 1;
                    }
                }
                3..=4 => {
                    let pending: Vec<Seq> = q
                        .iter()
                        .filter(|e| !e.r_issued && !e.skip_r)
                        .map(|e| e.seq)
                        .collect();
                    if !pending.is_empty() {
                        let lookahead = pending.len().min(4);
                        let pick = pending[(next() as usize) % lookahead];
                        q.mark_r_issued(pick, 1);
                    }
                }
                5..=6 => {
                    if let Some(head) = q.head().copied() {
                        if head.skip_r || head.r_issued {
                            if let Some(e) = q.get_mut(head.seq) {
                                e.r_completed = e.r_issued;
                            }
                            q.pop_head();
                        }
                    }
                }
                _ => {
                    if next() % 16 == 0 {
                        q.flush_all();
                    }
                }
            }
            let limit = [1usize, 3, 4, 8][(next() as usize) % 4];
            let expected: Vec<Seq> = q
                .iter()
                .filter(|e| !e.r_issued && !e.skip_r)
                .take(limit)
                .map(|e| e.seq)
                .collect();
            assert_eq!(q.pending_r_front(limit), expected, "round {round}");
        }
    }

    #[test]
    fn r_completion_wheel_order_and_drain() {
        let mut q = RQueue::new(8);
        for seq in 0..3 {
            q.push(entry(seq));
        }
        q.mark_r_issued(2, 4);
        q.mark_r_issued(0, 4);
        q.mark_r_issued(1, 6);
        assert_eq!(q.next_r_completion_cycle(), Some(4));
        assert_eq!(q.take_r_completions(3), Vec::<Seq>::new());
        assert_eq!(q.take_r_completions(4), vec![0, 2]);
        assert_eq!(q.take_r_completions(9), vec![1]);
        assert_eq!(q.next_r_completion_cycle(), None);
    }

    #[test]
    fn flush_drains_pending_and_wheel() {
        let mut q = RQueue::new(8);
        q.push(entry(0));
        q.push(entry(1));
        q.mark_r_issued(0, 9);
        q.flush_all();
        assert!(!q.has_pending_r(), "no stale pending seqs after a flush");
        assert_eq!(
            q.next_r_completion_cycle(),
            None,
            "no stale events may fire against re-migrated seqs"
        );
    }

    #[test]
    fn scan_mode_maintains_no_structures() {
        let mut q = RQueue::with_scheduler(4, SchedulerMode::Scan);
        q.push(entry(0));
        assert!(!q.has_pending_r());
        q.mark_r_issued(0, 5);
        assert_eq!(q.next_r_completion_cycle(), None);
        assert!(q.get_mut(0).unwrap().r_issued);
    }
}
