//! The trial-exactness oracle for checkpoint-anchored replay.
//!
//! `TrialEngine::Full` recomputes every trial from scratch — anchor
//! state re-derived from instruction 0, clean window re-run, nothing
//! shared between trials. `TrialEngine::Replay` reuses the one
//! checkpoint sweep, caches clean-window baselines, and memoizes
//! duplicate fault keys. The two arms must produce identical
//! `TrialOutcome` sequences and byte-identical `CoverageReport`
//! serialisations on every kernel, every fault class, any worker
//! count, with or without interrupt+resume — that identity certifies
//! the entire reuse machinery against the from-scratch computation.

use reese_ckpt::Scheme;
use reese_core::ReeseConfig;
use reese_faults::{Campaign, FaultMix, TrialEngine};
use reese_workloads::Kernel;

const TARGET: u64 = 12_000;

fn campaign(mix: FaultMix, seed: u64) -> Campaign {
    Campaign::new(ReeseConfig::starting(), mix)
        .trials(10)
        .seed(seed)
}

#[test]
fn replay_matches_full_on_every_kernel() {
    for kernel in Kernel::ALL {
        let program = kernel.build_for(TARGET);
        let full = campaign(FaultMix::broad(), 0xA5)
            .engine(TrialEngine::Full)
            .run(&program)
            .unwrap();
        let replay = campaign(FaultMix::broad(), 0xA5)
            .engine(TrialEngine::Replay)
            .jobs(4)
            .run(&program)
            .unwrap();
        assert_eq!(replay, full, "{}", kernel.name());
        assert_eq!(replay.to_json(), full.to_json(), "{}", kernel.name());
        assert_eq!(replay.to_csv(), full.to_csv(), "{}", kernel.name());
    }
}

#[test]
fn replay_matches_full_on_result_only_mix() {
    // Every trial simulates under this mix, so each one crosses the
    // restore/baseline/memo path.
    let program = Kernel::Strings.build_for(TARGET);
    let full = campaign(FaultMix::result_errors_only(), 0x51)
        .engine(TrialEngine::Full)
        .run(&program)
        .unwrap();
    let replay = campaign(FaultMix::result_errors_only(), 0x51)
        .engine(TrialEngine::Replay)
        .run(&program)
        .unwrap();
    assert_eq!(replay, full);
    assert_eq!(replay.to_json(), full.to_json());
}

#[test]
fn replay_matches_full_when_the_sweep_thins() {
    // A small checkpoint interval forces far more boundaries than the
    // sweep keeps resident, so every anchor is derived from a coarse
    // checkpoint — the derivation path must stay invisible.
    let program = Kernel::Imaging.build_for(TARGET);
    let full = campaign(FaultMix::broad(), 0x77)
        .engine(TrialEngine::Full)
        .ckpt_every(64)
        .run(&program)
        .unwrap();
    let replay = campaign(FaultMix::broad(), 0x77)
        .engine(TrialEngine::Replay)
        .ckpt_every(64)
        .jobs(4)
        .run(&program)
        .unwrap();
    assert_eq!(replay, full);
    assert_eq!(replay.to_json(), full.to_json());
}

#[test]
fn replay_matches_full_for_every_scheme() {
    // The anchored-window reuse machinery is scheme-generic: for every
    // registered backend — including the program-transforming software
    // scheme, whose checkpoints index the *prepared* stream — the
    // replay engine must reproduce the from-scratch arm byte for byte.
    let program = Kernel::Strings.build_for(TARGET);
    for scheme in Scheme::ALL {
        let full = campaign(FaultMix::broad(), 0x9E)
            .scheme(scheme)
            .engine(TrialEngine::Full)
            .run(&program)
            .unwrap();
        let replay = campaign(FaultMix::broad(), 0x9E)
            .scheme(scheme)
            .engine(TrialEngine::Replay)
            .jobs(4)
            .run(&program)
            .unwrap();
        assert_eq!(replay, full, "{scheme}");
        assert_eq!(replay.to_json(), full.to_json(), "{scheme}");
        assert_eq!(replay.to_csv(), full.to_csv(), "{scheme}");
    }
}

#[test]
fn replay_worker_count_is_invisible_on_kernels() {
    let program = Kernel::Database.build_for(TARGET);
    let run = |jobs: usize| {
        campaign(FaultMix::broad(), 7)
            .engine(TrialEngine::Replay)
            .jobs(jobs)
            .run(&program)
            .unwrap()
    };
    let serial = run(1);
    assert_eq!(run(4), serial);
}

#[test]
fn interrupted_and_resumed_replay_matches_uninterrupted_full() {
    let dir = std::env::temp_dir().join(format!("reese-oracle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("campaign.jsonl");
    let program = Kernel::Gameplay.build_for(TARGET);

    let full = campaign(FaultMix::broad(), 0xC3)
        .engine(TrialEngine::Full)
        .run(&program)
        .unwrap();
    let partial = campaign(FaultMix::broad(), 0xC3)
        .engine(TrialEngine::Replay)
        .outcomes_jsonl(&log)
        .trial_limit(5)
        .run(&program)
        .unwrap();
    assert_eq!(partial.trials(), 5, "interrupted at half the campaign");
    let resumed = campaign(FaultMix::broad(), 0xC3)
        .engine(TrialEngine::Replay)
        .jobs(2)
        .resume(&log)
        .run(&program)
        .unwrap();
    assert_eq!(resumed, full);
    assert_eq!(resumed.to_json(), full.to_json());
    std::fs::remove_dir_all(&dir).unwrap();
}
