//! Cross-scheme acceptance: every registered backend, every kernel,
//! one report — and the ordering the literature predicts.
//!
//! These are the claims the `reese schemes` ranking is trusted for:
//! both new backends actually detect faults on every kernel, spatial
//! duplication covers at least as much as time redundancy, which
//! covers at least as much as the software-only transform, and the
//! software-only transform pays the worst *aggregate* time overhead —
//! aggregate, not per kernel, because high-ILP straight-line code
//! (imaging) absorbs duplicated instructions into idle issue slots,
//! the classic SWIFT result.

use reese_ckpt::Scheme;
use reese_core::ReeseConfig;
use reese_faults::schemes::EvalOptions;
use reese_faults::{FaultMix, SchemesReport};
use reese_workloads::Kernel;

fn evaluate() -> SchemesReport {
    // Calibrated short kernels (the replay-oracle length) keep the
    // 5-schemes × 6-kernels grid affordable in debug builds. 30 trials
    // is the floor at which the software-only scheme detects at least
    // one fault on the register-pressured imaging kernel at the
    // default seed (its true coverage there is ~5%: most of the hot
    // DCT chain runs unshadowed).
    let programs: Vec<_> = Kernel::ALL
        .into_iter()
        .map(|k| (k.name().to_string(), k.build_for(12_000)))
        .collect();
    let opts = EvalOptions {
        trials: 30,
        jobs: 2,
        ..EvalOptions::default()
    };
    SchemesReport::evaluate(
        &ReeseConfig::starting(),
        &FaultMix::result_errors_only(),
        &programs,
        &opts,
    )
    .unwrap()
}

fn row<'a>(
    r: &'a SchemesReport,
    scheme: Scheme,
    kernel: &str,
) -> &'a reese_faults::schemes::SchemeRow {
    r.rows
        .iter()
        .find(|row| row.scheme == scheme && row.kernel == kernel)
        .unwrap_or_else(|| panic!("missing row {scheme}/{kernel}"))
}

#[test]
fn every_backend_ranks_plausibly_on_every_kernel() {
    let report = evaluate();
    let kernels: Vec<String> = {
        let mut k: Vec<String> = report.rows.iter().map(|r| r.kernel.clone()).collect();
        k.dedup();
        k
    };
    assert_eq!(kernels.len(), 6, "all six kernels evaluated");
    assert_eq!(report.rows.len(), Scheme::ALL.len() * kernels.len());

    for kernel in &kernels {
        let baseline = row(&report, Scheme::Baseline, kernel);
        let reese = row(&report, Scheme::Reese, kernel);
        let duplex = row(&report, Scheme::Duplex, kernel);
        let meek = row(&report, Scheme::Meek, kernel);
        let swift = row(&report, Scheme::Swift, kernel);

        // The control arm detects nothing, by construction.
        assert_eq!(baseline.detected, 0, "{kernel}: baseline detected faults");

        // Both new backends must catch a real fraction of injected
        // faults on every kernel — not just compile and run.
        assert!(meek.detected > 0, "{kernel}: meek detected nothing");
        assert!(swift.detected > 0, "{kernel}: swift detected nothing");

        // Coverage ordering: spatial duplication ≥ time redundancy ≥
        // software-only duplication (which misses load values and
        // overwritten-before-check registers).
        assert!(
            duplex.coverage >= reese.coverage,
            "{kernel}: duplex {} < reese {}",
            duplex.coverage,
            reese.coverage
        );
        assert!(
            reese.coverage >= swift.coverage,
            "{kernel}: reese {} < swift {}",
            reese.coverage,
            swift.coverage
        );

        // The software scheme buys detection with dynamic instructions
        // on the same core: never cheaper than the unprotected machine
        // or the off-core checker, and the only scheme with a
        // code-size overhead at all.
        for other in [baseline, meek] {
            assert!(
                swift.time_overhead >= other.time_overhead,
                "{kernel}: swift {}x cheaper than {} {}x",
                swift.time_overhead,
                other.scheme,
                other.time_overhead
            );
        }
        for other in [baseline, reese, duplex, meek] {
            assert_eq!(
                other.code_overhead, 1.0,
                "{kernel}: {} rewrote code",
                other.scheme
            );
        }
        assert!(
            swift.code_overhead > 1.5,
            "{kernel}: swift barely duplicated"
        );
    }

    // Aggregate ordering: the software-only transform pays the worst
    // mean time overhead of every backend, a protected hardware scheme
    // tops the ranking, and the unprotected control sits at the bottom.
    let swift_time = report.summary(Scheme::Swift).unwrap().time_overhead;
    for scheme in Scheme::ALL {
        if scheme != Scheme::Swift {
            let s = report.summary(scheme).unwrap();
            assert!(
                swift_time > s.time_overhead,
                "aggregate: swift {}x not worse than {} {}x",
                swift_time,
                s.scheme,
                s.time_overhead
            );
        }
    }
    let ranked = report.ranked();
    assert!(
        matches!(ranked[0].scheme, Scheme::Duplex | Scheme::Reese),
        "top of ranking: {}",
        ranked[0].scheme
    );
    assert_eq!(ranked.last().unwrap().scheme, Scheme::Baseline);

    // Serialisations carry one line/object per (scheme, kernel) cell.
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), 1 + report.rows.len());
    assert!(report.to_json().contains("\"ranking\""));
}
