//! Campaign results and coverage reports.

use crate::FaultClass;
use reese_stats::{Histogram, ParallelStats};
use reese_trace::MetricsSeries;
use std::collections::BTreeMap;
use std::fmt;

/// Unit-width buckets in a detection-latency histogram; latencies at or
/// above this land in the overflow bucket. REESE-style compare-at-head
/// latencies are tens of cycles, so the distribution body fits easily.
pub const LATENCY_HISTOGRAM_CAP: usize = 256;

/// The outcome of one injection trial.
///
/// The three `*_cycle` fields are **window-relative**: cycle 0 is the
/// first cycle after the trial's anchor checkpoint is restored, so the
/// values are identical under the Full and Replay engines (both run the
/// same anchored window from the same boundary). They are `None` when
/// the quantity was not observable — the faulted instruction never
/// committed inside the window, the scheme squashed the corruption
/// before it reached architectural state, or the trial was scored
/// analytically without simulation (modeled-undetectable classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// The class of fault injected.
    pub class: FaultClass,
    /// Dynamic instruction targeted.
    pub seq: u64,
    /// Bit position flipped.
    pub bit: u8,
    /// Whether the P/R comparison caught it.
    pub detected: bool,
    /// Cycles from corruption to detection, when detected.
    pub detection_latency: Option<u64>,
    /// Extra cycles the run took versus a clean run (recovery cost).
    pub extra_cycles: u64,
    /// Whether the final architectural state matched the clean run.
    pub state_clean: bool,
    /// Window-relative cycle the corrupted value entered the machine.
    pub inject_cycle: Option<u64>,
    /// Window-relative cycle the corruption first became architectural
    /// (the faulted instruction's commit, for schemes that let it
    /// commit before checking).
    pub diverge_cycle: Option<u64>,
    /// Window-relative cycle the detecting comparison (or trap) fired.
    pub detect_cycle: Option<u64>,
}

/// Aggregated results of a fault-injection campaign.
///
/// # Example
///
/// ```
/// use reese_faults::{CoverageReport, FaultClass, TrialOutcome};
///
/// let mut r = CoverageReport::new(1000);
/// r.record(TrialOutcome {
///     class: FaultClass::PrimaryResult,
///     seq: 5,
///     bit: 3,
///     detected: true,
///     detection_latency: Some(12),
///     extra_cycles: 30,
///     state_clean: true,
///     inject_cycle: Some(100),
///     diverge_cycle: None,
///     detect_cycle: Some(112),
/// });
/// assert_eq!(r.coverage(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// All trial outcomes, in order.
    pub outcomes: Vec<TrialOutcome>,
    /// Detected count.
    pub detected: u64,
    /// Cycles of the fault-free reference run.
    pub clean_cycles: u64,
    /// Wall-clock/throughput observability for the campaign run, when
    /// one produced this report. Excluded from equality: two runs of
    /// the same seeded campaign are *the same report* however long they
    /// took or however many workers they used.
    pub throughput: Option<ParallelStats>,
    /// Per-interval metrics pooled row-by-row across every simulated
    /// trial, when the campaign sampled them. Observability only —
    /// excluded from equality like `throughput`.
    pub metrics: Option<MetricsSeries>,
}

/// Equality is over the scientific content (outcomes and reference
/// cycles) only — never over wall-clock observability.
impl PartialEq for CoverageReport {
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.detected == other.detected
            && self.clean_cycles == other.clean_cycles
    }
}

impl CoverageReport {
    /// Creates an empty report for a reference run of `clean_cycles`.
    pub fn new(clean_cycles: u64) -> CoverageReport {
        CoverageReport {
            outcomes: Vec::new(),
            detected: 0,
            clean_cycles,
            throughput: None,
            metrics: None,
        }
    }

    /// Records one trial.
    pub fn record(&mut self, outcome: TrialOutcome) {
        if outcome.detected {
            self.detected += 1;
        }
        self.outcomes.push(outcome);
    }

    /// Appends every trial from another report over the same reference
    /// run, preserving `other`'s trial order after this report's. Used
    /// to stitch shard-local campaign reports into one. Throughput
    /// observability is not pooled (the merged report keeps this
    /// side's), matching the equality contract above.
    ///
    /// # Panics
    ///
    /// Panics if the reports disagree on the fault-free reference cycle
    /// count — they would describe different campaigns.
    pub fn merge(&mut self, other: &CoverageReport) {
        assert_eq!(
            self.clean_cycles, other.clean_cycles,
            "merging reports from different reference runs"
        );
        self.outcomes.extend_from_slice(&other.outcomes);
        self.detected += other.detected;
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> usize {
        self.outcomes.len()
    }

    /// Fraction of trials detected, in `[0, 1]`; 0 for an empty report.
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.detected as f64 / self.outcomes.len() as f64
        }
    }

    /// (detected, total) for one fault class.
    pub fn by_class(&self, class: FaultClass) -> (u64, u64) {
        let mut det = 0;
        let mut total = 0;
        for o in &self.outcomes {
            if o.class == class {
                total += 1;
                if o.detected {
                    det += 1;
                }
            }
        }
        (det, total)
    }

    /// Mean detection latency over detected trials; 0 when none.
    pub fn mean_detection_latency(&self) -> f64 {
        let lats: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.detection_latency)
            .map(|l| l as f64)
            .collect();
        reese_stats::mean(&lats)
    }

    /// Mean recovery cost in cycles over detected trials; 0 when none.
    pub fn mean_recovery_cycles(&self) -> f64 {
        let costs: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.detected)
            .map(|o| o.extra_cycles as f64)
            .collect();
        reese_stats::mean(&costs)
    }

    /// Whether every trial ended with clean architectural state.
    pub fn all_states_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.state_clean)
    }

    /// Detection latencies over detected trials, sorted ascending.
    fn sorted_latencies(&self) -> Vec<u64> {
        let mut lats: Vec<u64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.detection_latency)
            .collect();
        lats.sort_unstable();
        lats
    }

    /// The `num/den` quantile of detection latency over detected trials
    /// (nearest-rank on the sorted sample, index `(n-1)*num/den` — the
    /// same integer convention the schemes report has always used for
    /// p90), or `None` when nothing was detected.
    pub fn latency_percentile(&self, num: usize, den: usize) -> Option<u64> {
        let lats = self.sorted_latencies();
        if lats.is_empty() {
            None
        } else {
            Some(lats[(lats.len() - 1) * num / den])
        }
    }

    /// Detection-latency histogram over every detected trial:
    /// unit-width buckets up to [`LATENCY_HISTOGRAM_CAP`] cycles plus
    /// an overflow bucket.
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new("detection_latency", LATENCY_HISTOGRAM_CAP);
        for o in &self.outcomes {
            if let Some(l) = o.detection_latency {
                h.record(l);
            }
        }
        h
    }

    /// Per-fault-class detection-latency histograms, for classes with
    /// at least one detection, in [`FaultClass::ALL`] order. The fault
    /// class is the corrupted-structure axis: each class names the
    /// structure the bit was flipped in (result bus, compare queue,
    /// cache cell, pipeline control).
    pub fn latency_histograms_by_class(&self) -> Vec<(FaultClass, Histogram)> {
        FaultClass::ALL
            .into_iter()
            .filter_map(|class| {
                let mut h = Histogram::new(class.name(), LATENCY_HISTOGRAM_CAP);
                for o in &self.outcomes {
                    if o.class == class {
                        if let Some(l) = o.detection_latency {
                            h.record(l);
                        }
                    }
                }
                (h.samples() > 0).then_some((class, h))
            })
            .collect()
    }

    /// Per-class (detected, total) table.
    pub fn class_table(&self) -> BTreeMap<String, (u64, u64)> {
        let mut t = BTreeMap::new();
        for c in FaultClass::ALL {
            let (d, n) = self.by_class(c);
            if n > 0 {
                t.insert(c.to_string(), (d, n));
            }
        }
        t
    }

    /// Serialises every trial as CSV with a header row: one line per
    /// outcome, in campaign order. Unobserved optional fields
    /// (`detection_latency` and the three window-relative cycle
    /// columns) are empty. Class names contain no commas or quotes, so
    /// no RFC-4180 quoting is ever needed.
    pub fn to_csv(&self) -> String {
        fn opt(v: Option<u64>) -> String {
            v.map_or(String::new(), |v| v.to_string())
        }
        let mut out = String::from(
            "trial,class,seq,bit,detected,detection_latency,extra_cycles,state_clean,inject_cycle,diverge_cycle,detect_cycle\n",
        );
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str(&format!(
                "{i},{},{},{},{},{},{},{},{},{},{}\n",
                o.class,
                o.seq,
                o.bit,
                o.detected,
                opt(o.detection_latency),
                o.extra_cycles,
                o.state_clean,
                opt(o.inject_cycle),
                opt(o.diverge_cycle),
                opt(o.detect_cycle)
            ));
        }
        out
    }

    /// Serialises the report — summary aggregates, the per-class table,
    /// and every outcome — as a JSON object. Hand-rolled (the project is
    /// std-only): every value is a number, boolean, null, or a class
    /// name that needs no escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"trials\": {},\n", self.trials()));
        out.push_str(&format!("  \"detected\": {},\n", self.detected));
        out.push_str(&format!("  \"coverage\": {:.6},\n", self.coverage()));
        out.push_str(&format!("  \"clean_cycles\": {},\n", self.clean_cycles));
        out.push_str(&format!(
            "  \"mean_detection_latency\": {:.3},\n",
            self.mean_detection_latency()
        ));
        out.push_str(&format!(
            "  \"mean_recovery_cycles\": {:.3},\n",
            self.mean_recovery_cycles()
        ));
        out.push_str(&format!(
            "  \"all_states_clean\": {},\n",
            self.all_states_clean()
        ));
        let pct = |num, den| {
            self.latency_percentile(num, den)
                .map_or_else(|| "null".to_string(), |v| v.to_string())
        };
        out.push_str(&format!(
            "  \"latency_p50\": {}, \"latency_p90\": {}, \"latency_p99\": {},\n",
            pct(1, 2),
            pct(9, 10),
            pct(99, 100)
        ));
        out.push_str(&format!(
            "  \"latency_histogram\": {},\n",
            histogram_json(&self.latency_histogram())
        ));
        out.push_str("  \"latency_by_class\": {");
        let class_hists: Vec<String> = self
            .latency_histograms_by_class()
            .into_iter()
            .map(|(class, h)| format!("\"{class}\": {}", histogram_json(&h)))
            .collect();
        out.push_str(&class_hists.join(", "));
        out.push_str("},\n");
        out.push_str("  \"by_class\": {");
        let classes: Vec<String> = self
            .class_table()
            .into_iter()
            .map(|(name, (d, n))| format!("\"{name}\": {{\"detected\": {d}, \"total\": {n}}}"))
            .collect();
        out.push_str(&classes.join(", "));
        out.push_str("},\n");
        out.push_str("  \"outcomes\": [\n");
        let rows: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| {
                let opt = |v: Option<u64>| {
                    v.map_or_else(|| "null".to_string(), |v| v.to_string())
                };
                format!(
                    "    {{\"class\": \"{}\", \"seq\": {}, \"bit\": {}, \"detected\": {}, \"detection_latency\": {}, \"extra_cycles\": {}, \"state_clean\": {}, \"inject_cycle\": {}, \"diverge_cycle\": {}, \"detect_cycle\": {}}}",
                    o.class,
                    o.seq,
                    o.bit,
                    o.detected,
                    opt(o.detection_latency),
                    o.extra_cycles,
                    o.state_clean,
                    opt(o.inject_cycle),
                    opt(o.diverge_cycle),
                    opt(o.detect_cycle)
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Serialises a histogram as a compact JSON object with sparse buckets
/// (only non-empty unit buckets appear, keyed by cycle count).
pub(crate) fn histogram_json(h: &Histogram) -> String {
    let mut buckets: Vec<String> = Vec::new();
    for v in 0..LATENCY_HISTOGRAM_CAP as u64 {
        let n = h.count(v);
        if n > 0 {
            buckets.push(format!("\"{v}\": {n}"));
        }
    }
    format!(
        "{{\"samples\": {}, \"mean\": {:.3}, \"max\": {}, \"overflow\": {}, \"buckets\": {{{}}}}}",
        h.samples(),
        h.mean(),
        h.max(),
        h.overflow(),
        buckets.join(", ")
    )
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "coverage: {}/{} ({:.1}%), mean detection latency {:.1} cycles, mean recovery {:.1} cycles",
            self.detected,
            self.trials(),
            self.coverage() * 100.0,
            self.mean_detection_latency(),
            self.mean_recovery_cycles(),
        )?;
        for (name, (d, n)) in self.class_table() {
            writeln!(f, "  {name:<18} {d}/{n}")?;
        }
        if self.detected > 0 {
            let p = |num, den| self.latency_percentile(num, den).unwrap_or(0);
            writeln!(
                f,
                "detection latency CDF: p50 {} / p90 {} / p99 {} / max {} cycles over {} detections",
                p(1, 2),
                p(9, 10),
                p(99, 100),
                self.latency_histogram().max(),
                self.detected
            )?;
        }
        if let Some(t) = &self.throughput {
            writeln!(f, "throughput: {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(class: FaultClass, detected: bool) -> TrialOutcome {
        TrialOutcome {
            class,
            seq: 0,
            bit: 0,
            detected,
            detection_latency: detected.then_some(10),
            extra_cycles: if detected { 20 } else { 0 },
            state_clean: true,
            inject_cycle: detected.then_some(100),
            diverge_cycle: None,
            detect_cycle: detected.then_some(110),
        }
    }

    #[test]
    fn coverage_math() {
        let mut r = CoverageReport::new(100);
        r.record(outcome(FaultClass::PrimaryResult, true));
        r.record(outcome(FaultClass::CacheCell, false));
        assert_eq!(r.trials(), 2);
        assert!((r.coverage() - 0.5).abs() < 1e-12);
        assert_eq!(r.by_class(FaultClass::PrimaryResult), (1, 1));
        assert_eq!(r.by_class(FaultClass::CacheCell), (0, 1));
        assert_eq!(r.by_class(FaultClass::PostCompare), (0, 0));
    }

    #[test]
    fn latency_and_recovery_means() {
        let mut r = CoverageReport::new(100);
        r.record(outcome(FaultClass::PrimaryResult, true));
        r.record(outcome(FaultClass::RedundantResult, true));
        assert!((r.mean_detection_latency() - 10.0).abs() < 1e-12);
        assert!((r.mean_recovery_cycles() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = CoverageReport::new(0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.mean_detection_latency(), 0.0);
        assert!(r.all_states_clean());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut whole = CoverageReport::new(100);
        whole.record(outcome(FaultClass::PrimaryResult, true));
        whole.record(outcome(FaultClass::CacheCell, false));
        whole.record(outcome(FaultClass::RedundantResult, true));

        let mut a = CoverageReport::new(100);
        a.record(outcome(FaultClass::PrimaryResult, true));
        let mut b = CoverageReport::new(100);
        b.record(outcome(FaultClass::CacheCell, false));
        b.record(outcome(FaultClass::RedundantResult, true));
        a.merge(&b);

        assert_eq!(a, whole);
        assert_eq!(a.trials(), 3);
        assert!((a.coverage() - whole.coverage()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut r = CoverageReport::new(100);
        r.record(outcome(FaultClass::PrimaryResult, true));
        let before = r.clone();
        r.merge(&CoverageReport::new(100));
        assert_eq!(r, before);
    }

    #[test]
    #[should_panic(expected = "different reference runs")]
    fn merge_rejects_mismatched_reference_runs() {
        let mut a = CoverageReport::new(100);
        a.merge(&CoverageReport::new(200));
    }

    #[test]
    fn csv_round_trips_fields() {
        let mut r = CoverageReport::new(100);
        r.record(outcome(FaultClass::PrimaryResult, true));
        r.record(outcome(FaultClass::CacheCell, false));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 trials");
        assert_eq!(
            lines[0],
            "trial,class,seq,bit,detected,detection_latency,extra_cycles,state_clean,inject_cycle,diverge_cycle,detect_cycle"
        );
        assert_eq!(lines[1], "0,p-result,0,0,true,10,20,true,100,,110");
        assert_eq!(lines[2], "1,cache-cell,0,0,false,,0,true,,,");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut r = CoverageReport::new(100);
        r.record(outcome(FaultClass::PrimaryResult, true));
        r.record(outcome(FaultClass::CacheCell, false));
        let json = r.to_json();
        // Balanced braces/brackets (no string values contain them).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"trials\": 2"));
        assert!(json.contains("\"coverage\": 0.500000"));
        assert!(json.contains("\"detection_latency\": null"));
        assert!(json.contains("\"p-result\": {\"detected\": 1, \"total\": 1}"));
        assert!(json.contains("\"inject_cycle\": 100"));
        assert!(json.contains("\"diverge_cycle\": null"));
        assert!(json.contains("\"latency_histogram\": {\"samples\": 1"));
        assert!(json.contains("\"buckets\": {\"10\": 1}"));
        assert!(json.contains("\"latency_p50\": 10"));
    }

    #[test]
    fn latency_histogram_and_percentiles() {
        let mut r = CoverageReport::new(100);
        for lat in [5u64, 5, 7, 300] {
            let mut o = outcome(FaultClass::PrimaryResult, true);
            o.detection_latency = Some(lat);
            r.record(o);
        }
        r.record(outcome(FaultClass::CacheCell, false));
        let h = r.latency_histogram();
        assert_eq!(h.samples(), 4);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.overflow(), 1, "latency 300 overflows the cap");
        assert_eq!(h.max(), 300);
        assert_eq!(r.latency_percentile(1, 2), Some(5));
        assert_eq!(r.latency_percentile(99, 100), Some(7));
        let by_class = r.latency_histograms_by_class();
        assert_eq!(by_class.len(), 1, "only classes with detections");
        assert_eq!(by_class[0].0, FaultClass::PrimaryResult);
        assert_eq!(by_class[0].1.samples(), 4);
        assert!(CoverageReport::new(0).latency_percentile(1, 2).is_none());
    }

    #[test]
    fn empty_report_serialises() {
        let r = CoverageReport::new(0);
        assert_eq!(r.to_csv().lines().count(), 1, "header only");
        assert!(r.to_json().contains("\"outcomes\": [\n\n  ]"));
    }

    #[test]
    fn display_contains_classes() {
        let mut r = CoverageReport::new(100);
        r.record(outcome(FaultClass::PrimaryResult, true));
        let s = r.to_string();
        assert!(s.contains("p-result"));
        assert!(s.contains("100.0%"));
    }
}
