//! Monte-Carlo fault-injection campaigns.

use crate::{CoverageReport, FaultClass, FaultMix, TrialOutcome};
use reese_core::{InjectedFault, ReeseConfig, ReeseError, ReeseSim};
use reese_cpu::Emulator;
use reese_isa::Program;
use reese_stats::{par_map_indexed, SplitMix64};
use reese_trace::{MetricsSeries, Tracer};
use std::fmt;

/// Error raised by a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The workload itself failed to run cleanly (before any injection).
    Workload(String),
    /// A trial produced an unexpected simulator failure.
    Trial {
        /// Index of the failing trial.
        trial: usize,
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Workload(m) => write!(f, "workload failed: {m}"),
            CampaignError::Trial { trial, message } => write!(f, "trial {trial} failed: {message}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// A Monte-Carlo soft-error injection campaign.
///
/// Each trial picks a random dynamic instruction, bit position, and
/// fault class from the configured [`FaultMix`], runs the REESE machine
/// with that single fault, and records whether the P/R comparison caught
/// it, the detection latency, and the recovery cost in cycles.
///
/// Classes REESE cannot observe by design ([`FaultClass::PostCompare`],
/// [`FaultClass::CacheCell`], [`FaultClass::PipelineControl`]) are
/// scored as undetected without corrupting anything — they model the
/// coverage boundary the paper states in §4.2.
///
/// Trials are independent full simulator runs, so a campaign fans out
/// over [`Campaign::jobs`] worker threads. All per-trial parameters are
/// drawn **serially** from the single SplitMix64 stream before any
/// trial runs, so the resulting [`CoverageReport`] compares equal for
/// any worker count — parallelism buys wall-clock time only.
///
/// # Example
///
/// ```
/// use reese_core::ReeseConfig;
/// use reese_faults::{Campaign, FaultMix};
///
/// let prog = reese_isa::assemble(
///     "  li t0, 40\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
/// )?;
/// let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
///     .trials(10)
///     .seed(7)
///     .jobs(2)
///     .run(&prog)?;
/// assert_eq!(report.detected, 10); // result errors are always caught
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: ReeseConfig,
    mix: FaultMix,
    trials: usize,
    seed: u64,
    max_instructions: u64,
    jobs: usize,
    metrics_interval: u64,
}

impl Campaign {
    /// Creates a campaign over a REESE configuration and fault mix.
    pub fn new(config: ReeseConfig, mix: FaultMix) -> Campaign {
        Campaign {
            config,
            mix,
            trials: 100,
            seed: 0xFA017,
            max_instructions: u64::MAX,
            jobs: 1,
            metrics_interval: 0,
        }
    }

    /// Sets the number of trials (default 100).
    pub fn trials(mut self, n: usize) -> Campaign {
        self.trials = n;
        self
    }

    /// Sets the PRNG seed (default fixed, campaigns are reproducible).
    pub fn seed(mut self, seed: u64) -> Campaign {
        self.seed = seed;
        self
    }

    /// Caps the per-trial committed-instruction budget.
    pub fn max_instructions(mut self, n: u64) -> Campaign {
        self.max_instructions = n;
        self
    }

    /// Sets the worker-thread count (default 1 = serial). The report is
    /// bit-identical for every value; 0 is treated as 1.
    pub fn jobs(mut self, n: usize) -> Campaign {
        self.jobs = n.max(1);
        self
    }

    /// Samples per-interval metrics every `n` cycles during each
    /// simulated trial and pools them row-by-row into
    /// [`CoverageReport::metrics`]. 0 (the default) disables sampling —
    /// trials run on the zero-cost unobserved path. Trial outcomes are
    /// bit-identical either way.
    pub fn metrics_interval(mut self, n: u64) -> Campaign {
        self.metrics_interval = n;
        self
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Workload`] if the program cannot run
    /// cleanly, or [`CampaignError::Trial`] if a trial fails in an
    /// unexpected way (permanent faults are *expected* only for sticky
    /// injections, which this campaign does not produce).
    pub fn run(&self, program: &Program) -> Result<CoverageReport, CampaignError> {
        // Reference run: dynamic length and clean cycle count.
        let mut emu = Emulator::new(program);
        let reference = emu
            .run(self.max_instructions)
            .map_err(|e| CampaignError::Workload(e.to_string()))?;
        let dynamic_len = reference.instructions;
        if dynamic_len == 0 {
            return Err(CampaignError::Workload(
                "program executes no instructions".into(),
            ));
        }
        let sim = ReeseSim::new(self.config.clone());
        let clean = sim
            .run_limit(program, self.max_instructions)
            .map_err(|e| CampaignError::Workload(e.to_string()))?;
        let clean_cycles = clean.cycles();
        let clean_digest = clean.state_digest;

        // Serial parameter pre-draw: the single SplitMix64 stream is
        // consumed in trial order here, before any trial executes, so
        // the fan-out below cannot perturb it and the report compares
        // equal for every worker count.
        let mut rng = SplitMix64::new(self.seed);
        let params: Vec<(FaultClass, u64, u8)> = (0..self.trials)
            .map(|_| {
                let class = self.mix.sample(rng.next_u64());
                let seq = rng.range_u64(0, dynamic_len);
                let bit = (rng.next_u64() & 63) as u8;
                (class, seq, bit)
            })
            .collect();

        let (outcomes, throughput) =
            par_map_indexed(self.jobs, &params, |trial, &(class, seq, bit)| {
                self.run_trial(
                    &sim,
                    program,
                    trial,
                    class,
                    seq,
                    bit,
                    clean_cycles,
                    clean_digest,
                )
            });

        let mut report = CoverageReport::new(clean_cycles);
        let mut metrics: Option<MetricsSeries> = None;
        for outcome in outcomes {
            let (trial, trial_metrics) = outcome?;
            report.record(trial);
            if let Some(m) = trial_metrics {
                match &mut metrics {
                    None => metrics = Some(m),
                    Some(acc) => acc.merge_pooled(&m),
                }
            }
        }
        report.metrics = metrics;
        report.throughput = Some(throughput);
        Ok(report)
    }

    /// Runs one injection trial (independent of every other trial).
    /// Returns the outcome plus the trial's metrics series when
    /// sampling is on and the trial actually simulated.
    #[allow(clippy::too_many_arguments)]
    fn run_trial(
        &self,
        sim: &ReeseSim,
        program: &Program,
        trial: usize,
        class: FaultClass,
        seq: u64,
        bit: u8,
        clean_cycles: u64,
        clean_digest: u64,
    ) -> Result<(TrialOutcome, Option<MetricsSeries>), CampaignError> {
        match class {
            FaultClass::PrimaryResult | FaultClass::RedundantResult => {
                let fault = if class == FaultClass::PrimaryResult {
                    InjectedFault::primary(seq, bit)
                } else {
                    InjectedFault::redundant(seq, bit)
                };
                let mut tracer = (self.metrics_interval > 0)
                    .then(|| Tracer::new().with_interval(self.metrics_interval));
                let r = match &mut tracer {
                    Some(t) => {
                        sim.run_with_faults_observed(program, &[fault], 0, self.max_instructions, t)
                    }
                    None => sim.run_with_faults(program, &[fault], self.max_instructions),
                }
                .map_err(|e: ReeseError| CampaignError::Trial {
                    trial,
                    message: e.to_string(),
                })?;
                let detected = !r.detections.is_empty();
                let metrics = tracer.map(|mut t| {
                    t.finish();
                    t.into_parts().1
                });
                Ok((
                    TrialOutcome {
                        class,
                        seq,
                        bit,
                        detected,
                        detection_latency: r.detections.first().map(DetectionLatency::of),
                        extra_cycles: r.cycles().saturating_sub(clean_cycles),
                        state_clean: r.state_digest == clean_digest,
                    },
                    metrics,
                ))
            }
            // Classes outside REESE's observation window: scored
            // undetected-by-design, nothing to simulate.
            _ => Ok((
                TrialOutcome {
                    class,
                    seq,
                    bit,
                    detected: false,
                    detection_latency: None,
                    extra_cycles: 0,
                    state_clean: true,
                },
                None,
            )),
        }
    }
}

/// Helper newtype so `map` above stays readable.
struct DetectionLatency;

impl DetectionLatency {
    fn of(d: &reese_core::DetectionEvent) -> u64 {
        d.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    fn loop_prog() -> reese_isa::Program {
        assemble("  li t0, 60\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap()
    }

    #[test]
    fn result_errors_fully_detected() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(25)
            .seed(1)
            .run(&loop_prog())
            .unwrap();
        assert_eq!(report.trials(), 25);
        assert_eq!(report.detected, 25);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert!(report.mean_detection_latency() > 0.0);
        assert!(
            report.all_states_clean(),
            "recovery must restore architectural state"
        );
    }

    #[test]
    fn broad_mix_shows_coverage_boundary() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(60)
            .seed(2)
            .run(&loop_prog())
            .unwrap();
        assert!(report.detected > 0, "result errors present");
        assert!(report.detected < 60, "uncovered classes present");
        for c in [
            FaultClass::PostCompare,
            FaultClass::CacheCell,
            FaultClass::PipelineControl,
        ] {
            let (det, total) = report.by_class(c);
            if total > 0 {
                assert_eq!(det, 0, "{c} must be undetectable");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(20)
                .seed(42)
                .run(&loop_prog())
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_report_is_bit_identical_to_serial() {
        let run = |jobs: usize| {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(24)
                .seed(42)
                .jobs(jobs)
                .run(&loop_prog())
                .unwrap()
        };
        let serial = run(1);
        for jobs in [2, 4, 7] {
            assert_eq!(run(jobs), serial, "jobs={jobs} must not change the report");
        }
    }

    #[test]
    fn parallel_run_reports_throughput() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(8)
            .jobs(4)
            .run(&loop_prog())
            .unwrap();
        let t = report.throughput.expect("throughput recorded");
        assert_eq!(t.items(), 8);
        assert_eq!(t.jobs, 4);
        assert!(t.items_per_sec() > 0.0);
    }

    #[test]
    fn sampled_campaign_pools_metrics_without_changing_outcomes() {
        let run = |interval: u64| {
            Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
                .trials(6)
                .seed(11)
                .metrics_interval(interval)
                .run(&loop_prog())
                .unwrap()
        };
        let plain = run(0);
        let sampled = run(200);
        assert_eq!(
            sampled, plain,
            "sampling must not perturb trial outcomes (equality ignores metrics)"
        );
        assert!(plain.metrics.is_none());
        let m = sampled.metrics.as_ref().expect("metrics pooled");
        assert!(!m.rows.is_empty());
        // Six simulated trials pooled: the committed total is six times
        // one faulted run's commit count (all trials run the same
        // program to completion).
        assert_eq!(m.totals().committed % 6, 0);
        assert!(m.totals().committed > 0);
    }

    #[test]
    fn recovery_costs_cycles() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(10)
            .seed(3)
            .run(&loop_prog())
            .unwrap();
        assert!(report.mean_recovery_cycles() > 0.0, "a flush is never free");
    }

    #[test]
    fn empty_program_rejected() {
        let prog = assemble("  halt\n").unwrap();
        // One instruction is fine; a zero-trial campaign also fine.
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(0)
            .run(&prog)
            .unwrap();
        assert_eq!(report.trials(), 0);
        assert_eq!(report.coverage(), 0.0);
    }
}
