//! Monte-Carlo fault-injection campaigns.

use crate::engine::{
    boundary_count, clean_window, plan_window, TrialWindow, WindowBaseline,
    MAX_RESIDENT_CHECKPOINTS,
};
use crate::schemes::{self, DetectionScheme, Trial};
use crate::stream::{fnv1a64, outcome_line, read_log, LogHeader, LogWriter};
use crate::telemetry::{json_str, Telemetry};
use crate::{CoverageReport, FaultClass, FaultMix, TrialEngine, TrialOutcome};
use reese_ckpt::{
    checkpoint_stream_thinned, derive_checkpoint, warm_checkpoint_at, Checkpoint, Scheme,
};
use reese_core::ReeseConfig;
use reese_cpu::Emulator;
use reese_isa::Program;
use reese_stats::{par_map_indexed, SplitMix64};
use reese_trace::{MetricsSeries, Tracer};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;

/// Error raised by a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The workload itself failed to run cleanly (before any injection).
    Workload(String),
    /// A trial produced an unexpected simulator failure.
    Trial {
        /// Index of the failing trial.
        trial: usize,
        /// Description of the failure.
        message: String,
    },
    /// A `--resume` log exists but records a different campaign (or is
    /// corrupt), so its outcomes cannot be reused.
    Resume(String),
    /// Reading or writing a campaign log failed.
    Io(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Workload(m) => write!(f, "workload failed: {m}"),
            CampaignError::Trial { trial, message } => write!(f, "trial {trial} failed: {message}"),
            CampaignError::Resume(m) => write!(f, "resume log mismatch: {m}"),
            CampaignError::Io(m) => write!(f, "campaign log I/O failed: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// A Monte-Carlo soft-error injection campaign.
///
/// Each trial picks a random dynamic instruction, bit position, and
/// fault class from the configured [`FaultMix`], runs the REESE machine
/// with that single fault, and records whether the P/R comparison caught
/// it, the detection latency, and the recovery cost in cycles.
///
/// Classes REESE cannot observe by design ([`FaultClass::PostCompare`],
/// [`FaultClass::CacheCell`], [`FaultClass::PipelineControl`]) are
/// scored as undetected without corrupting anything — they model the
/// coverage boundary the paper states in §4.2.
///
/// Simulated trials are scored over a **checkpoint-anchored window**
/// around the fault (see [`crate::engine`]): under the default
/// [`TrialEngine::Replay`] a fault deep in a long workload costs a
/// restore plus a short suffix run instead of a whole-program
/// re-simulation, and identical fault keys are memoized, so campaigns
/// with millions of injections stay tractable. [`TrialEngine::Full`]
/// recomputes every trial from instruction 0 with no shared state and
/// is kept as the oracle arm: both engines must produce byte-identical
/// reports.
///
/// All per-trial parameters are drawn **serially** from the single
/// SplitMix64 stream before any trial runs, so the resulting
/// [`CoverageReport`] compares equal for any worker count —
/// parallelism buys wall-clock time only — and a campaign interrupted
/// and resumed from its [`Campaign::outcomes_jsonl`] log recomputes
/// exactly the missing trials.
///
/// # Example
///
/// ```
/// use reese_core::ReeseConfig;
/// use reese_faults::{Campaign, FaultMix};
///
/// let prog = reese_isa::assemble(
///     "  li t0, 40\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
/// )?;
/// let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
///     .trials(10)
///     .seed(7)
///     .jobs(2)
///     .run(&prog)?;
/// assert_eq!(report.detected, 10); // result errors are always caught
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: ReeseConfig,
    mix: FaultMix,
    scheme: Scheme,
    trials: usize,
    seed: u64,
    max_instructions: u64,
    jobs: usize,
    metrics_interval: u64,
    engine: TrialEngine,
    ckpt_every: u64,
    outcomes_jsonl: Option<PathBuf>,
    resume: Option<PathBuf>,
    trial_limit: Option<usize>,
    telemetry_out: Option<PathBuf>,
    telemetry: Option<std::sync::Arc<Telemetry>>,
}

impl Campaign {
    /// Creates a campaign over a REESE configuration and fault mix.
    pub fn new(config: ReeseConfig, mix: FaultMix) -> Campaign {
        Campaign {
            config,
            mix,
            scheme: Scheme::Reese,
            trials: 100,
            seed: 0xFA017,
            max_instructions: u64::MAX,
            jobs: 1,
            metrics_interval: 0,
            engine: TrialEngine::Replay,
            ckpt_every: crate::DEFAULT_CKPT_EVERY,
            outcomes_jsonl: None,
            resume: None,
            trial_limit: None,
            telemetry_out: None,
            telemetry: None,
        }
    }

    /// Selects the detection backend under test (default
    /// [`Scheme::Reese`]). The campaign machinery — parameter
    /// pre-draw, anchored windows, memoization, resume — is shared;
    /// only program preparation and trial scoring go through the
    /// scheme (see [`crate::schemes`]).
    pub fn scheme(mut self, scheme: Scheme) -> Campaign {
        self.scheme = scheme;
        self
    }

    /// Sets the number of trials (default 100).
    pub fn trials(mut self, n: usize) -> Campaign {
        self.trials = n;
        self
    }

    /// Sets the PRNG seed (default fixed, campaigns are reproducible).
    pub fn seed(mut self, seed: u64) -> Campaign {
        self.seed = seed;
        self
    }

    /// Caps the per-trial committed-instruction budget.
    pub fn max_instructions(mut self, n: u64) -> Campaign {
        self.max_instructions = n;
        self
    }

    /// Sets the worker-thread count (default 1 = serial). The report is
    /// bit-identical for every value; 0 is treated as 1.
    pub fn jobs(mut self, n: usize) -> Campaign {
        self.jobs = n.max(1);
        self
    }

    /// Samples per-interval metrics every `n` cycles during each
    /// simulated trial and pools them row-by-row into
    /// [`CoverageReport::metrics`]. 0 (the default) disables sampling —
    /// trials run on the zero-cost unobserved path, and identical fault
    /// keys are memoized. Trial outcomes are bit-identical either way.
    pub fn metrics_interval(mut self, n: u64) -> Campaign {
        self.metrics_interval = n;
        self
    }

    /// Selects the trial engine (default [`TrialEngine::Replay`]). Both
    /// engines produce byte-identical reports; `Full` pays the
    /// from-scratch cost per trial and exists as the oracle arm.
    pub fn engine(mut self, engine: TrialEngine) -> Campaign {
        self.engine = engine;
        self
    }

    /// Sets the checkpoint interval K in instructions (default
    /// [`crate::DEFAULT_CKPT_EVERY`]). Smaller K means shorter replay
    /// windows but more checkpoints; the interval shapes the anchored
    /// windows, so it participates in the campaign-log header.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn ckpt_every(mut self, n: u64) -> Campaign {
        assert!(n >= 1, "checkpoint interval must be at least 1");
        self.ckpt_every = n;
        self
    }

    /// Streams every computed outcome to a JSONL campaign log (header
    /// line plus one line per trial, appended and flushed as trials
    /// complete), creating/truncating the file.
    pub fn outcomes_jsonl(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.outcomes_jsonl = Some(path.into());
        self
    }

    /// Resumes from an existing campaign log: recorded trials are
    /// reused verbatim, only missing ones are computed, and the new
    /// outcomes append to the same file. The final report is
    /// byte-identical to an uninterrupted run. Takes precedence over
    /// [`Campaign::outcomes_jsonl`].
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.resume = Some(path.into());
        self
    }

    /// Caps how many *new* trials this invocation computes (in trial
    /// order), leaving the rest for a later [`Campaign::resume`]. The
    /// returned report is partial; `None` (the default) computes all.
    pub fn trial_limit(mut self, n: usize) -> Campaign {
        self.trial_limit = Some(n);
        self
    }

    /// Streams a telemetry journal (phase timings, worker throughput,
    /// memoization hit rate, progress/ETA) to a JSONL file as the
    /// campaign runs (see [`crate::telemetry`]). The journal records
    /// wall-clock observations only — trial outcomes are bit-identical
    /// with or without it.
    pub fn telemetry_out(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.telemetry_out = Some(path.into());
        self
    }

    /// Attaches an already-open shared [`Telemetry`] journal instead of
    /// creating one: several sequential campaigns (the `schemes`
    /// ranking's cells) then interleave their events into one file.
    /// Takes precedence over [`Campaign::telemetry_out`].
    pub fn telemetry(mut self, journal: std::sync::Arc<Telemetry>) -> Campaign {
        self.telemetry = Some(journal);
        self
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Workload`] if the program cannot run
    /// cleanly, [`CampaignError::Trial`] if a trial fails in an
    /// unexpected way (permanent faults are *expected* only for sticky
    /// injections, which this campaign does not produce),
    /// [`CampaignError::Resume`] if a resume log records a different
    /// campaign, or [`CampaignError::Io`] on log file failures.
    pub fn run(&self, program: &Program) -> Result<CoverageReport, CampaignError> {
        let tele = match (&self.telemetry, &self.telemetry_out) {
            (Some(shared), _) => Some(std::sync::Arc::clone(shared)),
            (None, Some(path)) => Some(std::sync::Arc::new(
                Telemetry::create(path).map_err(CampaignError::Io)?,
            )),
            (None, None) => None,
        };
        if let Some(t) = &tele {
            t.reset_progress();
            t.emit(
                "campaign_start",
                &[
                    ("scheme", json_str(self.scheme.name())),
                    ("engine", json_str(&format!("{:?}", self.engine))),
                    ("jobs", self.jobs.to_string()),
                    ("trials", self.trials.to_string()),
                    ("seed", self.seed.to_string()),
                ],
            );
        }
        let scheme = schemes::build(self.scheme, &self.config);
        // Everything downstream — checkpoints, dynamic length, fault
        // sequence numbers — is in terms of the *prepared* program
        // (the identity for every hardware scheme).
        let prepared = scheme.prepare(program).map_err(CampaignError::Workload)?;
        let program = &prepared;

        let phase_start = std::time::Instant::now();
        // The reference sweep (dynamic length + checkpoints) and the
        // clean detailed run are independent: overlap them when the
        // campaign has workers to spare.
        let (sweep, clean) = if self.jobs > 1 {
            std::thread::scope(|scope| {
                let clean = scope.spawn(|| scheme.run_limit(program, self.max_instructions));
                let sweep = self.reference_sweep(program);
                (sweep, clean.join().expect("clean reference pass panicked"))
            })
        } else {
            (
                self.reference_sweep(program),
                scheme.run_limit(program, self.max_instructions),
            )
        };
        let (coarse, stride, dynamic_len) = sweep?;
        let clean = clean.map_err(CampaignError::Workload)?;
        if dynamic_len == 0 {
            return Err(CampaignError::Workload(
                "program executes no instructions".into(),
            ));
        }
        let clean_cycles = clean.cycles;
        let clean_digest = clean.state_digest;
        if let Some(t) = &tele {
            t.emit(
                "reference_done",
                &[
                    ("checkpoints", coarse.len().to_string()),
                    ("stride", stride.to_string()),
                    ("dynamic_len", dynamic_len.to_string()),
                    ("clean_cycles", clean_cycles.to_string()),
                    (
                        "phase_ms",
                        (phase_start.elapsed().as_millis() as u64).to_string(),
                    ),
                ],
            );
        }
        let boundaries = boundary_count(dynamic_len, self.ckpt_every);
        if self.engine == TrialEngine::Replay {
            assert_eq!(
                stride % self.ckpt_every,
                0,
                "sweep stride must stay on the anchor grid"
            );
            assert_eq!(
                coarse.len(),
                boundary_count(dynamic_len, stride),
                "checkpoint sweep disagrees with planned boundary count"
            );
        }

        // Serial parameter pre-draw: the single SplitMix64 stream is
        // consumed in trial order here, before any trial executes, so
        // the fan-out below cannot perturb it and the report compares
        // equal for every worker count.
        let mut rng = SplitMix64::new(self.seed);
        let params: Vec<(FaultClass, u64, u8)> = (0..self.trials)
            .map(|_| {
                let class = self.mix.sample(rng.next_u64());
                let seq = rng.range_u64(0, dynamic_len);
                let bit = (rng.next_u64() & 63) as u8;
                (class, seq, bit)
            })
            .collect();

        // Campaign-log plumbing: a resume log replays its recorded
        // outcomes after header validation; a fresh log starts with the
        // header line.
        let header = self.log_header(dynamic_len, clean_cycles, clean_digest);
        let (recorded, mut log) = match (&self.resume, &self.outcomes_jsonl) {
            (Some(path), _) => {
                let recorded = read_log(path, &header)?;
                (recorded, Some(LogWriter::append(path)?))
            }
            (None, Some(path)) => (BTreeMap::new(), Some(LogWriter::create(path, &header)?)),
            (None, None) => (BTreeMap::new(), None),
        };

        if let Some(t) = &tele {
            if !recorded.is_empty() {
                t.emit("resume_loaded", &[("recorded", recorded.len().to_string())]);
            }
        }

        // Which trials still need computing, honoring the trial cap.
        let mut todo: Vec<usize> = (0..self.trials)
            .filter(|t| !recorded.contains_key(t))
            .collect();
        if let Some(cap) = self.trial_limit {
            todo.truncate(cap);
        }

        // Distinct fault keys in first-occurrence order: a simulated
        // outcome is a pure function of (class, seq, bit), so the
        // memoized path computes each key once however many trials drew
        // it.
        let mut keys: Vec<(FaultClass, u64, u8)> = Vec::new();
        let mut key_of: HashMap<(FaultClass, u64, u8), usize> = HashMap::new();
        for &t in &todo {
            key_of.entry(params[t]).or_insert_with(|| {
                keys.push(params[t]);
                keys.len() - 1
            });
        }

        if let Some(t) = &tele {
            // Memoization effectiveness: duplicated keys never simulate.
            let hit_rate = if todo.is_empty() {
                0.0
            } else {
                1.0 - keys.len() as f64 / todo.len() as f64
            };
            t.emit(
                "plan",
                &[
                    ("todo", todo.len().to_string()),
                    ("distinct_keys", keys.len().to_string()),
                    ("memo_hit_rate", format!("{hit_rate:.4}")),
                ],
            );
        }

        // Recover exactly the anchor checkpoints the distinct keys use
        // from the coarse sweep — the campaign pays a capture per
        // *used* anchor, not per boundary of a long program.
        let phase_start = std::time::Instant::now();
        let anchors =
            self.anchor_checkpoints(program, &coarse, stride, boundaries, dynamic_len, &keys)?;
        drop(coarse);
        if let Some(t) = &tele {
            t.emit(
                "anchors_derived",
                &[
                    ("anchors", anchors.len().to_string()),
                    (
                        "phase_ms",
                        (phase_start.elapsed().as_millis() as u64).to_string(),
                    ),
                ],
            );
        }
        let phase_start = std::time::Instant::now();
        let baselines = self.window_baselines(
            scheme.as_ref(),
            program,
            &anchors,
            boundaries,
            dynamic_len,
            &keys,
        )?;
        if let Some(t) = &tele {
            t.emit(
                "baselines_cached",
                &[
                    ("windows", baselines.len().to_string()),
                    (
                        "phase_ms",
                        (phase_start.elapsed().as_millis() as u64).to_string(),
                    ),
                ],
            );
        }

        let mut computed: BTreeMap<usize, TrialOutcome> = BTreeMap::new();
        let mut metrics: Option<MetricsSeries> = None;
        let throughput;
        if self.metrics_interval == 0 {
            let total = keys.len() as u64;
            let stride = (total / 16).max(1);
            let (results, stats) = par_map_indexed(self.jobs, &keys, |_, &(class, seq, bit)| {
                let r = self.trial_outcome(
                    scheme.as_ref(),
                    program,
                    &anchors,
                    &baselines,
                    boundaries,
                    dynamic_len,
                    class,
                    seq,
                    bit,
                    None,
                );
                if let Some(t) = &tele {
                    t.progress(total, stride);
                }
                r
            });
            throughput = stats;
            for &t in &todo {
                match &results[key_of[&params[t]]] {
                    Ok(o) => {
                        computed.insert(t, *o);
                    }
                    Err(m) => {
                        return Err(CampaignError::Trial {
                            trial: t,
                            message: m.clone(),
                        })
                    }
                }
            }
        } else {
            // Metrics sampling pools one series per simulated *trial*;
            // memoization would collapse duplicate keys and change the
            // pooled totals, so every trial simulates individually.
            let total = todo.len() as u64;
            let stride = (total / 16).max(1);
            let (results, stats) = par_map_indexed(self.jobs, &todo, |_, &t| {
                let (class, seq, bit) = params[t];
                let mut tracer = class
                    .detectable_by_design()
                    .then(|| Tracer::new().with_interval(self.metrics_interval));
                let outcome = self
                    .trial_outcome(
                        scheme.as_ref(),
                        program,
                        &anchors,
                        &baselines,
                        boundaries,
                        dynamic_len,
                        class,
                        seq,
                        bit,
                        tracer.as_mut(),
                    )
                    .map_err(|message| CampaignError::Trial { trial: t, message })?;
                let series = tracer.map(|mut t| {
                    t.finish();
                    t.into_parts().1
                });
                if let Some(tl) = &tele {
                    tl.progress(total, stride);
                }
                Ok((outcome, series))
            });
            throughput = stats;
            for (result, &t) in results.into_iter().zip(&todo) {
                let (outcome, series) = result?;
                computed.insert(t, outcome);
                if let Some(m) = series {
                    match &mut metrics {
                        None => metrics = Some(m),
                        Some(acc) => acc.merge_pooled(&m),
                    }
                }
            }
        }

        if let Some(t) = &tele {
            t.trials_done(&throughput);
        }

        // Stream the new outcomes (trial order) before assembling the
        // report, so an interrupted consumer still has them on disk.
        if let Some(log) = &mut log {
            for (&t, o) in &computed {
                log.line(&outcome_line(self.seed, t, o))?;
            }
        }

        let mut all = recorded;
        all.extend(computed);
        let mut report = CoverageReport::new(clean_cycles);
        for o in all.values() {
            report.record(*o);
        }
        report.metrics = metrics;
        report.throughput = Some(throughput);
        if let Some(t) = &tele {
            t.emit(
                "campaign_done",
                &[
                    ("trials", report.trials().to_string()),
                    ("detected", report.detected.to_string()),
                    ("coverage", format!("{:.6}", report.coverage())),
                ],
            );
        }
        Ok(report)
    }

    /// The reference pass. Under `Replay` the checkpoint-capture sweep
    /// *is* the reference pass — one emulator walk yields the dynamic
    /// length and a bounded set of coarse checkpoints (the sweep thins
    /// itself on long programs; the anchors trials actually use are
    /// derived afterwards, so capture cost scales with the campaign,
    /// not the program). Under `Full` no state is kept (trials
    /// re-derive their anchors from scratch), so only a plain emulator
    /// run measures the length.
    fn reference_sweep(
        &self,
        program: &Program,
    ) -> Result<(Vec<Checkpoint>, u64, u64), CampaignError> {
        match self.engine {
            TrialEngine::Replay => checkpoint_stream_thinned(
                program,
                self.ckpt_every,
                &self.config.pipeline,
                self.max_instructions,
                MAX_RESIDENT_CHECKPOINTS,
            )
            .map_err(|e| CampaignError::Workload(e.to_string())),
            TrialEngine::Full => {
                let mut emu = Emulator::new(program);
                let r = emu
                    .run(self.max_instructions)
                    .map_err(|e| CampaignError::Workload(e.to_string()))?;
                Ok((Vec::new(), self.ckpt_every, r.instructions))
            }
        }
    }

    /// Derives the anchor checkpoints the distinct simulated keys use
    /// from the coarse sweep, on the worker pool. Each distinct anchor
    /// costs at most one coarse-stride warm fast-forward plus one
    /// capture; anchors that land on the coarse grid are reused as-is.
    /// Replay-only: the `Full` arm re-derives anchors from instruction
    /// 0 inside each trial.
    fn anchor_checkpoints(
        &self,
        program: &Program,
        coarse: &[Checkpoint],
        stride: u64,
        boundaries: usize,
        dynamic_len: u64,
        keys: &[(FaultClass, u64, u8)],
    ) -> Result<HashMap<usize, Checkpoint>, CampaignError> {
        if self.engine == TrialEngine::Full {
            return Ok(HashMap::new());
        }
        let mut wanted: Vec<usize> = Vec::new();
        let mut seen = HashSet::new();
        for &(class, seq, _) in keys {
            if class.detectable_by_design() {
                let w = plan_window(
                    seq,
                    self.ckpt_every,
                    boundaries,
                    self.max_instructions,
                    dynamic_len,
                );
                if seen.insert(w.anchor_idx) {
                    wanted.push(w.anchor_idx);
                }
            }
        }
        let (results, _) = par_map_indexed(self.jobs, &wanted, |_, &idx| {
            let boundary = idx as u64 * self.ckpt_every;
            let base = &coarse[(boundary / stride) as usize];
            derive_checkpoint(program, base, boundary, &self.config.pipeline)
                .map_err(|e| e.to_string())
        });
        let mut map = HashMap::with_capacity(wanted.len());
        for (idx, r) in wanted.into_iter().zip(results) {
            let ck =
                r.map_err(|m| CampaignError::Workload(format!("anchor derivation failed: {m}")))?;
            map.insert(idx, ck);
        }
        Ok(map)
    }

    /// The campaign-log header: everything the outcome sequence is a
    /// pure function of (deliberately excluding the engine, the worker
    /// count, and metrics sampling — none may change outcomes).
    fn log_header(&self, dynamic_len: u64, clean_cycles: u64, clean_digest: u64) -> LogHeader {
        let mut mix = [0u32; 5];
        for (slot, class) in mix.iter_mut().zip(FaultClass::ALL) {
            *slot = self.mix.weight(class);
        }
        // The scheme participates in the config digest (a duplex log
        // must not resume a REESE campaign). The REESE hash stays
        // unsalted so logs from before schemes existed keep resuming.
        let config_fnv = match self.scheme {
            Scheme::Reese => fnv1a64(format!("{:?}", self.config).as_bytes()),
            s => fnv1a64(format!("{}:{:?}", s.name(), self.config).as_bytes()),
        };
        LogHeader {
            seed: self.seed,
            trials: self.trials as u64,
            mix,
            ckpt_every: self.ckpt_every,
            max_instructions: self.max_instructions,
            config_fnv,
            dynamic_len,
            clean_cycles,
            clean_digest,
        }
    }

    /// Clean-window baselines for every distinct window the simulated
    /// keys touch, computed on the worker pool before trial fan-out.
    /// Replay-only: the `Full` arm recomputes its baseline inside each
    /// trial, sharing nothing.
    fn window_baselines(
        &self,
        scheme: &dyn DetectionScheme,
        program: &Program,
        anchors: &HashMap<usize, Checkpoint>,
        boundaries: usize,
        dynamic_len: u64,
        keys: &[(FaultClass, u64, u8)],
    ) -> Result<HashMap<TrialWindow, WindowBaseline>, CampaignError> {
        if self.engine == TrialEngine::Full {
            return Ok(HashMap::new());
        }
        let mut windows: Vec<TrialWindow> = Vec::new();
        let mut seen = HashSet::new();
        for &(class, seq, _) in keys {
            if class.detectable_by_design() {
                let w = plan_window(
                    seq,
                    self.ckpt_every,
                    boundaries,
                    self.max_instructions,
                    dynamic_len,
                );
                if seen.insert(w) {
                    windows.push(w);
                }
            }
        }
        let (results, _) = par_map_indexed(self.jobs, &windows, |_, w| {
            clean_window(scheme, program, &anchors[&w.anchor_idx], w.budget)
        });
        let mut map = HashMap::with_capacity(windows.len());
        for (w, r) in windows.into_iter().zip(results) {
            let baseline =
                r.map_err(|m| CampaignError::Workload(format!("clean window failed: {m}")))?;
            map.insert(w, baseline);
        }
        Ok(map)
    }

    /// Scores one fault key over its anchored window (see
    /// [`crate::engine`] for the window contract shared by both
    /// engines).
    #[allow(clippy::too_many_arguments)]
    fn trial_outcome(
        &self,
        scheme: &dyn DetectionScheme,
        program: &Program,
        anchors: &HashMap<usize, Checkpoint>,
        baselines: &HashMap<TrialWindow, WindowBaseline>,
        boundaries: usize,
        dynamic_len: u64,
        class: FaultClass,
        seq: u64,
        bit: u8,
        tracer: Option<&mut Tracer>,
    ) -> Result<TrialOutcome, String> {
        if !class.detectable_by_design() {
            // Classes outside every scheme's observation window:
            // scored undetected-by-design, nothing to simulate.
            return Ok(TrialOutcome {
                class,
                seq,
                bit,
                detected: false,
                detection_latency: None,
                extra_cycles: 0,
                state_clean: true,
                inject_cycle: None,
                diverge_cycle: None,
                detect_cycle: None,
            });
        }
        let window = plan_window(
            seq,
            self.ckpt_every,
            boundaries,
            self.max_instructions,
            dynamic_len,
        );
        let owned;
        let (ck, baseline): (&Checkpoint, WindowBaseline) = match self.engine {
            TrialEngine::Replay => (&anchors[&window.anchor_idx], baselines[&window]),
            TrialEngine::Full => {
                // The oracle arm: re-derive the anchor state from
                // instruction 0 and re-run the clean window, every
                // trial, sharing nothing with any other trial.
                owned = warm_checkpoint_at(
                    program,
                    window.anchor(self.ckpt_every),
                    &self.config.pipeline,
                )
                .map_err(|e| e.to_string())?;
                let baseline = clean_window(scheme, program, &owned, window.budget)?;
                (&owned, baseline)
            }
        };
        scheme.run_trial(Trial {
            program,
            ck,
            baseline: &baseline,
            class,
            seq,
            bit,
            budget: window.budget,
            tracer,
            probe: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    fn loop_prog() -> reese_isa::Program {
        assemble("  li t0, 60\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap()
    }

    #[test]
    fn result_errors_fully_detected() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(25)
            .seed(1)
            .run(&loop_prog())
            .unwrap();
        assert_eq!(report.trials(), 25);
        assert_eq!(report.detected, 25);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert!(report.mean_detection_latency() > 0.0);
        assert!(
            report.all_states_clean(),
            "recovery must restore architectural state"
        );
    }

    #[test]
    fn broad_mix_shows_coverage_boundary() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(60)
            .seed(2)
            .run(&loop_prog())
            .unwrap();
        assert!(report.detected > 0, "result errors present");
        assert!(report.detected < 60, "uncovered classes present");
        for c in [
            FaultClass::PostCompare,
            FaultClass::CacheCell,
            FaultClass::PipelineControl,
        ] {
            let (det, total) = report.by_class(c);
            if total > 0 {
                assert_eq!(det, 0, "{c} must be undetectable");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(20)
                .seed(42)
                .run(&loop_prog())
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_report_is_bit_identical_to_serial() {
        let run = |jobs: usize| {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(24)
                .seed(42)
                .jobs(jobs)
                .run(&loop_prog())
                .unwrap()
        };
        let serial = run(1);
        for jobs in [2, 4, 7] {
            assert_eq!(run(jobs), serial, "jobs={jobs} must not change the report");
        }
    }

    #[test]
    fn full_engine_matches_replay_engine() {
        let run = |engine: TrialEngine| {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(20)
                .seed(42)
                .engine(engine)
                .run(&loop_prog())
                .unwrap()
        };
        let full = run(TrialEngine::Full);
        let replay = run(TrialEngine::Replay);
        assert_eq!(full, replay);
        assert_eq!(full.to_json(), replay.to_json());
    }

    #[test]
    fn parallel_run_reports_throughput() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(8)
            .jobs(4)
            .run(&loop_prog())
            .unwrap();
        let t = report.throughput.expect("throughput recorded");
        assert_eq!(t.items(), 8, "eight distinct fault keys, none memoized");
        assert_eq!(t.jobs, 4);
        assert!(t.items_per_sec() > 0.0);
    }

    #[test]
    fn sampled_campaign_pools_metrics_without_changing_outcomes() {
        let run = |interval: u64| {
            Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
                .trials(6)
                .seed(11)
                .metrics_interval(interval)
                .run(&loop_prog())
                .unwrap()
        };
        let plain = run(0);
        let sampled = run(200);
        assert_eq!(
            sampled, plain,
            "sampling must not perturb trial outcomes (equality ignores metrics)"
        );
        assert!(plain.metrics.is_none());
        let m = sampled.metrics.as_ref().expect("metrics pooled");
        assert!(!m.rows.is_empty());
        // Six simulated trials pooled: the committed total is six times
        // one faulted run's commit count (all trials run the same
        // program to completion).
        assert_eq!(m.totals().committed % 6, 0);
        assert!(m.totals().committed > 0);
    }

    #[test]
    fn recovery_costs_cycles() {
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(10)
            .seed(3)
            .run(&loop_prog())
            .unwrap();
        assert!(report.mean_recovery_cycles() > 0.0, "a flush is never free");
    }

    #[test]
    fn empty_program_rejected() {
        let prog = assemble("  halt\n").unwrap();
        // One instruction is fine; a zero-trial campaign also fine.
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(0)
            .run(&prog)
            .unwrap();
        assert_eq!(report.trials(), 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn memoization_keeps_duplicate_keys_cheap() {
        // A one-instruction-long program (plus halt) gives few distinct
        // seqs, so a large campaign collapses to few simulated keys.
        let prog =
            assemble("  li t0, 2\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap();
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
            .trials(5_000)
            .seed(5)
            .run(&prog)
            .unwrap();
        assert_eq!(report.trials(), 5_000);
        let t = report.throughput.expect("throughput recorded");
        // 2 classes x 6 dynamic instructions x 64 bits = 768 keys max.
        assert!(
            t.items() <= 768,
            "{} simulated items for 5000 trials",
            t.items()
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_checkpoint_interval_panics() {
        let _ = Campaign::new(ReeseConfig::starting(), FaultMix::broad()).ckpt_every(0);
    }

    #[test]
    fn outcomes_jsonl_then_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!("reese-campaign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("campaign.jsonl");
        let base = || {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(16)
                .seed(9)
        };
        let whole = base().run(&loop_prog()).unwrap();
        // First half, interrupted via the trial cap...
        let partial = base()
            .outcomes_jsonl(&log)
            .trial_limit(8)
            .run(&loop_prog())
            .unwrap();
        assert_eq!(partial.trials(), 8);
        assert_eq!(partial.outcomes, whole.outcomes[..8]);
        // ...then resumed to completion.
        let resumed = base().resume(&log).run(&loop_prog()).unwrap();
        assert_eq!(resumed, whole);
        assert_eq!(resumed.to_json(), whole.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_seed() {
        let dir = std::env::temp_dir().join(format!("reese-campaign-seed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("campaign.jsonl");
        Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(4)
            .seed(1)
            .outcomes_jsonl(&log)
            .run(&loop_prog())
            .unwrap();
        let err = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(4)
            .seed(2)
            .resume(&log)
            .run(&loop_prog())
            .unwrap_err();
        match err {
            CampaignError::Resume(m) => assert!(m.contains("`seed`"), "{m}"),
            other => panic!("expected Resume error, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_different_program() {
        let dir = std::env::temp_dir().join(format!("reese-campaign-prog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("campaign.jsonl");
        let base = || {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(4)
                .seed(1)
        };
        base().outcomes_jsonl(&log).run(&loop_prog()).unwrap();
        let other =
            assemble("  li t0, 10\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap();
        let err = base().resume(&log).run(&other).unwrap_err();
        assert!(matches!(err, CampaignError::Resume(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_missing_file_is_io_error() {
        let err = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(4)
            .resume("/nonexistent/campaign.jsonl")
            .run(&loop_prog())
            .unwrap_err();
        assert!(matches!(err, CampaignError::Io(_)), "{err}");
    }
}
