//! Trial engines: per-trial recompute-from-scratch vs checkpoint-
//! anchored replay.
//!
//! Both engines score a simulated trial over the same **anchored
//! window**: the detailed machine starts from the continuous-warm
//! functional state at the checkpoint boundary at-or-before the fault
//! (minus a runway, so the pipeline reaches steady state before the
//! fault fires) and runs to the boundary at-or-after the fault plus a
//! margin (so recovery bubbles drain inside the window). Detection,
//! latency, recovery cost, and state cleanliness are classified from
//! the faulted window against the clean window from the same start
//! state and budget.
//!
//! The window is the *definition* of a trial, not an approximation of
//! one: a whole-program "extra cycles" number for a recovered
//! transient measures the tail of the workload (downstream slack
//! absorbs or amplifies the flush bubble arbitrarily far from the
//! fault), whereas the windowed overhead is a property of the fault
//! itself. When the window covers the whole program — every small
//! program with dynamic length below the checkpoint interval — the
//! anchored trial degenerates to exactly the historical full-run
//! trial.
//!
//! [`TrialEngine::Full`] is the oracle arm: every trial re-derives its
//! anchor state by functionally executing the program from instruction
//! 0 (via [`reese_ckpt::warm_checkpoint_at`]) and re-runs its own
//! clean window — no sweep, no caches, no memoization, full
//! per-trial cost. [`TrialEngine::Replay`] captures all anchors in one
//! [`reese_ckpt::checkpoint_stream`] sweep, restores per trial, shares
//! clean-window baselines across trials with the same window, and
//! memoizes outcomes by fault key. Outcome byte-identity between the
//! two arms therefore certifies the entire reuse machinery —
//! checkpoint capture/restore, baseline caching, memoization, parallel
//! fan-out, and resume — against the from-scratch computation.

use crate::schemes::DetectionScheme;
use reese_ckpt::Checkpoint;
use reese_isa::Program;
use std::fmt;
use std::str::FromStr;

/// Pipeline spin-up distance: the anchor is the checkpoint boundary
/// at-or-before `seq - RUNWAY`, so at least this many instructions
/// commit before the fault can fire (when the fault is not within the
/// first window).
pub(crate) const RUNWAY: u64 = 512;

/// Drain distance: the window stops at the first checkpoint boundary
/// after `seq + MARGIN`, so recovery bubbles settle inside the window.
pub(crate) const MARGIN: u64 = 512;

/// Default checkpoint spacing for campaigns (instructions).
pub const DEFAULT_CKPT_EVERY: u64 = 2048;

/// Cap on checkpoints resident during the reference sweep. Each
/// capture clones the touched pages plus the full cache/TLB/predictor
/// tables, so an unbounded sweep over a long program is dominated by
/// capture cost; past this count the sweep thins itself (stride
/// doubles) and the campaign derives the anchors its trials actually
/// use from the nearest coarse checkpoint instead.
pub(crate) const MAX_RESIDENT_CHECKPOINTS: usize = 96;

/// Which machinery computes each simulated trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialEngine {
    /// Recompute everything from scratch per trial: functional
    /// fast-forward from instruction 0 to the anchor, then a fresh
    /// clean window and the faulted window. The oracle arm — it shares
    /// no state across trials.
    Full,
    /// One checkpoint sweep per campaign; per-trial restore, shared
    /// clean-window baselines, memoized outcomes. The default arm.
    Replay,
}

impl fmt::Display for TrialEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrialEngine::Full => "full",
            TrialEngine::Replay => "replay",
        })
    }
}

impl FromStr for TrialEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<TrialEngine, String> {
        match s {
            "full" => Ok(TrialEngine::Full),
            "replay" => Ok(TrialEngine::Replay),
            other => Err(format!(
                "unknown trial engine `{other}` (expected `full` or `replay`)"
            )),
        }
    }
}

/// The anchored window a fault at `seq` is scored over. Identical for
/// both engines by construction: it depends only on (`seq`,
/// checkpoint interval, boundary count, instruction limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TrialWindow {
    /// Index of the anchor boundary (boundary `i` sits at `i * every`).
    pub anchor_idx: usize,
    /// Committed-instruction budget for the window (`u64::MAX` = run
    /// to halt).
    pub budget: u64,
}

impl TrialWindow {
    /// The anchor boundary in global dynamic-instruction numbering.
    pub fn anchor(&self, every: u64) -> u64 {
        self.anchor_idx as u64 * every
    }
}

/// Number of checkpoint boundaries a sweep captures over a program of
/// `dynamic_len` instructions: boundaries sit at multiples of `every`
/// strictly below the halt.
pub(crate) fn boundary_count(dynamic_len: u64, every: u64) -> usize {
    ((dynamic_len - 1) / every + 1) as usize
}

/// Plans the window for a fault at `seq`. `limit` is the campaign's
/// committed-instruction cap (`u64::MAX` = none); `dynamic_len` is the
/// clean run's committed-instruction count.
pub(crate) fn plan_window(
    seq: u64,
    every: u64,
    boundaries: usize,
    limit: u64,
    dynamic_len: u64,
) -> TrialWindow {
    let anchor_idx = ((seq.saturating_sub(RUNWAY) / every) as usize).min(boundaries - 1);
    let anchor = anchor_idx as u64 * every;
    let stop_idx = (seq + MARGIN) / every + 1;
    let budget = if (stop_idx as usize) < boundaries {
        stop_idx * every - anchor
    } else {
        // Final window: the clean tail halts after `dynamic_len -
        // anchor` commits, but an architecturally corrupted stream may
        // never halt at all (a flipped loop bound loops forever), so
        // "run to halt" still needs a ceiling. One full checkpoint
        // interval of headroom past the clean halt separates a late
        // halt from a runaway; a run that exhausts it scores as
        // budget-limited and not clean.
        let tail = dynamic_len - anchor + every;
        if limit == u64::MAX {
            tail
        } else {
            tail.min(limit - anchor)
        }
    };
    TrialWindow { anchor_idx, budget }
}

/// Clean-window reference: cycle count, fetch-frontier digest, and
/// committed output of the fault-free run from `ck` under `budget`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowBaseline {
    /// Cycles of the clean window.
    pub cycles: u64,
    /// Fetch-frontier architectural digest at window end.
    pub digest: u64,
    /// FNV-1a over the window's committed output writes.
    pub output_fnv: u64,
    /// The window reached the program's halt (rather than its
    /// instruction budget), so the frontier digest is the final
    /// architectural state and is comparable across runs.
    pub halted: bool,
}

/// FNV-1a over a committed output stream.
pub(crate) fn output_fnv(out: &[i64]) -> u64 {
    let bytes: Vec<u8> = out.iter().flat_map(|v| v.to_le_bytes()).collect();
    crate::stream::fnv1a64(&bytes)
}

/// Runs the clean window from a checkpoint through a detection scheme.
pub(crate) fn clean_window(
    scheme: &dyn DetectionScheme,
    program: &Program,
    ck: &Checkpoint,
    budget: u64,
) -> Result<WindowBaseline, String> {
    let r = scheme.run_window(program, ck, budget)?;
    Ok(WindowBaseline {
        cycles: r.cycles,
        digest: r.state_digest,
        output_fnv: output_fnv(&r.output),
        halted: r.exit_code.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for e in [TrialEngine::Full, TrialEngine::Replay] {
            assert_eq!(e.to_string().parse::<TrialEngine>().unwrap(), e);
        }
        let err = "fast".parse::<TrialEngine>().unwrap_err();
        assert!(err.contains("unknown trial engine `fast`"), "{err}");
    }

    #[test]
    fn boundary_count_matches_sweep_semantics() {
        // Boundaries at multiples of `every` strictly below the halt.
        assert_eq!(boundary_count(1, 2048), 1);
        assert_eq!(boundary_count(2048, 2048), 1);
        assert_eq!(boundary_count(2049, 2048), 2);
        assert_eq!(boundary_count(4096, 2048), 2);
        assert_eq!(boundary_count(4097, 2048), 3);
    }

    #[test]
    fn window_gives_runway_and_margin() {
        // Fault deep in the stream: anchored one boundary back, stopped
        // one boundary past seq + margin.
        let w = plan_window(4500, 2048, 8, u64::MAX, 16_000);
        assert_eq!(w.anchor_idx, 1); // (4500-512)/2048 = 1
        assert_eq!(w.anchor(2048), 2048);
        assert_eq!(w.budget, (2 + 1) * 2048 - 2048); // stop at boundary 3
        assert!(4500 - w.anchor(2048) >= RUNWAY);
    }

    #[test]
    fn window_near_start_anchors_at_zero() {
        let w = plan_window(100, 2048, 8, u64::MAX, 16_000);
        assert_eq!(w.anchor_idx, 0);
        assert_eq!(w.budget, 2048);
    }

    #[test]
    fn window_near_end_runs_to_halt() {
        // Run-to-halt is still bounded: the clean tail plus one
        // interval of headroom, so a corrupted stream that loops
        // forever cannot hang the trial.
        let w = plan_window(15_000, 2048, 8, u64::MAX, 16_000);
        assert_eq!(w.anchor_idx, 7);
        assert_eq!(w.budget, 16_000 - 7 * 2048 + 2048);
    }

    #[test]
    fn window_near_end_respects_instruction_cap() {
        let w = plan_window(15_000, 2048, 8, 16_000, 16_000);
        assert_eq!(w.anchor_idx, 7);
        assert_eq!(w.budget, 16_000 - 7 * 2048);
    }

    #[test]
    fn small_program_degenerates_to_full_run() {
        // Dynamic length below the interval: one boundary, whole-program
        // window — the historical full-run trial.
        let n = boundary_count(122, DEFAULT_CKPT_EVERY);
        assert_eq!(n, 1);
        let w = plan_window(60, DEFAULT_CKPT_EVERY, n, u64::MAX, 122);
        assert_eq!(w.anchor_idx, 0);
        assert_eq!(w.budget, 122 + DEFAULT_CKPT_EVERY);
    }
}
