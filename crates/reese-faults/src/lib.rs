//! Soft-error fault injection for the REESE reproduction.
//!
//! The paper argues REESE's coverage analytically (§4.2); this crate
//! *measures* it. [`Campaign`] runs Monte-Carlo single-fault injections
//! against the REESE machine and reports detection coverage, detection
//! latency, and recovery cost. [`FaultClass`] encodes the coverage
//! boundary the paper states: result errors in either stream are caught
//! by the P/R comparison; post-compare, cache-cell, and pipeline-control
//! upsets are outside REESE's observation window.
//!
//! # Example
//!
//! ```
//! use reese_core::ReeseConfig;
//! use reese_faults::{Campaign, FaultMix};
//!
//! let prog = reese_isa::assemble(
//!     "  li t0, 30\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
//! )?;
//! let report = Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only())
//!     .trials(5)
//!     .run(&prog)?;
//! assert_eq!(report.coverage(), 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod campaign;
mod engine;
pub mod forensics;
mod model;
mod report;
pub mod schemes;
mod stream;
pub mod telemetry;

pub use campaign::{Campaign, CampaignError};
pub use engine::{TrialEngine, WindowBaseline, DEFAULT_CKPT_EVERY};
pub use forensics::{explain_trial, Explanation, TrialRef};
pub use model::{FaultClass, FaultMix};
pub use report::{CoverageReport, TrialOutcome, LATENCY_HISTOGRAM_CAP};
pub use schemes::{DetectionScheme, SchemeRun, SchemesReport, Trial};
pub use stream::trial_id;
