//! Streaming campaign logs: a JSONL file with one header line
//! identifying the campaign and one line per trial outcome.
//!
//! The log is the bounded-memory spine of large campaigns: each
//! outcome appends as one self-contained line, partial logs are valid
//! (a campaign interrupted after N trials has a header plus N lines),
//! and `--resume` replays the recorded outcomes instead of
//! recomputing them. The header pins everything the outcomes are a
//! pure function of — seed, trial count, fault mix, checkpoint
//! interval, instruction cap, configuration fingerprint, and the
//! reference run's length/cycles/digest — so resuming against the
//! wrong program or settings fails loudly instead of stitching two
//! different campaigns together. The trial *engine* is deliberately
//! not recorded: Full and Replay produce byte-identical outcomes (the
//! oracle contract), so a log written by one arm resumes under the
//! other.

use crate::{CampaignError, FaultClass, TrialOutcome};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

/// FNV-1a over a byte string; fingerprints the campaign configuration.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The header line: every input the trial outcomes are a pure
/// function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LogHeader {
    pub seed: u64,
    pub trials: u64,
    pub mix: [u32; 5],
    pub ckpt_every: u64,
    pub max_instructions: u64,
    pub config_fnv: u64,
    pub dynamic_len: u64,
    pub clean_cycles: u64,
    pub clean_digest: u64,
}

impl LogHeader {
    pub fn to_line(self) -> String {
        format!(
            "{{\"reese_campaign_log\": 1, \"seed\": {}, \"trials\": {}, \
             \"mix\": [{}, {}, {}, {}, {}], \"ckpt_every\": {}, \
             \"max_instructions\": {}, \"config_fnv\": {}, \
             \"dynamic_len\": {}, \"clean_cycles\": {}, \"clean_digest\": {}}}",
            self.seed,
            self.trials,
            self.mix[0],
            self.mix[1],
            self.mix[2],
            self.mix[3],
            self.mix[4],
            self.ckpt_every,
            self.max_instructions,
            self.config_fnv,
            self.dynamic_len,
            self.clean_cycles,
            self.clean_digest,
        )
    }

    pub fn parse(line: &str) -> Result<LogHeader, String> {
        let version = json_u64(line, "reese_campaign_log")
            .ok_or_else(|| "not a reese campaign log (missing header)".to_string())?;
        if version != 1 {
            return Err(format!("unsupported campaign log version {version}"));
        }
        let field = |key: &str| {
            json_u64(line, key).ok_or_else(|| format!("header is missing field `{key}`"))
        };
        let mix_raw = json_array_u64(line, "mix")
            .ok_or_else(|| "header is missing field `mix`".to_string())?;
        if mix_raw.len() != 5 {
            return Err(format!(
                "header mix has {} weights, expected 5",
                mix_raw.len()
            ));
        }
        let mut mix = [0u32; 5];
        for (slot, &w) in mix.iter_mut().zip(&mix_raw) {
            *slot = u32::try_from(w).map_err(|_| format!("mix weight {w} out of range"))?;
        }
        Ok(LogHeader {
            seed: field("seed")?,
            trials: field("trials")?,
            mix,
            ckpt_every: field("ckpt_every")?,
            max_instructions: field("max_instructions")?,
            config_fnv: field("config_fnv")?,
            dynamic_len: field("dynamic_len")?,
            clean_cycles: field("clean_cycles")?,
            clean_digest: field("clean_digest")?,
        })
    }

    /// Checks a recorded header against the campaign being resumed,
    /// naming the first mismatching field.
    pub fn expect_matches(&self, expected: &LogHeader) -> Result<(), String> {
        let fields: [(&str, u64, u64); 8] = [
            ("seed", self.seed, expected.seed),
            ("trials", self.trials, expected.trials),
            ("ckpt_every", self.ckpt_every, expected.ckpt_every),
            (
                "max_instructions",
                self.max_instructions,
                expected.max_instructions,
            ),
            ("config_fnv", self.config_fnv, expected.config_fnv),
            ("dynamic_len", self.dynamic_len, expected.dynamic_len),
            ("clean_cycles", self.clean_cycles, expected.clean_cycles),
            ("clean_digest", self.clean_digest, expected.clean_digest),
        ];
        for (name, recorded, wanted) in fields {
            if recorded != wanted {
                return Err(format!(
                    "`{name}` is {recorded} in the log but {wanted} in this campaign"
                ));
            }
        }
        if self.mix != expected.mix {
            return Err(format!(
                "`mix` is {:?} in the log but {:?} in this campaign",
                self.mix, expected.mix
            ));
        }
        Ok(())
    }
}

/// The stable, resume-safe identifier of one trial: an FNV-1a over the
/// campaign seed and the trial index. Unlike the bare line position in
/// the log (the old implicit-ordering assumption), the id survives
/// out-of-order appends, interleaved resume runs, and identifies which
/// campaign a line belongs to — `reese explain` addresses a trial by
/// it.
pub fn trial_id(seed: u64, trial: usize) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..].copy_from_slice(&(trial as u64).to_le_bytes());
    fnv1a64(&bytes)
}

/// One outcome as a JSONL line (no trailing newline).
pub(crate) fn outcome_line(seed: u64, trial: usize, o: &TrialOutcome) -> String {
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |v| v.to_string());
    format!(
        "{{\"trial\": {trial}, \"id\": {}, \"class\": \"{}\", \"seq\": {}, \"bit\": {}, \
         \"detected\": {}, \"detection_latency\": {}, \
         \"extra_cycles\": {}, \"state_clean\": {}, \
         \"inject_cycle\": {}, \"diverge_cycle\": {}, \"detect_cycle\": {}}}",
        trial_id(seed, trial),
        o.class,
        o.seq,
        o.bit,
        o.detected,
        opt(o.detection_latency),
        o.extra_cycles,
        o.state_clean,
        opt(o.inject_cycle),
        opt(o.diverge_cycle),
        opt(o.detect_cycle)
    )
}

/// Parses one outcome line back, losslessly. The middle element is the
/// recorded stable id, `None` on logs written before ids existed (the
/// optional-field scanners also treat the cycle fields as absent on
/// such logs).
pub(crate) fn parse_outcome_line(line: &str) -> Result<(usize, Option<u64>, TrialOutcome), String> {
    let field =
        |key: &str| json_u64(line, key).ok_or_else(|| format!("outcome is missing `{key}`"));
    let flag =
        |key: &str| json_bool(line, key).ok_or_else(|| format!("outcome is missing `{key}`"));
    let trial = usize::try_from(field("trial")?).map_err(|_| "trial out of range".to_string())?;
    let class_name =
        json_str(line, "class").ok_or_else(|| "outcome is missing `class`".to_string())?;
    let class = FaultClass::from_name(&class_name)
        .ok_or_else(|| format!("unknown fault class `{class_name}`"))?;
    let bit = u8::try_from(field("bit")?).map_err(|_| "bit out of range".to_string())?;
    Ok((
        trial,
        json_u64(line, "id"),
        TrialOutcome {
            class,
            seq: field("seq")?,
            bit,
            detected: flag("detected")?,
            detection_latency: json_u64(line, "detection_latency"),
            extra_cycles: field("extra_cycles")?,
            state_clean: flag("state_clean")?,
            inject_cycle: json_u64(line, "inject_cycle"),
            diverge_cycle: json_u64(line, "diverge_cycle"),
            detect_cycle: json_u64(line, "detect_cycle"),
        },
    ))
}

/// Reads a campaign log, validates its header against `expected`, and
/// returns the recorded outcomes keyed by trial index.
pub(crate) fn read_log(
    path: &Path,
    expected: &LogHeader,
) -> Result<BTreeMap<usize, TrialOutcome>, CampaignError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CampaignError::Io(format!("reading {}: {e}", path.display())))?;
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| CampaignError::Resume(format!("{} is empty", path.display())))?;
    let header = LogHeader::parse(header_line).map_err(CampaignError::Resume)?;
    header
        .expect_matches(expected)
        .map_err(CampaignError::Resume)?;
    let mut recorded = BTreeMap::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (trial, id, outcome) = parse_outcome_line(line)
            .map_err(|m| CampaignError::Resume(format!("line {}: {m}", i + 2)))?;
        if trial as u64 >= expected.trials {
            return Err(CampaignError::Resume(format!(
                "line {}: trial {trial} is out of range for {} trials",
                i + 2,
                expected.trials
            )));
        }
        if let Some(id) = id {
            let want = trial_id(expected.seed, trial);
            if id != want {
                return Err(CampaignError::Resume(format!(
                    "line {}: trial {trial} carries id {id} but this campaign's \
                     seed assigns {want} — the line belongs to a different campaign",
                    i + 2
                )));
            }
        }
        if recorded.insert(trial, outcome).is_some() {
            return Err(CampaignError::Resume(format!(
                "line {}: trial {trial} is recorded twice",
                i + 2
            )));
        }
    }
    Ok(recorded)
}

/// Reads a campaign log without an expectation to check against: the
/// forensics path, which takes the log itself as the source of truth
/// for seed, mix, and window geometry. Ids are still validated against
/// the recorded seed.
pub(crate) fn read_log_raw(
    path: &Path,
) -> Result<(LogHeader, BTreeMap<usize, TrialOutcome>), CampaignError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CampaignError::Io(format!("reading {}: {e}", path.display())))?;
    let header_line = text
        .lines()
        .next()
        .ok_or_else(|| CampaignError::Resume(format!("{} is empty", path.display())))?;
    let header = LogHeader::parse(header_line).map_err(CampaignError::Resume)?;
    let recorded = read_log(path, &header)?;
    Ok((header, recorded))
}

/// Per-trial appending writer over a campaign log.
pub(crate) struct LogWriter {
    out: BufWriter<File>,
    path: String,
}

impl LogWriter {
    /// Creates (truncating) a fresh log and writes the header.
    pub fn create(path: &Path, header: &LogHeader) -> Result<LogWriter, CampaignError> {
        let file = File::create(path)
            .map_err(|e| CampaignError::Io(format!("creating {}: {e}", path.display())))?;
        let mut w = LogWriter {
            out: BufWriter::new(file),
            path: path.display().to_string(),
        };
        w.line(&header.to_line())?;
        Ok(w)
    }

    /// Opens an existing log for appending (after [`read_log`]
    /// validated it).
    pub fn append(path: &Path) -> Result<LogWriter, CampaignError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CampaignError::Io(format!("opening {}: {e}", path.display())))?;
        Ok(LogWriter {
            out: BufWriter::new(file),
            path: path.display().to_string(),
        })
    }

    /// Appends one line and flushes, so an interrupted campaign keeps
    /// every completed trial.
    pub fn line(&mut self, line: &str) -> Result<(), CampaignError> {
        writeln!(self.out, "{line}")
            .and_then(|()| self.out.flush())
            .map_err(|e| CampaignError::Io(format!("writing {}: {e}", self.path)))
    }
}

// ---- Minimal JSON field scanners -----------------------------------
//
// The log is machine-written with a fixed shape (the project is
// std-only), so these scan for `"key":` and read one scalar; they are
// not a general JSON parser.

fn find_value(line: &str, key: &str) -> Option<usize> {
    let mut pat = String::with_capacity(key.len() + 3);
    let _ = write!(pat, "\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    Some(at + line[at..].len() - line[at..].trim_start().len())
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    let at = find_value(line, key)?;
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn json_bool(line: &str, key: &str) -> Option<bool> {
    let at = find_value(line, key)?;
    let rest = &line[at..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn json_str(line: &str, key: &str) -> Option<String> {
    let at = find_value(line, key)?;
    let rest = line[at..].strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn json_array_u64(line: &str, key: &str) -> Option<Vec<u64>> {
    let at = find_value(line, key)?;
    let rest = line[at..].strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    body.split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<Vec<u64>>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> LogHeader {
        LogHeader {
            seed: 7,
            trials: 24,
            mix: [4, 4, 1, 2, 1],
            ckpt_every: 2048,
            max_instructions: u64::MAX,
            config_fnv: 0xDEAD_BEEF,
            dynamic_len: 122,
            clean_cycles: 456,
            clean_digest: 789,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        assert_eq!(LogHeader::parse(&h.to_line()).unwrap(), h);
    }

    #[test]
    fn header_max_u64_round_trips() {
        let h = header();
        let parsed = LogHeader::parse(&h.to_line()).unwrap();
        assert_eq!(parsed.max_instructions, u64::MAX);
    }

    #[test]
    fn header_mismatch_names_the_field() {
        let h = header();
        let other = LogHeader { seed: 9, ..h };
        let err = h.expect_matches(&other).unwrap_err();
        assert!(err.contains("`seed` is 7 in the log but 9"), "{err}");
        let other = LogHeader {
            mix: [1, 1, 0, 0, 0],
            ..h
        };
        assert!(h.expect_matches(&other).unwrap_err().contains("`mix`"));
    }

    #[test]
    fn non_log_header_rejected() {
        let err = LogHeader::parse("{\"trials\": 3}").unwrap_err();
        assert!(err.contains("not a reese campaign log"), "{err}");
    }

    #[test]
    fn outcome_round_trips() {
        for o in [
            TrialOutcome {
                class: FaultClass::PrimaryResult,
                seq: 5,
                bit: 63,
                detected: true,
                detection_latency: Some(12),
                extra_cycles: 30,
                state_clean: true,
                inject_cycle: Some(40),
                diverge_cycle: None,
                detect_cycle: Some(52),
            },
            TrialOutcome {
                class: FaultClass::CacheCell,
                seq: u64::MAX - 1,
                bit: 0,
                detected: false,
                detection_latency: None,
                extra_cycles: 0,
                state_clean: false,
                inject_cycle: None,
                diverge_cycle: None,
                detect_cycle: None,
            },
        ] {
            let (trial, id, back) = parse_outcome_line(&outcome_line(7, 3, &o)).unwrap();
            assert_eq!(trial, 3);
            assert_eq!(id, Some(trial_id(7, 3)));
            assert_eq!(back, o);
        }
    }

    #[test]
    fn outcome_line_matches_report_json_row_shape() {
        let o = TrialOutcome {
            class: FaultClass::RedundantResult,
            seq: 1,
            bit: 2,
            detected: false,
            detection_latency: None,
            extra_cycles: 0,
            state_clean: true,
            inject_cycle: None,
            diverge_cycle: None,
            detect_cycle: None,
        };
        let line = outcome_line(7, 0, &o);
        assert!(line.contains("\"detection_latency\": null"), "{line}");
        assert!(line.contains("\"class\": \"r-result\""), "{line}");
        assert!(line.contains("\"inject_cycle\": null"), "{line}");
    }

    #[test]
    fn trial_ids_are_stable_and_campaign_specific() {
        assert_eq!(trial_id(7, 3), trial_id(7, 3), "pure function");
        assert_ne!(trial_id(7, 3), trial_id(7, 4), "index-sensitive");
        assert_ne!(trial_id(7, 3), trial_id(8, 3), "seed-sensitive");
    }

    #[test]
    fn pre_id_log_lines_still_parse() {
        // A line written before ids and cycle fields existed.
        let line = "{\"trial\": 2, \"class\": \"p-result\", \"seq\": 9, \"bit\": 1, \
                    \"detected\": true, \"detection_latency\": 4, \
                    \"extra_cycles\": 8, \"state_clean\": true}";
        let (trial, id, o) = parse_outcome_line(line).unwrap();
        assert_eq!(trial, 2);
        assert_eq!(id, None);
        assert_eq!(o.detection_latency, Some(4));
        assert_eq!(o.inject_cycle, None);
    }

    #[test]
    fn garbage_outcome_line_rejected() {
        assert!(parse_outcome_line("{\"trial\": 0}").is_err());
        assert!(parse_outcome_line("not json").is_err());
    }

    #[test]
    fn foreign_id_is_rejected_by_read_log() {
        let h = header();
        let o = TrialOutcome {
            class: FaultClass::PrimaryResult,
            seq: 1,
            bit: 1,
            detected: true,
            detection_latency: Some(3),
            extra_cycles: 5,
            state_clean: true,
            inject_cycle: None,
            diverge_cycle: None,
            detect_cycle: None,
        };
        let dir = std::env::temp_dir().join(format!("reese-id-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        // Line written under a different seed: same trial index, wrong id.
        let foreign = outcome_line(h.seed + 1, 0, &o);
        std::fs::write(&path, format!("{}\n{foreign}\n", h.to_line())).unwrap();
        let err = read_log(&path, &h).unwrap_err().to_string();
        assert!(err.contains("different campaign"), "{err}");
        // The same line under the right seed reads back fine.
        std::fs::write(
            &path,
            format!("{}\n{}\n", h.to_line(), outcome_line(h.seed, 0, &o)),
        )
        .unwrap();
        let recorded = read_log(&path, &h).unwrap();
        assert_eq!(recorded.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
