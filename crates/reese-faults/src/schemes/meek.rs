//! MEEK-style heterogeneous checker cores.
//!
//! The big out-of-order core runs the program unmodified; every
//! committed instruction is pushed, in commit order, through a small
//! bank of in-order single-issue checker pipelines behind a bounded
//! fan-out queue. A checker re-executes its instruction and compares
//! against the committed result; a mismatch triggers a rollback to the
//! last verified checkpoint.
//!
//! The checker bank is modeled *analytically* over the observed commit
//! stream rather than simulated per-structure:
//!
//! - [`CHECKERS`] checkers each retire one instruction per cycle.
//! - The fan-out queue holds [`QUEUE_DEPTH`] committed-but-unchecked
//!   instructions. A committed instruction cannot enter the queue
//!   before an older one has vacated its slot (`complete[i - DEPTH]`),
//!   which is exactly stall-on-full backpressure expressed as a
//!   recurrence: when commit outruns the checkers, enqueue times — and
//!   with them the end of verification — slide past the core's own
//!   cycles.
//! - Load values are **forwarded** from the main core to the checkers
//!   (the checkers have no port into the memory hierarchy), so a main-
//!   core fault in a load result is re-used verbatim by the checker
//!   and escapes detection. This is the scheme's honest coverage gap.
//!
//! Clean-run time overhead is the verification tail: the run is done
//! when the last instruction is *checked*, not when it commits.

use super::observe::CommitProbe;
use super::{DetectionScheme, SchemeRun, Trial};
use crate::engine::output_fnv;
use crate::{FaultClass, TrialOutcome};
use reese_ckpt::{Checkpoint, Scheme};
use reese_core::ReeseConfig;
use reese_isa::{OpKind, Program};
use reese_pipeline::PipelineSim;
use reese_trace::{DeepLog, Pair};

/// Number of small in-order checker cores.
pub const CHECKERS: usize = 2;

/// Capacity of the commit-to-checker fan-out queue, in instructions.
pub const QUEUE_DEPTH: usize = 16;

/// Completion cycle of each committed instruction's check, given the
/// commit stream `(seq, cycle, pc)`. One pass, O(n · CHECKERS).
fn checker_completions(commits: &[(u64, u64, u64)]) -> Vec<u64> {
    let mut complete = Vec::with_capacity(commits.len());
    let mut free = [0u64; CHECKERS];
    for (i, &(_, commit_cycle, _)) in commits.iter().enumerate() {
        // Backpressure: the queue slot frees when the instruction
        // QUEUE_DEPTH places older finishes its check.
        let enqueue = if i >= QUEUE_DEPTH {
            commit_cycle.max(complete[i - QUEUE_DEPTH])
        } else {
            commit_cycle
        };
        let (slot, &earliest) = free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("CHECKERS > 0");
        let done = enqueue.max(earliest) + 1;
        free[slot] = done;
        complete.push(done);
    }
    complete
}

/// The MEEK-style checker-core backend.
pub(crate) struct MeekScheme {
    sim: PipelineSim,
    /// Modeled rollback cost on detection (re-steer to the last
    /// verified checkpoint), charged on top of the detection latency.
    rollback: u64,
}

impl MeekScheme {
    pub fn new(config: &ReeseConfig) -> MeekScheme {
        MeekScheme {
            sim: PipelineSim::new(config.pipeline.clone()),
            rollback: u64::from(config.flush_penalty),
        }
    }

    /// Whether a main-core result fault at `pc` is visible to a
    /// checker: the instruction must produce a register result, and
    /// load values are forwarded (not re-loaded), so loads escape.
    fn primary_fault_checked(program: &Program, pc: u64) -> bool {
        match program.fetch(pc) {
            Some(ins) => ins.dest().is_some() && ins.op.kind() != OpKind::Load,
            None => false,
        }
    }

    /// Whether a checker-side upset at `pc` is caught: any corrupted
    /// checker copy of a register result (including a forwarded load
    /// value) mismatches the main core's committed result.
    fn checker_fault_checked(program: &Program, pc: u64) -> bool {
        match program.fetch(pc) {
            Some(ins) => ins.dest().is_some(),
            None => false,
        }
    }
}

impl DetectionScheme for MeekScheme {
    fn scheme(&self) -> Scheme {
        Scheme::Meek
    }

    fn run_limit(&self, program: &Program, max_instructions: u64) -> Result<SchemeRun, String> {
        let mut probe = CommitProbe::new();
        let r = self
            .sim
            .run_observed(program, 0, max_instructions, &mut probe)
            .map_err(|e| e.to_string())?;
        // The run is over when the last commit has been *checked*.
        let verified_end = checker_completions(&probe.commits)
            .last()
            .copied()
            .unwrap_or(0);
        Ok(SchemeRun {
            cycles: r.stats.cycles.max(verified_end),
            committed: r.stats.committed,
            output: r.output,
            exit_code: r.exit_code,
            state_digest: r.state_digest,
        })
    }

    fn run_window(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
    ) -> Result<SchemeRun, String> {
        // Window baselines stay in core cycles: trial recovery cost is
        // charged explicitly from the checker model, and mixing the
        // drain tail into the reference would double-count it.
        self.sim
            .run_interval(ck.restore(program), ck.warm.as_ref(), budget)
            .map(|r| SchemeRun {
                cycles: r.stats.cycles,
                committed: r.stats.committed,
                output: r.output,
                exit_code: r.exit_code,
                state_digest: r.state_digest,
            })
            .map_err(|e| e.to_string())
    }

    fn run_window_observed(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
        probe: &mut DeepLog,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval_observed(ck.restore(program), ck.warm.as_ref(), budget, probe)
            .map(|r| SchemeRun {
                cycles: r.stats.cycles,
                committed: r.stats.committed,
                output: r.output,
                exit_code: r.exit_code,
                state_digest: r.state_digest,
            })
            .map_err(|e| e.to_string())
    }

    fn run_trial(&self, mut t: Trial<'_>) -> Result<TrialOutcome, String> {
        // Primary-result faults corrupt the main core architecturally;
        // checker-side (redundant) upsets corrupt only the checker's
        // latched copy, so the main core stays clean.
        let mut emu = t.ck.restore(t.program);
        let primary = t.class == FaultClass::PrimaryResult;
        if primary {
            emu.inject_result_fault(t.seq, t.bit);
        }
        let mut probe = CommitProbe::watching(t.seq);
        let warm = t.ck.warm.as_ref();
        let r = match (t.tracer.take(), t.probe.take()) {
            (Some(tr), Some(dp)) => self.sim.run_interval_observed(
                emu,
                warm,
                t.budget,
                &mut Pair(&mut probe, &mut Pair(tr, dp)),
            ),
            (Some(tr), None) => {
                self.sim
                    .run_interval_observed(emu, warm, t.budget, &mut Pair(&mut probe, tr))
            }
            (None, Some(dp)) => {
                self.sim
                    .run_interval_observed(emu, warm, t.budget, &mut Pair(&mut probe, dp))
            }
            (None, None) => self
                .sim
                .run_interval_observed(emu, warm, t.budget, &mut probe),
        }
        .map_err(|e| e.to_string())?;

        let pc = probe.pc_of(t.seq);
        let detected = match (primary, pc) {
            (true, Some(pc)) => Self::primary_fault_checked(t.program, pc),
            (false, Some(pc)) => Self::checker_fault_checked(t.program, pc),
            // The fault target never committed in the window (halt
            // landed first): nothing reached the checkers.
            (_, None) => false,
        };

        if detected {
            // Caught at check completion; rollback restores the last
            // verified checkpoint, so the architectural state is clean
            // and the cost is the latency plus the rollback penalty.
            let complete = checker_completions(&probe.commits);
            let idx = probe
                .commits
                .iter()
                .position(|&(s, _, _)| s == t.seq)
                .expect("detected fault must be in the commit stream");
            let latency = complete[idx].saturating_sub(probe.commits[idx].1);
            // A primary fault goes architectural at the faulted seq's
            // commit; a checker-side upset never touches the main core.
            let commit = Some(probe.commits[idx].1);
            Ok(TrialOutcome {
                class: t.class,
                seq: t.seq,
                bit: t.bit,
                detected: true,
                detection_latency: Some(latency),
                extra_cycles: latency + self.rollback,
                state_clean: true,
                inject_cycle: if primary {
                    probe.first_writeback.or(commit)
                } else {
                    commit
                },
                diverge_cycle: if primary { commit } else { None },
                detect_cycle: Some(complete[idx]),
            })
        } else {
            // Escaped (masked fault, or a forwarded load value): score
            // the architectural damage honestly against the clean
            // window.
            let state_clean = output_fnv(&r.output) == t.baseline.output_fnv
                && (!t.baseline.halted || r.state_digest == t.baseline.digest);
            let commit = probe.commit_cycle(t.seq);
            Ok(TrialOutcome {
                class: t.class,
                seq: t.seq,
                bit: t.bit,
                detected: false,
                detection_latency: None,
                extra_cycles: r.stats.cycles.saturating_sub(t.baseline.cycles),
                state_clean,
                inject_cycle: if primary {
                    probe.first_writeback.or(commit)
                } else {
                    commit
                },
                diverge_cycle: if primary { commit } else { None },
                detect_cycle: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_bank_paces_at_one_per_cycle_per_checker() {
        // 4 instructions all committing at cycle 10, 2 checkers: pairs
        // finish at 11, 12.
        let commits: Vec<(u64, u64, u64)> = (0..4).map(|i| (i, 10, 0)).collect();
        assert_eq!(checker_completions(&commits), vec![11, 11, 12, 12]);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // A burst far larger than the queue: instruction i cannot even
        // enqueue before instruction i - QUEUE_DEPTH has been checked.
        let n = QUEUE_DEPTH * 3;
        let commits: Vec<(u64, u64, u64)> = (0..n as u64).map(|i| (i, 5, 0)).collect();
        let complete = checker_completions(&commits);
        let last = *complete.last().unwrap();
        // 2 checkers, 1/cycle: the burst drains at ~n/2 cycles.
        assert_eq!(last, 5 + (n as u64).div_ceil(CHECKERS as u64));
        // Every enqueue respected the slot recurrence.
        for i in QUEUE_DEPTH..n {
            assert!(complete[i] > complete[i - QUEUE_DEPTH]);
        }
    }

    #[test]
    fn idle_checkers_finish_next_cycle() {
        let commits = vec![(0, 100, 0), (1, 200, 0)];
        assert_eq!(checker_completions(&commits), vec![101, 201]);
    }
}
