//! The three detailed-machine backends: the unprotected baseline core,
//! REESE P/R time redundancy, and full spatial duplication.
//!
//! [`ReeseScheme`] and [`DuplexScheme`] are thin adapters over the
//! existing simulators — they inject into the machines' compare
//! latches and read detections back, in exactly the call order the
//! campaign used before the trait existed (the equivalence oracle
//! holds the REESE path to byte-identical outcomes).
//!
//! [`BaselineScheme`] is the control arm: faults are injected
//! *architecturally* ([`reese_cpu::Emulator::inject_result_fault`])
//! into the restored functional state, the plain pipeline times the
//! window, and nothing looks for the corruption. Its coverage is 0% by
//! construction; its `state_clean` column is the silent-data-corruption
//! rate the protected schemes are measured against.

use super::observe::CommitProbe;
use super::{DetectionScheme, SchemeRun, Trial};
use crate::engine::output_fnv;
use crate::{FaultClass, TrialOutcome};
use reese_ckpt::{Checkpoint, Scheme};
use reese_core::{DuplexSim, InjectedFault, ReeseConfig, ReeseResult, ReeseSim};
use reese_isa::Program;
use reese_pipeline::{PipelineSim, SimResult};
use reese_trace::{DeepLog, Pair};

fn from_pipeline(r: SimResult) -> SchemeRun {
    SchemeRun {
        cycles: r.stats.cycles,
        committed: r.stats.committed,
        output: r.output,
        exit_code: r.exit_code,
        state_digest: r.state_digest,
    }
}

fn from_redundant(r: ReeseResult) -> SchemeRun {
    SchemeRun {
        cycles: r.cycles(),
        committed: r.committed_instructions(),
        output: r.output,
        exit_code: r.exit_code,
        state_digest: r.state_digest,
    }
}

/// Scores a redundant-machine window result exactly as the campaign
/// historically scored REESE trials.
fn score_redundant(t: &Trial<'_>, r: &ReeseResult) -> TrialOutcome {
    // Commit-granularity cleanliness: recovery must leave the
    // committed output stream identical to the clean window's. The
    // frontier digest is only comparable when the window reached
    // halt — a budget-limited stop leaves the fetch emulator a
    // recovery-dependent distance past the last commit, so there
    // the digest measures speculative fetch depth, not state.
    let state_clean = output_fnv(&r.output) == t.baseline.output_fnv
        && (!t.baseline.halted || r.state_digest == t.baseline.digest);
    let first = r.detections.first();
    TrialOutcome {
        class: t.class,
        seq: t.seq,
        bit: t.bit,
        detected: !r.detections.is_empty(),
        detection_latency: first.map(|d| d.latency()),
        extra_cycles: r.cycles().saturating_sub(t.baseline.cycles),
        state_clean,
        inject_cycle: first.map(|d| d.inject_cycle),
        // Compare-before-commit: a detected corruption is squashed in
        // the compare latch and never goes architectural; an undetected
        // latch fault on these machines never fired at all.
        diverge_cycle: None,
        detect_cycle: first.map(|d| d.detect_cycle),
    }
}

/// The fault a redundant machine latches for a trial key: primary or
/// redundant compare-latch copy, by class.
fn latch_fault(class: FaultClass, seq: u64, bit: u8) -> InjectedFault {
    if class == FaultClass::PrimaryResult {
        InjectedFault::primary(seq, bit)
    } else {
        InjectedFault::redundant(seq, bit)
    }
}

/// The unprotected out-of-order core. No redundancy, no detection:
/// the control arm.
pub(crate) struct BaselineScheme {
    sim: PipelineSim,
}

impl BaselineScheme {
    pub fn new(config: &ReeseConfig) -> BaselineScheme {
        BaselineScheme {
            sim: PipelineSim::new(config.pipeline.clone()),
        }
    }
}

impl DetectionScheme for BaselineScheme {
    fn scheme(&self) -> Scheme {
        Scheme::Baseline
    }

    fn run_limit(&self, program: &Program, max_instructions: u64) -> Result<SchemeRun, String> {
        self.sim
            .run_limit(program, max_instructions)
            .map(from_pipeline)
            .map_err(|e| e.to_string())
    }

    fn run_window(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval(ck.restore(program), ck.warm.as_ref(), budget)
            .map(from_pipeline)
            .map_err(|e| e.to_string())
    }

    fn run_window_observed(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
        probe: &mut DeepLog,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval_observed(ck.restore(program), ck.warm.as_ref(), budget, probe)
            .map(from_pipeline)
            .map_err(|e| e.to_string())
    }

    fn run_trial(&self, mut t: Trial<'_>) -> Result<TrialOutcome, String> {
        // A single-stream machine has no redundant copy: both result
        // classes degenerate to one architectural result upset.
        let mut emu = t.ck.restore(t.program);
        emu.inject_result_fault(t.seq, t.bit);
        // The probe pins the injection (first writeback of the faulted
        // seq) and divergence (its commit) cycles; nothing detects.
        let mut probe = CommitProbe::watching(t.seq);
        let warm = t.ck.warm.as_ref();
        let r = match (t.tracer.take(), t.probe.take()) {
            (Some(tr), Some(dp)) => self.sim.run_interval_observed(
                emu,
                warm,
                t.budget,
                &mut Pair(&mut probe, &mut Pair(tr, dp)),
            ),
            (Some(tr), None) => {
                self.sim
                    .run_interval_observed(emu, warm, t.budget, &mut Pair(&mut probe, tr))
            }
            (None, Some(dp)) => {
                self.sim
                    .run_interval_observed(emu, warm, t.budget, &mut Pair(&mut probe, dp))
            }
            (None, None) => self
                .sim
                .run_interval_observed(emu, warm, t.budget, &mut probe),
        }
        .map_err(|e| e.to_string())?;
        let state_clean = output_fnv(&r.output) == t.baseline.output_fnv
            && (!t.baseline.halted || r.state_digest == t.baseline.digest);
        let committed = probe.commit_cycle(t.seq);
        Ok(TrialOutcome {
            class: t.class,
            seq: t.seq,
            bit: t.bit,
            detected: false,
            detection_latency: None,
            extra_cycles: r.stats.cycles.saturating_sub(t.baseline.cycles),
            state_clean,
            inject_cycle: probe.first_writeback.or(committed),
            diverge_cycle: committed,
            detect_cycle: None,
        })
    }
}

/// The paper's mechanism: P/R time redundancy on one core.
pub(crate) struct ReeseScheme {
    sim: ReeseSim,
}

impl ReeseScheme {
    pub fn new(config: &ReeseConfig) -> ReeseScheme {
        ReeseScheme {
            sim: ReeseSim::new(config.clone()),
        }
    }
}

impl DetectionScheme for ReeseScheme {
    fn scheme(&self) -> Scheme {
        Scheme::Reese
    }

    fn run_limit(&self, program: &Program, max_instructions: u64) -> Result<SchemeRun, String> {
        self.sim
            .run_limit(program, max_instructions)
            .map(from_redundant)
            .map_err(|e| e.to_string())
    }

    fn run_window(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval(ck.restore(program), ck.warm.as_ref(), budget)
            .map(from_redundant)
            .map_err(|e| e.to_string())
    }

    fn run_window_observed(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
        probe: &mut DeepLog,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval_observed(ck.restore(program), ck.warm.as_ref(), budget, probe)
            .map(from_redundant)
            .map_err(|e| e.to_string())
    }

    fn run_trial(&self, mut t: Trial<'_>) -> Result<TrialOutcome, String> {
        let faults = [latch_fault(t.class, t.seq, t.bit)];
        let emu = t.ck.restore(t.program);
        let warm = t.ck.warm.as_ref();
        let r = match (t.tracer.take(), t.probe.take()) {
            (Some(tr), Some(dp)) => self.sim.run_interval_with_faults_observed(
                emu,
                warm,
                &faults,
                t.budget,
                &mut Pair(tr, dp),
            ),
            (Some(tr), None) => self
                .sim
                .run_interval_with_faults_observed(emu, warm, &faults, t.budget, tr),
            (None, Some(dp)) => self
                .sim
                .run_interval_with_faults_observed(emu, warm, &faults, t.budget, dp),
            (None, None) => self
                .sim
                .run_interval_with_faults(emu, warm, &faults, t.budget),
        }
        .map_err(|e| e.to_string())?;
        Ok(score_redundant(&t, &r))
    }
}

/// Full spatial duplication with compare-before-commit.
pub(crate) struct DuplexScheme {
    sim: DuplexSim,
}

impl DuplexScheme {
    pub fn new(config: &ReeseConfig) -> DuplexScheme {
        DuplexScheme {
            sim: DuplexSim::new(config.pipeline.clone()),
        }
    }
}

impl DetectionScheme for DuplexScheme {
    fn scheme(&self) -> Scheme {
        Scheme::Duplex
    }

    fn run_limit(&self, program: &Program, max_instructions: u64) -> Result<SchemeRun, String> {
        self.sim
            .run_limit(program, max_instructions)
            .map(from_redundant)
            .map_err(|e| e.to_string())
    }

    fn run_window(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval(ck.restore(program), ck.warm.as_ref(), budget)
            .map(from_redundant)
            .map_err(|e| e.to_string())
    }

    fn run_window_observed(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
        probe: &mut DeepLog,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval_observed(ck.restore(program), ck.warm.as_ref(), budget, probe)
            .map(from_redundant)
            .map_err(|e| e.to_string())
    }

    fn run_trial(&self, mut t: Trial<'_>) -> Result<TrialOutcome, String> {
        let faults = [latch_fault(t.class, t.seq, t.bit)];
        let emu = t.ck.restore(t.program);
        let warm = t.ck.warm.as_ref();
        let r = match (t.tracer.take(), t.probe.take()) {
            (Some(tr), Some(dp)) => self.sim.run_interval_with_faults_observed(
                emu,
                warm,
                &faults,
                t.budget,
                &mut Pair(tr, dp),
            ),
            (Some(tr), None) => self
                .sim
                .run_interval_with_faults_observed(emu, warm, &faults, t.budget, tr),
            (None, Some(dp)) => self
                .sim
                .run_interval_with_faults_observed(emu, warm, &faults, t.budget, dp),
            (None, None) => self
                .sim
                .run_interval_with_faults(emu, warm, &faults, t.budget),
        }
        .map_err(|e| e.to_string())?;
        Ok(score_redundant(&t, &r))
    }
}
