//! Azambuja-style software-only detection (SWIFT/EDDI lineage).
//!
//! No hardware changes at all: [`transform`] rewrites the program so
//! the unprotected baseline core detects its own faults.
//!
//! - **Instruction duplication into shadow registers.** Every integer
//!   register the program uses is assigned a *shadow* from the unused
//!   registers. Computation instructions are emitted twice — the
//!   original, then a copy writing the shadow destination with all
//!   sources remapped to shadows — so a transient in either copy makes
//!   the pair diverge.
//! - **Operand checks at synchronization points.** Before every store,
//!   conditional branch, `print`, and `halt`, each (shadowed) operand
//!   is compared against its shadow with a `bne reg, shadow, trap`.
//!   Divergence jumps to a trap handler that halts with
//!   [`SWIFT_TRAP_EXIT`] — the fault engine scores a trial *detected*
//!   iff the run exits with the sentinel.
//! - **Basic-block signatures (CFCSS-lite).** A reserved signature
//!   register is set to the block id at every block leader and checked
//!   before every control transfer, so wild branches land on a stale
//!   signature and trap.
//!
//! Floating-point computation is duplicated the same way into shadow
//! FP registers (FP-heavy kernels would otherwise run essentially
//! unprotected), with divergence caught bit-exactly at `fsd` stores
//! via `fmv.x.d` into two integer scratches — never by `feq`, whose
//! NaN semantics would false-trap on a legitimately NaN pair.
//!
//! Honest coverage gaps, kept deliberately: load *values* are not
//! duplicated (the shadow is a copy of the loaded value, so a fault in
//! the load result propagates to both copies), and a corrupted
//! register that is overwritten before its next check escapes. These
//! are the gaps the software-only rows of the cross-scheme report
//! exist to show.
//!
//! When register pressure leaves too few free registers to shadow
//! everything, the most-frequently-used registers get the available
//! shadows and the rest run unprotected (coverage degrades, semantics
//! are preserved). Programs using `jalr` or a linking `jal` are
//! rejected — the transform supports the kernel suite's direct
//! control flow, not arbitrary call graphs.

use super::observe::CommitProbe;
use super::{DetectionScheme, SchemeRun, Trial};
use crate::engine::output_fnv;
use crate::TrialOutcome;
use reese_ckpt::{Checkpoint, Scheme};
use reese_core::ReeseConfig;
use reese_isa::{
    Instr, OpKind, Opcode, Program, ProgramBuilder, Reg, DATA_BASE, NUM_FP_REGS, NUM_INT_REGS,
    TEXT_BASE,
};
use reese_pipeline::PipelineSim;
use reese_trace::{DeepLog, Pair};

/// Exit code of the software trap handler ("SWFT"). A detected fault
/// halts the machine with this sentinel; the scheme reserves it.
pub const SWIFT_TRAP_EXIT: u64 = 0x5357_4654;

/// Per-register shadow assignment.
struct Shadows {
    /// `map[r] = Some(s)`: integer register `r` is shadowed by `s`.
    map: [Option<Reg>; NUM_INT_REGS as usize],
    /// `fp[f] = Some(s)`: FP register `f` is shadowed by FP `s`.
    fp: [Option<Reg>; NUM_FP_REGS as usize],
    /// Reserved block-signature register.
    sig: Reg,
    /// Reserved scratch register (signature compares, trap exit code).
    tmp: Reg,
    /// Second integer scratch for bit-exact FP compares and FP shadow
    /// sync copies; `None` disables FP protection (the program either
    /// touches no FP state or has no register to spare).
    tmp2: Option<Reg>,
}

impl Shadows {
    fn of(&self, r: Reg) -> Option<Reg> {
        if r.is_fp() {
            self.fp[r.file_index() as usize]
        } else {
            self.map[r.raw() as usize]
        }
    }

    /// Shadow for a *source* operand: `x0` shadows itself.
    fn src(&self, r: Reg) -> Option<Reg> {
        if r.is_zero() {
            Some(Reg::ZERO)
        } else {
            self.of(r)
        }
    }
}

/// Census + assignment: shadow the most-used registers of each file
/// with that file's unused ones, reserving integer registers for the
/// signature and scratches first.
fn assign_shadows(text: &[Instr]) -> Result<Shadows, String> {
    let mut uses = [0u64; NUM_INT_REGS as usize];
    let mut fp_uses = [0u64; NUM_FP_REGS as usize];
    let mut count = |r: Reg| {
        if r.is_fp() {
            fp_uses[r.file_index() as usize] += 1;
        } else if !r.is_zero() {
            uses[r.raw() as usize] += 1;
        }
    };
    for ins in text {
        if let Some(d) = ins.dest() {
            count(d);
        }
        for s in ins.sources() {
            count(s);
        }
    }
    let mut free: Vec<Reg> = (1..NUM_INT_REGS)
        .map(Reg::x)
        .filter(|r| uses[r.raw() as usize] == 0)
        .collect();
    if free.len() < 2 {
        return Err(format!(
            "swift transform needs at least 2 free integer registers, found {}",
            free.len()
        ));
    }
    let sig = free.remove(0);
    let tmp = free.remove(0);
    // FP protection needs a second integer scratch; it is claimed only
    // when the program touches FP state at all, and yields to integer
    // shadowing under pressure (better partial int protection than one
    // more FP compare).
    let fp_used = fp_uses.iter().any(|&u| u > 0);
    let tmp2 = (fp_used && !free.is_empty()).then(|| free.remove(0));
    // Most-used registers claim the remaining shadows (ties break on
    // register index, so the assignment is deterministic).
    let mut ranked: Vec<Reg> = (1..NUM_INT_REGS)
        .map(Reg::x)
        .filter(|r| uses[r.raw() as usize] > 0)
        .collect();
    ranked.sort_by_key(|r| (std::cmp::Reverse(uses[r.raw() as usize]), r.raw()));
    let mut map = [None; NUM_INT_REGS as usize];
    for (r, s) in ranked.into_iter().zip(free) {
        map[r.raw() as usize] = Some(s);
    }
    let mut fp = [None; NUM_FP_REGS as usize];
    if tmp2.is_some() {
        let fp_free: Vec<Reg> = (0..NUM_FP_REGS)
            .map(Reg::f)
            .filter(|r| fp_uses[r.file_index() as usize] == 0)
            .collect();
        let mut fp_ranked: Vec<Reg> = (0..NUM_FP_REGS)
            .map(Reg::f)
            .filter(|r| fp_uses[r.file_index() as usize] > 0)
            .collect();
        fp_ranked.sort_by_key(|r| (std::cmp::Reverse(fp_uses[r.file_index() as usize]), r.raw()));
        for (r, s) in fp_ranked.into_iter().zip(fp_free) {
            fp[r.file_index() as usize] = Some(s);
        }
    }
    Ok(Shadows {
        map,
        fp,
        sig,
        tmp,
        tmp2,
    })
}

/// Rewrites a program with duplicated instructions, shadow registers,
/// operand checks, and basic-block signatures.
///
/// The transformed program is semantically identical to the original
/// on a fault-free machine: same output, same exit code, same memory
/// traffic addresses and values (shadow state lives only in otherwise
/// unused registers).
///
/// # Errors
///
/// Rejects programs with indirect control flow (`jalr`, linking
/// `jal`), branches outside the text segment, non-default segment
/// bases, or fewer than two free integer registers.
pub fn transform(program: &Program) -> Result<Program, String> {
    if program.text_base() != TEXT_BASE || program.data_base() != DATA_BASE {
        return Err("swift transform requires default segment bases".into());
    }
    let text = program.text();
    if text.is_empty() {
        return Err("swift transform: empty program".into());
    }
    let inst_size = program.inst_size();
    let index_of = |pc: u64| -> Result<usize, String> {
        let off = pc.wrapping_sub(TEXT_BASE);
        if !off.is_multiple_of(inst_size) || (off / inst_size) as usize >= text.len() {
            return Err(format!(
                "swift transform: control target {pc:#x} outside text"
            ));
        }
        Ok((off / inst_size) as usize)
    };
    let entry_idx = index_of(program.entry())?;

    // Control-flow survey: reject indirection, collect block leaders.
    let mut leader = vec![false; text.len()];
    leader[0] = true;
    leader[entry_idx] = true;
    for (i, ins) in text.iter().enumerate() {
        match ins.op {
            Opcode::Jalr => return Err("swift transform: jalr unsupported".into()),
            Opcode::Jal if !ins.rd.is_zero() => {
                return Err("swift transform: linking jal unsupported".into())
            }
            _ => {}
        }
        if matches!(ins.op.kind(), OpKind::Branch | OpKind::Jump) {
            let pc = TEXT_BASE + i as u64 * inst_size;
            let tgt = index_of(pc.wrapping_add_signed(ins.imm))?;
            leader[tgt] = true;
            if i + 1 < text.len() {
                leader[i + 1] = true;
            }
        }
    }

    let sh = assign_shadows(text)?;
    let mut b = ProgramBuilder::for_isa(program.isa());
    let labels: Vec<_> = (0..text.len()).map(|i| b.label(&format!("L{i}"))).collect();
    let trap = b.label("swift_trap");

    // `bne r, shadow(r), trap` for a shadowed integer operand.
    macro_rules! check {
        ($r:expr) => {
            let r: Reg = $r;
            if r.is_int() && !r.is_zero() {
                if let Some(s) = sh.of(r) {
                    b.emit_branch(Instr::branch(Opcode::Bne, r, s, 0), trap);
                }
            }
        };
    }

    // Bit-exact divergence check for a shadowed FP operand: move both
    // bit patterns into the integer scratches and compare there (`feq`
    // would false-trap on a legitimately NaN pair).
    macro_rules! fcheck {
        ($r:expr) => {
            let r: Reg = $r;
            if r.is_fp() {
                if let (Some(s), Some(t2)) = (sh.of(r), sh.tmp2) {
                    b.emit(Instr::rrr(Opcode::Fmvfi, sh.tmp, r, Reg::ZERO));
                    b.emit(Instr::rrr(Opcode::Fmvfi, t2, s, Reg::ZERO));
                    b.emit_branch(Instr::branch(Opcode::Bne, sh.tmp, t2, 0), trap);
                }
            }
        };
    }

    // Bit-exact FP shadow sync `s = d` through the integer scratch
    // (the ISA has no FP-to-FP move; an arithmetic identity like
    // `fmin d, d` would canonicalise NaN payloads).
    macro_rules! fsync {
        ($d:expr, $s:expr) => {
            let (d, s): (Reg, Reg) = ($d, $s);
            b.emit(Instr::rrr(Opcode::Fmvfi, sh.tmp, d, Reg::ZERO));
            b.emit(Instr::rrr(Opcode::Fmvif, s, sh.tmp, Reg::ZERO));
        };
    }

    // Prologue: capture the initial value of every shadowed register,
    // then enter at the original entry point.
    let start = b.here("swift_entry");
    b.entry(start);
    for r in (1..NUM_INT_REGS).map(Reg::x) {
        if let Some(s) = sh.of(r) {
            b.emit(Instr::rrr(Opcode::Add, s, r, Reg::ZERO));
        }
    }
    for r in (0..NUM_FP_REGS).map(Reg::f) {
        if let Some(s) = sh.of(r) {
            fsync!(r, s);
        }
    }
    b.emit_branch(
        Instr::rri(Opcode::Jal, Reg::ZERO, Reg::ZERO, 0),
        labels[entry_idx],
    );

    let mut block_id: i64 = 1;
    for (i, ins) in text.iter().enumerate() {
        b.bind(labels[i]);
        if leader[i] {
            block_id = i as i64 + 1;
            b.emit(Instr::rri(Opcode::Li, sh.sig, Reg::ZERO, block_id));
        }
        match ins.op.kind() {
            OpKind::Alu => {
                b.emit(*ins);
                let Some(d) = ins.dest() else { continue };
                let Some(sd) = sh.of(d) else { continue };
                let dup = (|| {
                    Some(Instr {
                        op: ins.op,
                        rd: sd,
                        rs1: if ins.op.reads_rs1() {
                            sh.src(ins.rs1)?
                        } else {
                            ins.rs1
                        },
                        rs2: if ins.op.reads_rs2() {
                            sh.src(ins.rs2)?
                        } else {
                            ins.rs2
                        },
                        imm: ins.imm,
                    })
                })();
                match dup {
                    // True duplication: the shadow recomputes the
                    // result from shadow sources (mixed-file ops like
                    // `fcvt` remap each source through its own file's
                    // shadow).
                    Some(dup) => {
                        b.emit(dup);
                    }
                    // A source is unshadowed: fall back to a sync copy
                    // so later checks of `d` cannot false-positive.
                    None if d.is_fp() => {
                        fsync!(d, sd);
                    }
                    None => {
                        b.emit(Instr::rrr(Opcode::Add, sd, d, Reg::ZERO));
                    }
                };
            }
            OpKind::Load => {
                check!(ins.rs1);
                b.emit(*ins);
                // The loaded value is not independently recomputable:
                // the shadow is a copy, so load results are a known
                // coverage gap.
                if let Some(d) = ins.dest() {
                    if let Some(sd) = sh.of(d) {
                        if d.is_fp() {
                            fsync!(d, sd);
                        } else {
                            b.emit(Instr::rrr(Opcode::Add, sd, d, Reg::ZERO));
                        }
                    }
                }
            }
            OpKind::Store => {
                check!(ins.rs1);
                if ins.op == Opcode::Fsd {
                    fcheck!(ins.rs2);
                } else {
                    check!(ins.rs2);
                }
                b.emit(*ins);
            }
            OpKind::Branch => {
                b.emit(Instr::rri(Opcode::Li, sh.tmp, Reg::ZERO, block_id));
                b.emit_branch(Instr::branch(Opcode::Bne, sh.sig, sh.tmp, 0), trap);
                check!(ins.rs1);
                check!(ins.rs2);
                let pc = TEXT_BASE + i as u64 * inst_size;
                let tgt = index_of(pc.wrapping_add_signed(ins.imm))?;
                b.emit_branch(Instr::branch(ins.op, ins.rs1, ins.rs2, 0), labels[tgt]);
            }
            OpKind::Jump => {
                b.emit(Instr::rri(Opcode::Li, sh.tmp, Reg::ZERO, block_id));
                b.emit_branch(Instr::branch(Opcode::Bne, sh.sig, sh.tmp, 0), trap);
                let pc = TEXT_BASE + i as u64 * inst_size;
                let tgt = index_of(pc.wrapping_add_signed(ins.imm))?;
                b.emit_branch(
                    Instr::rri(Opcode::Jal, Reg::ZERO, Reg::ZERO, 0),
                    labels[tgt],
                );
            }
            OpKind::System => {
                // `halt`, `ecall`, and `ebreak` can end the run, so the
                // block signature must be verified before them just as
                // before a control transfer.
                if matches!(ins.op, Opcode::Halt | Opcode::Ecall | Opcode::Ebreak) {
                    b.emit(Instr::rri(Opcode::Li, sh.tmp, Reg::ZERO, block_id));
                    b.emit_branch(Instr::branch(Opcode::Bne, sh.sig, sh.tmp, 0), trap);
                }
                if matches!(ins.op, Opcode::Halt | Opcode::Print | Opcode::Ecall) {
                    check!(ins.rs1);
                }
                if ins.op == Opcode::Ecall {
                    check!(ins.rs2);
                }
                b.emit(*ins);
            }
        }
    }

    // Trap handler: halt with the reserved sentinel.
    b.bind(trap);
    b.emit(Instr::rri(
        Opcode::Li,
        sh.tmp,
        Reg::ZERO,
        SWIFT_TRAP_EXIT as i64,
    ));
    b.emit(Instr {
        op: Opcode::Halt,
        rd: Reg::ZERO,
        rs1: sh.tmp,
        rs2: Reg::ZERO,
        imm: 0,
    });
    b.bytes(program.data());
    b.build().map_err(|e| format!("swift transform: {e}"))
}

/// The software-only backend: the plain pipeline runs the hardened
/// program; detection is the trap handler's sentinel exit.
pub(crate) struct SwiftScheme {
    sim: PipelineSim,
}

impl SwiftScheme {
    pub fn new(config: &ReeseConfig) -> SwiftScheme {
        SwiftScheme {
            sim: PipelineSim::new(config.pipeline.clone()),
        }
    }
}

impl DetectionScheme for SwiftScheme {
    fn scheme(&self) -> Scheme {
        Scheme::Swift
    }

    fn prepare(&self, program: &Program) -> Result<Program, String> {
        transform(program)
    }

    fn run_limit(&self, program: &Program, max_instructions: u64) -> Result<SchemeRun, String> {
        self.sim
            .run_limit(program, max_instructions)
            .map(|r| SchemeRun {
                cycles: r.stats.cycles,
                committed: r.stats.committed,
                output: r.output,
                exit_code: r.exit_code,
                state_digest: r.state_digest,
            })
            .map_err(|e| e.to_string())
    }

    fn run_window(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval(ck.restore(program), ck.warm.as_ref(), budget)
            .map(|r| SchemeRun {
                cycles: r.stats.cycles,
                committed: r.stats.committed,
                output: r.output,
                exit_code: r.exit_code,
                state_digest: r.state_digest,
            })
            .map_err(|e| e.to_string())
    }

    fn run_window_observed(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
        probe: &mut DeepLog,
    ) -> Result<SchemeRun, String> {
        self.sim
            .run_interval_observed(ck.restore(program), ck.warm.as_ref(), budget, probe)
            .map(|r| SchemeRun {
                cycles: r.stats.cycles,
                committed: r.stats.committed,
                output: r.output,
                exit_code: r.exit_code,
                state_digest: r.state_digest,
            })
            .map_err(|e| e.to_string())
    }

    fn run_trial(&self, mut t: Trial<'_>) -> Result<TrialOutcome, String> {
        // Single-stream scheme: both result classes are one
        // architectural upset in the (hardened) dynamic stream — the
        // duplicated copies are ordinary instructions, so the draw
        // already lands on originals and duplicates alike.
        let mut emu = t.ck.restore(t.program);
        emu.inject_result_fault(t.seq, t.bit);
        let mut probe = CommitProbe::watching(t.seq);
        let warm = t.ck.warm.as_ref();
        let r = match (t.tracer.take(), t.probe.take()) {
            (Some(tr), Some(dp)) => self.sim.run_interval_observed(
                emu,
                warm,
                t.budget,
                &mut Pair(&mut probe, &mut Pair(tr, dp)),
            ),
            (Some(tr), None) => {
                self.sim
                    .run_interval_observed(emu, warm, t.budget, &mut Pair(&mut probe, tr))
            }
            (None, Some(dp)) => {
                self.sim
                    .run_interval_observed(emu, warm, t.budget, &mut Pair(&mut probe, dp))
            }
            (None, None) => self
                .sim
                .run_interval_observed(emu, warm, t.budget, &mut probe),
        }
        .map_err(|e| e.to_string())?;

        let detected = r.exit_code == Some(SWIFT_TRAP_EXIT);
        let committed = probe.commit_cycle(t.seq);
        // Latency: from the faulted instruction's commit to the trap
        // handler's halt (the last commit of the window).
        let detect_cycle = if detected {
            probe.commits.last().map(|&(_, c, _)| c)
        } else {
            None
        };
        let detection_latency = match (detect_cycle, committed) {
            (Some(end), Some(c)) => Some(end.saturating_sub(c)),
            _ => None,
        };
        // Detection halts the run at the trap: the architectural state
        // is *not* repaired (software-only detection has no recovery
        // hardware), so cleanliness is scored honestly against the
        // clean window.
        let state_clean = output_fnv(&r.output) == t.baseline.output_fnv
            && (!t.baseline.halted || r.state_digest == t.baseline.digest);
        Ok(TrialOutcome {
            class: t.class,
            seq: t.seq,
            bit: t.bit,
            detected,
            detection_latency,
            extra_cycles: r.stats.cycles.saturating_sub(t.baseline.cycles),
            state_clean,
            inject_cycle: probe.first_writeback.or(committed),
            diverge_cycle: committed,
            detect_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::{Emulator, StopReason};

    fn exit_code(r: &reese_cpu::RunResult) -> Option<u64> {
        match r.stop {
            StopReason::Halted { exit_code } => Some(exit_code),
            _ => None,
        }
    }

    fn run_output(p: &Program) -> (Vec<i64>, Option<u64>) {
        let mut emu = Emulator::new(p);
        let r = emu.run(2_000_000).unwrap();
        let code = exit_code(&r);
        (r.output, code)
    }

    #[test]
    fn transform_preserves_semantics_on_a_branchy_program() {
        let p = reese_isa::assemble(
            "  li t0, 25\n  li t1, 0\nloop: addi t1, t1, 3\n  addi t0, t0, -1\n  bnez t0, loop\n  print t1\n  li a0, 9\n  halt\n",
        )
        .unwrap();
        let h = transform(&p).unwrap();
        assert!(h.len() > p.len());
        assert_eq!(run_output(&h), run_output(&p));
    }

    #[test]
    fn transform_preserves_memory_semantics() {
        let p = reese_isa::assemble(
            "  la t0, buf\n  li t1, 7\n  sd t1, 0(t0)\n  ld t2, 0(t0)\n  print t2\n  halt\n.data\nbuf: .space 8\n",
        )
        .unwrap();
        let h = transform(&p).unwrap();
        assert_eq!(run_output(&h), run_output(&p));
    }

    #[test]
    fn transform_rejects_indirect_control_flow() {
        let mut b = ProgramBuilder::new();
        b.emit(Instr::rri(Opcode::Jalr, Reg::RA, Reg::x(5), 0));
        let p = b.build().unwrap();
        let err = transform(&p).unwrap_err();
        assert!(err.contains("jalr"), "{err}");
    }

    #[test]
    fn corrupted_register_traps_with_the_sentinel() {
        // Flip a bit in t1 (seq 2 = `addi t1, t1, 3` dup region) and
        // the operand check before `print` must trap.
        let p = reese_isa::assemble("  li t1, 5\n  addi t1, t1, 3\n  print t1\n  halt\n").unwrap();
        let h = transform(&p).unwrap();
        // Find the dynamic index of the original `addi t1` in the
        // hardened stream by running and matching pcs.
        let mut emu = Emulator::new(&h);
        let clean = emu.run(10_000).unwrap();
        assert_eq!(clean.output, vec![8]);
        // Brute-force: injecting at each dynamic instruction, at least
        // one fault must reach the trap handler.
        let dynamic_len = clean.instructions;
        let mut trapped = 0;
        for seq in 0..dynamic_len {
            let mut emu = Emulator::new(&h);
            emu.inject_result_fault(seq, 3);
            let r = emu.run(10_000).unwrap();
            if exit_code(&r) == Some(SWIFT_TRAP_EXIT) {
                trapped += 1;
            }
        }
        assert!(trapped > 0, "no injected fault reached the trap handler");
    }

    #[test]
    fn fp_computation_is_duplicated_and_checked() {
        // Int → float conversion, FP arithmetic, an `fsd` store, and a
        // reload: the transform must both preserve semantics and give
        // FP faults a path to the trap handler.
        let p = reese_isa::assemble(
            "  la t0, buf\n  li t1, 3\n  fcvt.d.l f1, t1\n  fadd f2, f1, f1\n  fmul f2, f2, f1\n  fsd f2, 0(t0)\n  ld t2, 0(t0)\n  print t2\n  halt\n.data\nbuf: .space 8\n",
        )
        .unwrap();
        let h = transform(&p).unwrap();
        assert_eq!(run_output(&h), run_output(&p));
        let mut emu = Emulator::new(&h);
        let clean = emu.run(10_000).unwrap();
        // Brute-force every (dynamic instruction, high bit) upset: the
        // FP duplication must route at least one mantissa corruption
        // to the sentinel, and every run must still terminate.
        let mut trapped = 0;
        for seq in 0..clean.instructions {
            let mut emu = Emulator::new(&h);
            emu.inject_result_fault(seq, 51);
            let r = emu.run(10_000).unwrap();
            if exit_code(&r) == Some(SWIFT_TRAP_EXIT) {
                trapped += 1;
            }
        }
        assert!(trapped > 0, "no FP fault reached the trap handler");
    }

    #[test]
    fn rv32i_programs_transform_with_four_byte_pc_math() {
        let src = "\
  li t0, 25
  li t1, 0
loop:
  addi t1, t1, 3
  addi t0, t0, -1
  bnez t0, loop
  li a7, 1
  mv a0, t1
  ecall
  li a7, 93
  li a0, 9
  ecall
";
        let p = reese_isa::IsaId::Rv32i.frontend().assemble(src).unwrap();
        let h = transform(&p).unwrap();
        assert_eq!(h.isa(), reese_isa::IsaId::Rv32i);
        assert!(h.len() > p.len());
        assert_eq!(run_output(&h), run_output(&p));
        assert_eq!(run_output(&h), (vec![75], Some(9)));
        // Injected faults must still find the trap handler.
        let clean = Emulator::new(&h).run(10_000).unwrap();
        let mut trapped = 0;
        for seq in 0..clean.instructions {
            let mut emu = Emulator::new(&h);
            emu.inject_result_fault(seq, 3);
            let r = emu.run(10_000).unwrap();
            if exit_code(&r) == Some(SWIFT_TRAP_EXIT) {
                trapped += 1;
            }
        }
        assert!(trapped > 0, "no rv32i fault reached the trap handler");
    }

    #[test]
    fn register_pressure_degrades_to_partial_protection() {
        // A program touching most integer registers still transforms;
        // protection is partial but semantics hold.
        let mut src = String::new();
        for i in 5..28 {
            src.push_str(&format!("  li x{i}, {i}\n"));
        }
        src.push_str("  print x27\n  halt\n");
        let p = reese_isa::assemble(&src).unwrap();
        let h = transform(&p).unwrap();
        assert_eq!(run_output(&h), run_output(&p));
    }
}
