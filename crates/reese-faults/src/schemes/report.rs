//! The cross-scheme comparison report: every registered backend over
//! the same kernels, same fault draws, one ranked table.
//!
//! Fair-accounting rules (also documented in `EXPERIMENTS.md`):
//!
//! - **Time overhead** is clean-run cycles of the scheme divided by
//!   clean-run cycles of the unprotected baseline core *on the
//!   original program*. Software schemes pay their extra instructions
//!   here; off-core checkers pay their verification tail (the run is
//!   done when the last commit is checked, not when it commits).
//! - **Code overhead** is static text length of the prepared program
//!   over the original. 1.0 for every hardware scheme.
//! - **Coverage and latency** come from a [`Campaign`] with identical
//!   trial count, seed, and mix per scheme, so every scheme faces the
//!   same fault-class draws. Sequence numbers index each scheme's own
//!   prepared dynamic stream — the software scheme's duplicated
//!   instructions are genuine extra targets, not an accounting trick.

use super::build;
use crate::report::histogram_json;
use crate::{Campaign, CampaignError, FaultMix, TrialEngine};
use reese_ckpt::Scheme;
use reese_core::ReeseConfig;
use reese_isa::Program;
use reese_pipeline::PipelineSim;
use reese_stats::Histogram;
use std::fmt;

/// One (scheme, kernel) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeRow {
    /// The detection scheme measured.
    pub scheme: Scheme,
    /// Kernel name.
    pub kernel: String,
    /// Injection trials run.
    pub trials: usize,
    /// Trials detected.
    pub detected: u64,
    /// Detected fraction.
    pub coverage: f64,
    /// Mean detection latency over detected trials, in cycles.
    pub mean_latency: f64,
    /// Median detection latency, in cycles.
    pub p50_latency: u64,
    /// 90th-percentile detection latency, in cycles.
    pub p90_latency: u64,
    /// 99th-percentile detection latency, in cycles.
    pub p99_latency: u64,
    /// Full detection-latency distribution over detected trials
    /// (unit-width buckets, [`crate::report::LATENCY_HISTOGRAM_CAP`]).
    pub latency_histogram: Histogram,
    /// Clean scheme cycles / clean baseline cycles.
    pub time_overhead: f64,
    /// Prepared static instructions / original static instructions.
    pub code_overhead: f64,
}

/// Per-scheme aggregate across kernels, used for ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSummary {
    /// The scheme.
    pub scheme: Scheme,
    /// Mean coverage across kernels.
    pub coverage: f64,
    /// Mean of per-kernel mean latencies over kernels with detections.
    pub mean_latency: f64,
    /// Mean time overhead across kernels.
    pub time_overhead: f64,
    /// Mean code overhead across kernels.
    pub code_overhead: f64,
}

/// Evaluation knobs shared by every (scheme, kernel) cell.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Injection trials per cell.
    pub trials: usize,
    /// Campaign PRNG seed.
    pub seed: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Trial engine.
    pub engine: TrialEngine,
    /// Committed-instruction cap per run (`u64::MAX` = none).
    pub max_instructions: u64,
    /// Shared telemetry journal: every cell campaign appends its phase
    /// and throughput events here, bracketed by `cell_start` events
    /// naming the (scheme, kernel) pair. `None` (default) disables.
    pub telemetry_out: Option<std::path::PathBuf>,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            trials: 100,
            seed: 0xFA017,
            jobs: 1,
            engine: TrialEngine::Replay,
            max_instructions: u64::MAX,
            telemetry_out: None,
        }
    }
}

/// The full cross-scheme report.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemesReport {
    /// One row per (scheme, kernel), schemes in registry order.
    pub rows: Vec<SchemeRow>,
}

impl SchemesReport {
    /// Runs every registered backend over the given named programs.
    ///
    /// # Errors
    ///
    /// Propagates the first campaign or preparation failure.
    pub fn evaluate(
        config: &ReeseConfig,
        mix: &FaultMix,
        programs: &[(String, Program)],
        opts: &EvalOptions,
    ) -> Result<SchemesReport, CampaignError> {
        let tele = match &opts.telemetry_out {
            Some(path) => Some(std::sync::Arc::new(
                crate::telemetry::Telemetry::create(path).map_err(CampaignError::Io)?,
            )),
            None => None,
        };
        let mut rows = Vec::with_capacity(Scheme::ALL.len() * programs.len());
        for (kernel, program) in programs {
            let baseline_cycles = PipelineSim::new(config.pipeline.clone())
                .run_limit(program, opts.max_instructions)
                .map_err(|e| CampaignError::Workload(e.to_string()))?
                .stats
                .cycles;
            for scheme in Scheme::ALL {
                let backend = build(scheme, config);
                let prepared = backend.prepare(program).map_err(CampaignError::Workload)?;
                let clean = backend
                    .run_limit(&prepared, opts.max_instructions)
                    .map_err(CampaignError::Workload)?;
                let mut campaign = Campaign::new(config.clone(), *mix)
                    .scheme(scheme)
                    .trials(opts.trials)
                    .seed(opts.seed)
                    .jobs(opts.jobs)
                    .engine(opts.engine)
                    .max_instructions(opts.max_instructions);
                if let Some(t) = &tele {
                    t.emit(
                        "cell_start",
                        &[
                            ("scheme", crate::telemetry::json_str(scheme.name())),
                            ("kernel", crate::telemetry::json_str(kernel)),
                        ],
                    );
                    campaign = campaign.telemetry(std::sync::Arc::clone(t));
                }
                let report = campaign.run(program)?;
                rows.push(SchemeRow {
                    scheme,
                    kernel: kernel.clone(),
                    trials: report.trials(),
                    detected: report.detected,
                    coverage: report.coverage(),
                    mean_latency: report.mean_detection_latency(),
                    p50_latency: report.latency_percentile(1, 2).unwrap_or(0),
                    p90_latency: report.latency_percentile(9, 10).unwrap_or(0),
                    p99_latency: report.latency_percentile(99, 100).unwrap_or(0),
                    latency_histogram: report.latency_histogram(),
                    time_overhead: clean.cycles as f64 / baseline_cycles.max(1) as f64,
                    code_overhead: prepared.len() as f64 / program.len().max(1) as f64,
                });
            }
        }
        Ok(SchemesReport { rows })
    }

    /// Per-scheme aggregates, ranked best-first: coverage descending,
    /// then time overhead ascending (cheapest protection wins ties).
    pub fn ranked(&self) -> Vec<SchemeSummary> {
        let mut out: Vec<SchemeSummary> = Scheme::ALL
            .into_iter()
            .map(|scheme| {
                let rows: Vec<&SchemeRow> =
                    self.rows.iter().filter(|r| r.scheme == scheme).collect();
                let n = rows.len().max(1) as f64;
                let with_lat: Vec<&&SchemeRow> = rows.iter().filter(|r| r.detected > 0).collect();
                SchemeSummary {
                    scheme,
                    coverage: rows.iter().map(|r| r.coverage).sum::<f64>() / n,
                    mean_latency: if with_lat.is_empty() {
                        0.0
                    } else {
                        with_lat.iter().map(|r| r.mean_latency).sum::<f64>() / with_lat.len() as f64
                    },
                    time_overhead: rows.iter().map(|r| r.time_overhead).sum::<f64>() / n,
                    code_overhead: rows.iter().map(|r| r.code_overhead).sum::<f64>() / n,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.coverage
                .partial_cmp(&a.coverage)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.time_overhead
                        .partial_cmp(&b.time_overhead)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        out
    }

    /// The per-scheme summary for one scheme, if it has rows.
    pub fn summary(&self, scheme: Scheme) -> Option<SchemeSummary> {
        self.ranked().into_iter().find(|s| s.scheme == scheme)
    }

    /// CSV: one row per (scheme, kernel), deterministic field order
    /// and formatting (the CI smoke step diffs this against a golden
    /// file).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "scheme,kernel,trials,detected,coverage,mean_latency,p50_latency,p90_latency,p99_latency,time_overhead,code_overhead\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{},{},{},{},{:.4},{:.2},{},{},{},{:.4},{:.4}\n",
                r.scheme,
                r.kernel,
                r.trials,
                r.detected,
                r.coverage,
                r.mean_latency,
                r.p50_latency,
                r.p90_latency,
                r.p99_latency,
                r.time_overhead,
                r.code_overhead
            ));
        }
        s
    }

    /// JSON object with per-cell rows and the ranked summary.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"kernel\": \"{}\", \"trials\": {}, \"detected\": {}, \"coverage\": {:.6}, \"mean_latency\": {:.4}, \"p50_latency\": {}, \"p90_latency\": {}, \"p99_latency\": {}, \"latency_histogram\": {}, \"time_overhead\": {:.6}, \"code_overhead\": {:.6}}}{}\n",
                r.scheme,
                r.kernel,
                r.trials,
                r.detected,
                r.coverage,
                r.mean_latency,
                r.p50_latency,
                r.p90_latency,
                r.p99_latency,
                histogram_json(&r.latency_histogram),
                r.time_overhead,
                r.code_overhead,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"ranking\": [\n");
        let ranked = self.ranked();
        for (i, r) in ranked.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"coverage\": {:.6}, \"mean_latency\": {:.4}, \"time_overhead\": {:.6}, \"code_overhead\": {:.6}}}{}\n",
                r.scheme,
                r.coverage,
                r.mean_latency,
                r.time_overhead,
                r.code_overhead,
                if i + 1 < ranked.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl fmt::Display for SchemesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>9} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
            "scheme",
            "coverage",
            "mean lat",
            "p50 lat",
            "p90 lat",
            "p99 lat",
            "time ovh",
            "code ovh"
        )?;
        for s in self.ranked() {
            let worst = |pick: fn(&SchemeRow) -> u64| {
                self.rows
                    .iter()
                    .filter(|r| r.scheme == s.scheme)
                    .map(pick)
                    .max()
                    .unwrap_or(0)
            };
            writeln!(
                f,
                "{:<10} {:>8.1}% {:>10.1} {:>8} {:>8} {:>8} {:>9.2}x {:>9.2}x",
                s.scheme.name(),
                s.coverage * 100.0,
                s.mean_latency,
                worst(|r| r.p50_latency),
                worst(|r| r.p90_latency),
                worst(|r| r.p99_latency),
                s.time_overhead,
                s.code_overhead
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<10} {:<10} {:>7} {:>9} {:>9} {:>10} {:>10}",
            "scheme", "kernel", "trials", "detected", "coverage", "time ovh", "code ovh"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:<10} {:>7} {:>9} {:>8.1}% {:>9.2}x {:>9.2}x",
                r.scheme.name(),
                r.kernel,
                r.trials,
                r.detected,
                r.coverage * 100.0,
                r.time_overhead,
                r.code_overhead
            )?;
        }
        Ok(())
    }
}
