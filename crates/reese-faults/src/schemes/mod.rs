//! Pluggable soft-error detection backends.
//!
//! The REESE paper evaluates one mechanism; the literature it sits in
//! evaluates several. This module factors everything a detection
//! mechanism contributes to a fault-injection trial — how the program
//! is prepared, which detailed machine times it, and how one injected
//! fault is scored — into the [`DetectionScheme`] trait, so the same
//! [`crate::Campaign`] (serial parameter pre-draw, checkpoint-anchored
//! windows, memoization, resume) measures every backend.
//!
//! Five backends are registered, one per [`Scheme`]:
//!
//! - **baseline** ([`classic::BaselineScheme`]): the unprotected
//!   out-of-order core. Faults are injected *architecturally* and
//!   nothing looks for them — the silent-data-corruption floor every
//!   other scheme is judged against.
//! - **reese** ([`classic::ReeseScheme`]): the paper's P/R time
//!   redundancy, delegating to [`reese_core::ReeseSim`] exactly as the
//!   campaign historically did. Outcomes are bit-identical to the
//!   pre-trait campaign.
//! - **duplex** ([`classic::DuplexScheme`]): full spatial duplication
//!   with compare-before-commit, via [`reese_core::DuplexSim`].
//! - **meek** ([`meek::MeekScheme`]): MEEK-style heterogeneous checker
//!   cores — committed instructions stream through a few small
//!   in-order checker pipelines behind a bounded fan-out queue.
//! - **swift** ([`swift::SwiftScheme`]): Azambuja-style software-only
//!   detection — the *program* is rewritten with duplicated
//!   instructions, shadow registers, and basic-block signature checks;
//!   the unprotected baseline core runs the hardened binary.
//!
//! The trait is deliberately small: a scheme is a way to run a program
//! (clean, or over an anchored window) plus a way to score one fault.
//! Window planning, anchor capture, baseline sharing, memoization, and
//! report assembly all stay in the campaign, shared by every backend.

pub(crate) mod classic;
pub(crate) mod meek;
mod observe;
pub mod report;
pub(crate) mod swift;

use crate::engine::WindowBaseline;
use crate::{FaultClass, TrialOutcome};
use reese_ckpt::{Checkpoint, Scheme};
use reese_core::ReeseConfig;
use reese_isa::Program;
use reese_trace::{DeepLog, Tracer};

pub use report::{EvalOptions, SchemeRow, SchemesReport};
pub use swift::transform as swift_transform;

/// What a clean scheme run produced: the scheme-independent facts a
/// campaign compares trials against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeRun {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (primary-stream) instructions.
    pub committed: u64,
    /// Values printed by committed `print` instructions, in order.
    pub output: Vec<i64>,
    /// Exit code from the committed `halt`, if the run halted.
    pub exit_code: Option<u64>,
    /// Digest of the final architectural register state.
    pub state_digest: u64,
}

/// One fault-injection trial, as handed to a scheme: the anchored
/// window (checkpoint plus budget), its clean baseline, and the fault
/// key drawn by the campaign.
pub struct Trial<'a> {
    /// The (prepared) program under test.
    pub program: &'a Program,
    /// Anchor checkpoint the window restores from.
    pub ck: &'a Checkpoint,
    /// Clean reference for the same window.
    pub baseline: &'a WindowBaseline,
    /// Fault class drawn from the campaign mix.
    pub class: FaultClass,
    /// Global dynamic-instruction index the fault targets.
    pub seq: u64,
    /// Bit position (0..64) the fault flips.
    pub bit: u8,
    /// Committed-instruction budget for the window.
    pub budget: u64,
    /// Metrics tracer, when the campaign samples per-interval metrics.
    pub tracer: Option<&'a mut Tracer>,
    /// Deep forensic observer, when a single trial is being explained.
    /// Captures every pipeline event and per-cycle state of the faulty
    /// run for divergence diffing against the clean window.
    pub probe: Option<&'a mut DeepLog>,
}

/// A soft-error detection mechanism, as seen by a fault-injection
/// campaign.
///
/// Implementations must be pure given their construction config: every
/// method is `&self`, and two calls with equal arguments must produce
/// equal results (campaign memoization and the Full/Replay engine
/// oracle both depend on it).
pub trait DetectionScheme: Send + Sync {
    /// Which registered scheme this is.
    fn scheme(&self) -> Scheme;

    /// Prepares a program for this scheme. The identity for hardware
    /// schemes; software-only schemes return the hardened rewrite.
    /// Everything downstream — checkpoints, dynamic length, fault
    /// sequence numbers — is in terms of the *prepared* program.
    fn prepare(&self, program: &Program) -> Result<Program, String> {
        Ok(program.clone())
    }

    /// Clean detailed run from program start, stopping at `halt` or
    /// after `max_instructions` commits. The cycle count defines the
    /// scheme's time overhead, so schemes with off-core checking
    /// account their drain/stall time here.
    fn run_limit(&self, program: &Program, max_instructions: u64) -> Result<SchemeRun, String>;

    /// Clean run over an anchored window: restore from `ck`, run until
    /// `budget` instructions commit (or halt).
    fn run_window(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
    ) -> Result<SchemeRun, String>;

    /// [`DetectionScheme::run_window`] with a deep observer attached —
    /// the forensics capture path. Must simulate the identical machine:
    /// the returned [`SchemeRun`] must equal the unobserved one.
    fn run_window_observed(
        &self,
        program: &Program,
        ck: &Checkpoint,
        budget: u64,
        probe: &mut DeepLog,
    ) -> Result<SchemeRun, String>;

    /// Scores one injected fault over its anchored window. Only called
    /// for classes with [`FaultClass::detectable_by_design`] — the
    /// campaign scores the modeled-undetectable classes itself,
    /// identically for every scheme.
    fn run_trial(&self, trial: Trial<'_>) -> Result<TrialOutcome, String>;
}

/// Builds the registered backend for a scheme over a REESE
/// configuration (non-REESE schemes use the subset of the config that
/// applies to them: the pipeline core, the flush penalty).
pub fn build(scheme: Scheme, config: &ReeseConfig) -> Box<dyn DetectionScheme> {
    match scheme {
        Scheme::Baseline => Box::new(classic::BaselineScheme::new(config)),
        Scheme::Reese => Box::new(classic::ReeseScheme::new(config)),
        Scheme::Duplex => Box::new(classic::DuplexScheme::new(config)),
        Scheme::Meek => Box::new(meek::MeekScheme::new(config)),
        Scheme::Swift => Box::new(swift::SwiftScheme::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_scheme_builds() {
        let config = ReeseConfig::starting();
        for s in Scheme::ALL {
            let b = build(s, &config);
            assert_eq!(b.scheme(), s);
        }
    }

    #[test]
    fn prepare_is_identity_for_hardware_schemes() {
        let config = ReeseConfig::starting();
        let prog = reese_isa::assemble("  li t0, 3\n  print t0\n  halt\n").unwrap();
        for s in [
            Scheme::Baseline,
            Scheme::Reese,
            Scheme::Duplex,
            Scheme::Meek,
        ] {
            let prepared = build(s, &config).prepare(&prog).unwrap();
            assert_eq!(prepared.text(), prog.text(), "{s} must not rewrite code");
        }
        let hardened = build(Scheme::Swift, &config).prepare(&prog).unwrap();
        assert!(
            hardened.len() > prog.len(),
            "swift must duplicate instructions"
        );
    }
}
