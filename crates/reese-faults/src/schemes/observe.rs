//! Trace probes the off-core schemes attach to the baseline pipeline.

use reese_trace::{CycleState, Observer, Stage, TraceEvent};

/// Records the commit stream of a window: `(seq, commit cycle, pc)`
/// per committed instruction, in commit order. The MEEK checker model
/// replays this stream through its checker cores; the SWIFT scorer
/// uses it to anchor detection latency at the faulted instruction's
/// commit.
///
/// A probe built with [`CommitProbe::watching`] additionally latches
/// the first writeback cycle of one dynamic instruction — the cycle an
/// architecturally injected fault's corrupt value enters the machine.
#[derive(Debug, Default)]
pub(crate) struct CommitProbe {
    pub commits: Vec<(u64, u64, u64)>,
    watch_seq: Option<u64>,
    pub first_writeback: Option<u64>,
}

impl CommitProbe {
    pub fn new() -> CommitProbe {
        CommitProbe::default()
    }

    /// A probe that also latches the first writeback of `seq`.
    pub fn watching(seq: u64) -> CommitProbe {
        CommitProbe {
            watch_seq: Some(seq),
            ..CommitProbe::default()
        }
    }

    /// The commit cycle of a dynamic instruction, if it committed in
    /// the observed window.
    pub fn commit_cycle(&self, seq: u64) -> Option<u64> {
        self.commits
            .iter()
            .find(|&&(s, _, _)| s == seq)
            .map(|&(_, cycle, _)| cycle)
    }

    /// The pc of a dynamic instruction, if it committed in the window.
    pub fn pc_of(&self, seq: u64) -> Option<u64> {
        self.commits
            .iter()
            .find(|&&(s, _, _)| s == seq)
            .map(|&(_, _, pc)| pc)
    }
}

impl Observer for CommitProbe {
    const ENABLED: bool = true;

    fn event(&mut self, ev: TraceEvent) {
        if ev.stage == Stage::Commit {
            self.commits.push((ev.seq, ev.cycle, ev.pc));
        } else if ev.stage == Stage::Writeback
            && self.watch_seq == Some(ev.seq)
            && self.first_writeback.is_none()
        {
            self.first_writeback = Some(ev.cycle);
        }
    }

    fn cycle(&mut self, _cycle: u64, _state: &CycleState) {}

    fn idle_skip(&mut self, _from: u64, _to: u64, _state: &CycleState) {}
}
