//! Structured campaign telemetry: a JSONL journal of phase timings,
//! worker throughput, and cache effectiveness, written as the campaign
//! runs (`--telemetry-out` on the CLI).
//!
//! The journal answers "where did the time go" for a campaign without
//! touching its outcomes: every event is emitted *around* the
//! simulation phases, never from inside a trial's scoring path, so a
//! campaign with a journal attached is bit-identical to one without.
//! Events carry wall-clock durations and are therefore **not**
//! deterministic — nothing in CI byte-compares a journal; consumers
//! read it with any JSONL tool.
//!
//! Event stream, in emission order:
//!
//! 1. `campaign_start` — scheme, engine, jobs, trials, seed.
//! 2. `reference_done` — checkpoint sweep cost: resident checkpoints,
//!    sweep stride, dynamic length, clean cycles.
//! 3. `resume_loaded` — recorded trials reused from a resume log.
//! 4. `plan` — todo count, distinct simulated keys, and the
//!    memoization hit rate (`1 - keys/todo`).
//! 5. `anchors_derived` — anchor checkpoints restored/derived, with
//!    the phase's wall time: the checkpoint-restore cost.
//! 6. `baselines_cached` — clean windows computed for the baseline
//!    cache, with the phase's wall time.
//! 7. `progress` (repeated) — trials done / total, trials per second,
//!    and an ETA, sampled from the worker fan-out.
//! 8. `trials_done` — end-to-end fan-out stats: items, wall ms, items
//!    per second, per-worker item/steal counts.
//! 9. `campaign_done` — trials, detected, coverage, total wall ms.

use reese_stats::ParallelStats;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A campaign telemetry journal. Cheap to share across worker threads:
/// the writer is behind a mutex, progress counting is atomic.
#[derive(Debug)]
pub struct Telemetry {
    writer: Mutex<BufWriter<File>>,
    start: Instant,
    done: AtomicU64,
    last_report: AtomicU64,
}

impl Telemetry {
    /// Creates (truncating) the journal and writes its header line.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn create(path: &Path) -> Result<Telemetry, String> {
        let file = File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let tele = Telemetry {
            writer: Mutex::new(BufWriter::new(file)),
            start: Instant::now(),
            done: AtomicU64::new(0),
            last_report: AtomicU64::new(0),
        };
        tele.emit("journal_start", &[("reese_telemetry", "1".into())]);
        Ok(tele)
    }

    /// Milliseconds since the journal was created.
    fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Writes one event line: `{"event": "...", "elapsed_ms": N, ...}`.
    /// `fields` values must already be rendered as JSON (callers quote
    /// their own strings). Write failures are swallowed: telemetry must
    /// never fail a campaign.
    pub fn emit(&self, event: &str, fields: &[(&str, String)]) {
        let mut line = format!(
            "{{\"event\": \"{event}\", \"elapsed_ms\": {}",
            self.elapsed_ms()
        );
        for (k, v) in fields {
            line.push_str(&format!(", \"{k}\": {v}"));
        }
        line.push_str("}\n");
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }
    }

    /// Rewinds the progress counters so a shared journal can cover
    /// several sequential campaigns (the `schemes` ranking runs one per
    /// (scheme, kernel) cell) with per-campaign done/total counts.
    pub fn reset_progress(&self) {
        self.done.store(0, Ordering::Relaxed);
        self.last_report.store(0, Ordering::Relaxed);
    }

    /// Records one completed trial from a worker and emits a `progress`
    /// event at most once per `stride` completions: done/total, the
    /// running trials-per-second rate, and a naive ETA.
    pub fn progress(&self, total: u64, stride: u64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let stride = stride.max(1);
        // Claim the report slot atomically so exactly one worker emits
        // per stride crossing.
        let slot = done / stride;
        if slot == 0 || self.last_report.fetch_max(slot, Ordering::Relaxed) >= slot {
            return;
        }
        let secs = self.start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta_ms = if rate > 0.0 {
            ((total.saturating_sub(done)) as f64 / rate * 1000.0) as u64
        } else {
            0
        };
        self.emit(
            "progress",
            &[
                ("done", done.to_string()),
                ("total", total.to_string()),
                ("trials_per_sec", format!("{rate:.2}")),
                ("eta_ms", eta_ms.to_string()),
            ],
        );
    }

    /// Emits the end-of-fan-out `trials_done` event from the map's
    /// [`ParallelStats`]: total items, wall time, throughput, and the
    /// per-worker item/steal split.
    pub fn trials_done(&self, stats: &ParallelStats) {
        let workers: Vec<String> = stats
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"worker\": {}, \"items\": {}, \"steals\": {}, \"busy_ms\": {}}}",
                    w.worker,
                    w.items,
                    w.steals,
                    w.busy.as_millis()
                )
            })
            .collect();
        self.emit(
            "trials_done",
            &[
                ("items", stats.items().to_string()),
                ("wall_ms", (stats.wall.as_millis() as u64).to_string()),
                ("items_per_sec", format!("{:.2}", stats.items_per_sec())),
                ("jobs", stats.jobs.to_string()),
                ("steals", stats.steals().to_string()),
                ("workers", format!("[{}]", workers.join(", "))),
            ],
        );
    }
}

/// Renders a string as a JSON string literal for [`Telemetry::emit`]
/// fields (the journal's strings are all identifier-like; escaping
/// covers the two characters that could break a line).
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_lines_are_json_objects() {
        let dir = std::env::temp_dir().join(format!("reese-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let tele = Telemetry::create(&path).unwrap();
        tele.emit(
            "campaign_start",
            &[("scheme", json_str("reese")), ("jobs", "4".into())],
        );
        for _ in 0..10 {
            tele.progress(10, 2);
        }
        drop(tele);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "header + start + progress: {text}");
        assert!(lines[0].contains("\"reese_telemetry\": 1"));
        assert!(lines[1].contains("\"event\": \"campaign_start\""));
        assert!(lines[1].contains("\"scheme\": \"reese\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"elapsed_ms\": "), "{line}");
        }
        let progress = lines
            .iter()
            .filter(|l| l.contains("\"event\": \"progress\""))
            .count();
        assert!(progress >= 1, "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_str_escapes_quotes() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
    }
}
