//! Single-trial fault forensics: re-run one logged trial under a deep
//! observer and explain, cycle by cycle, how the fault propagated.
//!
//! A campaign log records *that* a trial was detected (or escaped);
//! this module answers *why*. [`explain_trial`] takes a campaign
//! outcomes log, addresses one trial (by stable id or by index),
//! replays exactly that trial's checkpoint-anchored window twice —
//! clean and with the fault injected — each under a
//! [`reese_trace::DeepLog`], and diffs the two runs to reconstruct the
//! fault-propagation timeline:
//!
//! - the injection point (cycle, corrupted structure, bit),
//! - the first divergent pipeline event and the first divergent
//!   per-cycle machine state (which queue or counter moved first),
//! - the faulted instruction's full lifecycle through the pipeline
//!   (dispatch → issue → writeback → migrate → compare → commit,
//!   including post-flush re-execution),
//! - and the detecting comparison — or the silent-corruption escape.
//!
//! Everything is derived from the deterministic simulators, so the
//! explanation is **byte-identical** for a given log line no matter
//! which engine or worker count produced the log, and no matter how
//! often it is re-run (the CI forensics smoke diffs it against a
//! golden file). The re-run is also an oracle: if the recomputed
//! outcome disagrees with the logged line, `explain` fails loudly
//! rather than narrating a fiction.

use crate::engine::{boundary_count, output_fnv, plan_window};
use crate::schemes::{self, Trial};
use crate::stream::{fnv1a64, read_log_raw, trial_id};
use crate::{CampaignError, FaultClass, TrialOutcome, WindowBaseline};
use reese_ckpt::{warm_checkpoint_at, Scheme};
use reese_core::ReeseConfig;
use reese_cpu::Emulator;
use reese_isa::Program;
use reese_trace::{CycleState, DeepLog, Stage, Stream, TraceEvent, TraceRing};
use std::fmt::Write as _;
use std::path::Path;

/// How `reese explain` addresses a trial in a campaign log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialRef {
    /// By trial index (the `trial` field of the log line).
    Index(usize),
    /// By stable id (`id` field: [`trial_id`] of seed and index).
    Id(u64),
}

/// The reconstructed story of one fault-injection trial.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Trial index in the campaign.
    pub trial: usize,
    /// Stable trial id ([`trial_id`] over the log's seed).
    pub id: u64,
    /// The (verified) outcome of the trial.
    pub outcome: TrialOutcome,
    /// Human-readable propagation timeline. Byte-deterministic.
    pub text: String,
    /// The faulty run's full event stream plus synthesized forensic
    /// markers ([`Stage::Inject`] / [`Stage::Diverge`] /
    /// [`Stage::Detect`]), loadable in Perfetto via
    /// [`Explanation::to_chrome_json`].
    pub trace: TraceRing,
}

impl Explanation {
    /// The trace as Chrome trace-event JSON (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        self.trace.to_chrome_json()
    }
}

/// The structure a fault class corrupts, for the narrative.
fn struck_structure(class: FaultClass) -> &'static str {
    match class {
        FaultClass::PrimaryResult => "P-stream result latch",
        FaultClass::RedundantResult => "R-stream compare latch",
        FaultClass::PostCompare => "post-compare commit path",
        FaultClass::CacheCell => "cache/memory cell",
        FaultClass::PipelineControl => "pipeline control logic",
    }
}

/// Names the [`CycleState`] fields that differ between two snapshots,
/// in declaration order — the "which structure moved first" diff.
fn state_diff(faulty: &CycleState, clean: &CycleState) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = |name: &str, a: u64, b: u64| {
        if a != b {
            out.push(format!("{name} {b} -> {a}"));
        }
    };
    field("committed", faulty.committed, clean.committed);
    field("issued", faulty.issued, clean.issued);
    field("r_issued", faulty.r_issued, clean.r_issued);
    field("r_missed", faulty.r_missed, clean.r_missed);
    field(
        "ruu_stalls",
        faulty.dispatch_stall_ruu,
        clean.dispatch_stall_ruu,
    );
    field(
        "lsq_stalls",
        faulty.dispatch_stall_lsq,
        clean.dispatch_stall_lsq,
    );
    field("fetch_empty", faulty.fetch_empty, clean.fetch_empty);
    field("sched_ops", faulty.sched_ops, clean.sched_ops);
    field("ruu_occ", faulty.ruu_occ as u64, clean.ruu_occ as u64);
    field("lsq_occ", faulty.lsq_occ as u64, clean.lsq_occ as u64);
    field(
        "rqueue_occ",
        faulty.rqueue_occ as u64,
        clean.rqueue_occ as u64,
    );
    field(
        "fetchq_occ",
        faulty.fetchq_occ as u64,
        clean.fetchq_occ as u64,
    );
    out
}

fn fmt_event(e: &TraceEvent) -> String {
    format!(
        "cycle {:>6}  {}  {:<9} seq {} pc {:#x}",
        e.cycle,
        e.stream.tag(),
        e.stage.name(),
        e.seq,
        e.pc
    )
}

/// Re-run equality against a possibly older log line: the core fields
/// must match exactly; cycle fields recorded as absent (pre-forensics
/// logs) are not held against the re-run.
fn matches_recorded(rerun: &TrialOutcome, rec: &TrialOutcome) -> bool {
    let lenient = |a: Option<u64>, b: Option<u64>| b.is_none() || a == b;
    rerun.class == rec.class
        && rerun.seq == rec.seq
        && rerun.bit == rec.bit
        && rerun.detected == rec.detected
        && rerun.detection_latency == rec.detection_latency
        && rerun.extra_cycles == rec.extra_cycles
        && rerun.state_clean == rec.state_clean
        && lenient(rerun.inject_cycle, rec.inject_cycle)
        && lenient(rerun.diverge_cycle, rec.diverge_cycle)
        && lenient(rerun.detect_cycle, rec.detect_cycle)
}

/// Explains one trial of a recorded campaign: re-runs its anchored
/// window clean and faulted under deep observers and reconstructs the
/// propagation timeline. `config`, `scheme`, and `program` must be the
/// ones the campaign ran with — the log's configuration fingerprint
/// and dynamic length are checked before anything simulates.
///
/// # Errors
///
/// [`CampaignError::Resume`] if the trial is not in the log, the
/// config/scheme/program disagree with the log header, or the re-run
/// fails to reproduce the recorded outcome; [`CampaignError::Trial`]
/// if the simulation itself fails; [`CampaignError::Io`] on file
/// errors.
pub fn explain_trial(
    config: &ReeseConfig,
    scheme: Scheme,
    program: &Program,
    log_path: &Path,
    which: TrialRef,
) -> Result<Explanation, CampaignError> {
    let (header, recorded) = read_log_raw(log_path)?;

    // The header's config fingerprint is salted exactly as the
    // campaign salts it (see `Campaign::log_header`).
    let config_fnv = match scheme {
        Scheme::Reese => fnv1a64(format!("{config:?}").as_bytes()),
        s => fnv1a64(format!("{}:{config:?}", s.name()).as_bytes()),
    };
    if config_fnv != header.config_fnv {
        return Err(CampaignError::Resume(format!(
            "config_fnv {config_fnv} for scheme `{scheme}` does not match the \
             log's {} — wrong --scheme or configuration",
            header.config_fnv
        )));
    }

    let (trial, rec) = match which {
        TrialRef::Index(i) => {
            let o = recorded.get(&i).ok_or_else(|| {
                CampaignError::Resume(format!("trial {i} is not recorded in the log"))
            })?;
            (i, *o)
        }
        TrialRef::Id(id) => recorded
            .iter()
            .find(|&(&t, _)| trial_id(header.seed, t) == id)
            .map(|(&t, o)| (t, *o))
            .ok_or_else(|| CampaignError::Resume(format!("no recorded trial carries id {id}")))?,
    };
    let id = trial_id(header.seed, trial);

    let backend = schemes::build(scheme, config);
    let prepared = backend.prepare(program).map_err(CampaignError::Workload)?;
    let program = &prepared;

    // Cheap program check before any detailed simulation: the prepared
    // program's dynamic length must be the one the log recorded.
    let mut emu = Emulator::new(program);
    let r = emu
        .run(header.max_instructions)
        .map_err(|e| CampaignError::Workload(e.to_string()))?;
    if r.instructions != header.dynamic_len {
        return Err(CampaignError::Resume(format!(
            "program executes {} instructions but the log records {} — \
             wrong kernel or --max-instructions",
            r.instructions, header.dynamic_len
        )));
    }

    let mut text = String::new();
    let _ = writeln!(text, "fault forensics: trial {trial} (id {id})");
    let _ = writeln!(text, "scheme: {}", scheme.name());
    let _ = writeln!(
        text,
        "fault: class {} seq {} bit {} ({})",
        rec.class,
        rec.seq,
        rec.bit,
        struck_structure(rec.class)
    );

    if !rec.class.detectable_by_design() {
        // Modeled-undetectable classes never simulate: the campaign
        // scores them analytically, identically for every scheme.
        let _ = writeln!(
            text,
            "verdict: modeled-undetectable ({} faults sit outside every \
             registered scheme's observation window)",
            rec.class
        );
        let _ = writeln!(
            text,
            "nothing was simulated: the campaign scores this class \
             analytically as undetected with clean architectural state \
             (paper section 4.2); there is no propagation to trace."
        );
        return Ok(Explanation {
            trial,
            id,
            outcome: rec,
            text,
            trace: TraceRing::new(1),
        });
    }

    // Rebuild exactly the campaign's window for this fault and anchor
    // it the oracle way: a functional fast-forward to the boundary
    // (bit-equal to the campaign's sweep-derived checkpoints).
    let boundaries = boundary_count(header.dynamic_len, header.ckpt_every);
    let window = plan_window(
        rec.seq,
        header.ckpt_every,
        boundaries,
        header.max_instructions,
        header.dynamic_len,
    );
    let anchor = window.anchor(header.ckpt_every);
    let ck = warm_checkpoint_at(program, anchor, &config.pipeline)
        .map_err(|e| CampaignError::Workload(e.to_string()))?;

    let mut clean_log = DeepLog::new();
    let clean_run = backend
        .run_window_observed(program, &ck, window.budget, &mut clean_log)
        .map_err(|m| CampaignError::Trial { trial, message: m })?;
    let baseline = WindowBaseline {
        cycles: clean_run.cycles,
        digest: clean_run.state_digest,
        output_fnv: output_fnv(&clean_run.output),
        halted: clean_run.exit_code.is_some(),
    };

    let mut fault_log = DeepLog::new();
    let rerun = backend
        .run_trial(Trial {
            program,
            ck: &ck,
            baseline: &baseline,
            class: rec.class,
            seq: rec.seq,
            bit: rec.bit,
            budget: window.budget,
            tracer: None,
            probe: Some(&mut fault_log),
        })
        .map_err(|m| CampaignError::Trial { trial, message: m })?;
    if !matches_recorded(&rerun, &rec) {
        return Err(CampaignError::Resume(format!(
            "re-run does not reproduce the logged outcome (logged \
             detected={} latency={:?}, re-run detected={} latency={:?}) — \
             the log was produced by a different program or configuration",
            rec.detected, rec.detection_latency, rerun.detected, rerun.detection_latency
        )));
    }

    let _ = writeln!(
        text,
        "window: anchor @{anchor} (boundary {}), budget {} instructions",
        window.anchor_idx, window.budget
    );
    let _ = writeln!(
        text,
        "window cycles: clean {} faulty {} (+{})",
        baseline.cycles,
        baseline.cycles + rerun.extra_cycles,
        rerun.extra_cycles
    );

    // Injection point. Window-relative cycles: the restored machine
    // counts from 0 at the anchor.
    match rerun.inject_cycle {
        Some(c) => {
            let _ = writeln!(
                text,
                "injection: cycle {c}, bit {} of the {}",
                rec.bit,
                struck_structure(rec.class)
            );
        }
        None => {
            let _ = writeln!(
                text,
                "injection: never fired inside the window (seq {} did not \
                 reach the faulted structure before the window ended)",
                rec.seq
            );
        }
    }

    // First divergent pipeline event.
    let ev_div = fault_log.first_event_divergence(&clean_log);
    match ev_div {
        Some(i) => {
            let _ = writeln!(text, "first divergent event (index {i}):");
            match clean_log.events.get(i) {
                Some(e) => {
                    let _ = writeln!(text, "  clean : {}", fmt_event(e));
                }
                None => {
                    let _ = writeln!(text, "  clean : (stream ended)");
                }
            }
            match fault_log.events.get(i) {
                Some(e) => {
                    let _ = writeln!(text, "  faulty: {}", fmt_event(e));
                }
                None => {
                    let _ = writeln!(text, "  faulty: (stream ended)");
                }
            }
        }
        None => {
            let _ = writeln!(
                text,
                "event streams identical: the corrupt value never changed \
                 any pipeline scheduling decision"
            );
        }
    }

    // First divergent machine state: which structure moved first.
    if let Some(((cycle, faulty_state), clean_state)) = fault_log.first_state_divergence(&clean_log)
    {
        match clean_state {
            Some((_, cs)) => {
                let diffs = state_diff(faulty_state, cs);
                let _ = writeln!(
                    text,
                    "first divergent machine state: cycle {cycle} ({})",
                    diffs.join(", ")
                );
            }
            None => {
                let _ = writeln!(
                    text,
                    "first divergent machine state: cycle {cycle} (faulty run \
                     outlived the clean window)"
                );
            }
        }
    } else {
        let _ = writeln!(
            text,
            "per-cycle machine state identical to the clean window"
        );
    }

    // The faulted instruction's lifecycle (including any post-flush
    // re-execution) — the propagation hops through the machine.
    let hops: Vec<&TraceEvent> = fault_log
        .events
        .iter()
        .filter(|e| e.seq == rec.seq)
        .collect();
    let _ = writeln!(
        text,
        "faulted instruction lifecycle ({} events):",
        hops.len()
    );
    const MAX_HOPS: usize = 48;
    for e in hops.iter().take(MAX_HOPS) {
        let _ = writeln!(text, "  {}", fmt_event(e));
    }
    if hops.len() > MAX_HOPS {
        let _ = writeln!(text, "  ... {} more", hops.len() - MAX_HOPS);
    }

    // Verdict.
    if rerun.detected {
        let _ = writeln!(
            text,
            "verdict: DETECTED at cycle {} (latency {} cycles from \
             injection), recovery cost {} cycles, architectural state {}",
            rerun.detect_cycle.unwrap_or(0),
            rerun.detection_latency.unwrap_or(0),
            rerun.extra_cycles,
            if rerun.state_clean {
                "clean"
            } else {
                "corrupt"
            }
        );
    } else if rerun.state_clean {
        let _ = writeln!(
            text,
            "verdict: UNDETECTED but masked — the corrupt value never \
             reached committed output or final state"
        );
    } else {
        let _ = writeln!(
            text,
            "verdict: SILENT CORRUPTION — undetected and the committed \
             output or final architectural state differs from the clean run"
        );
    }

    // Perfetto trace: the faulty run's events plus forensic markers.
    let pc_of_seq = hops.first().map_or(0, |e| e.pc);
    let mut trace = TraceRing::new(fault_log.events.len() + 3);
    for e in &fault_log.events {
        trace.push(*e);
    }
    if let Some(c) = rerun.inject_cycle {
        trace.push(TraceEvent {
            cycle: c,
            seq: rec.seq,
            pc: pc_of_seq,
            stage: Stage::Inject,
            stream: Stream::Primary,
        });
    }
    if let Some(i) = ev_div {
        if let Some(e) = fault_log.events.get(i).or_else(|| clean_log.events.get(i)) {
            trace.push(TraceEvent {
                cycle: e.cycle,
                seq: e.seq,
                pc: e.pc,
                stage: Stage::Diverge,
                stream: e.stream,
            });
        }
    }
    if let Some(c) = rerun.detect_cycle {
        trace.push(TraceEvent {
            cycle: c,
            seq: rec.seq,
            pc: pc_of_seq,
            stage: Stage::Detect,
            stream: Stream::Primary,
        });
    }

    Ok(Explanation {
        trial,
        id,
        outcome: rerun,
        text,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Campaign, FaultMix};
    use reese_isa::assemble;

    fn loop_prog() -> Program {
        assemble("  li t0, 60\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap()
    }

    fn logged_campaign(dir: &std::path::Path, mix: FaultMix) -> std::path::PathBuf {
        let log = dir.join("campaign.jsonl");
        Campaign::new(ReeseConfig::starting(), mix)
            .trials(12)
            .seed(9)
            .outcomes_jsonl(&log)
            .run(&loop_prog())
            .unwrap();
        log
    }

    #[test]
    fn explains_a_detected_trial_with_markers() {
        let dir = std::env::temp_dir().join(format!("reese-forensics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = logged_campaign(&dir, FaultMix::result_errors_only());
        let config = ReeseConfig::starting();
        let ex = explain_trial(
            &config,
            Scheme::Reese,
            &loop_prog(),
            &log,
            TrialRef::Index(0),
        )
        .unwrap();
        assert!(ex.outcome.detected);
        assert!(ex.text.contains("verdict: DETECTED"), "{}", ex.text);
        assert!(ex.text.contains("injection: cycle"), "{}", ex.text);
        assert!(ex.text.contains("first divergent event"), "{}", ex.text);
        let json = ex.to_chrome_json();
        assert!(json.contains("\"inject"), "{json}");
        assert!(json.contains("\"detect"), "{json}");
        // Addressing the same trial by its stable id is identical.
        let by_id = explain_trial(
            &config,
            Scheme::Reese,
            &loop_prog(),
            &log,
            TrialRef::Id(ex.id),
        )
        .unwrap();
        assert_eq!(by_id.text, ex.text);
        assert_eq!(by_id.to_chrome_json(), json);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explains_an_analytic_class_without_simulating() {
        let dir =
            std::env::temp_dir().join(format!("reese-forensics-mixed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = logged_campaign(&dir, FaultMix::broad());
        let config = ReeseConfig::starting();
        let (header, recorded) = read_log_raw(&log).unwrap();
        let (&t, _) = recorded
            .iter()
            .find(|(_, o)| !o.class.detectable_by_design())
            .expect("broad mix draws an analytic class in 12 trials");
        let ex = explain_trial(
            &config,
            Scheme::Reese,
            &loop_prog(),
            &log,
            TrialRef::Index(t),
        )
        .unwrap();
        assert!(ex.text.contains("modeled-undetectable"), "{}", ex.text);
        assert!(ex.trace.is_empty());
        assert_eq!(ex.id, trial_id(header.seed, t));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_scheme_is_rejected_before_simulation() {
        let dir =
            std::env::temp_dir().join(format!("reese-forensics-scheme-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = logged_campaign(&dir, FaultMix::result_errors_only());
        let err = explain_trial(
            &ReeseConfig::starting(),
            Scheme::Duplex,
            &loop_prog(),
            &log,
            TrialRef::Index(0),
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::Resume(_)), "{err}");
        assert!(err.to_string().contains("config_fnv"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_trial_and_id_are_rejected() {
        let dir = std::env::temp_dir().join(format!("reese-forensics-miss-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = logged_campaign(&dir, FaultMix::result_errors_only());
        let config = ReeseConfig::starting();
        let err = explain_trial(
            &config,
            Scheme::Reese,
            &loop_prog(),
            &log,
            TrialRef::Index(99),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not recorded"), "{err}");
        let err = explain_trial(
            &config,
            Scheme::Reese,
            &loop_prog(),
            &log,
            TrialRef::Id(0xBAD),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no recorded trial"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_program_is_rejected_by_dynamic_length() {
        let dir = std::env::temp_dir().join(format!("reese-forensics-prog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = logged_campaign(&dir, FaultMix::result_errors_only());
        let other =
            assemble("  li t0, 10\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap();
        let err = explain_trial(
            &ReeseConfig::starting(),
            Scheme::Reese,
            &other,
            &log,
            TrialRef::Index(0),
        )
        .unwrap_err();
        assert!(err.to_string().contains("instructions"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
