//! Soft-error fault classes and their coverage-by-design.

use std::fmt;

/// Where a transient fault strikes, classified by REESE's coverage
/// statement (paper §4.2): "This implementation detects soft errors
/// that affect instruction results… REESE does not detect soft errors
/// that do not affect the intermediate or final results of an individual
/// instruction, such as pipeline control or cache errors. Any error that
/// might occur after the results are compared would also not be
/// detected."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A bit flip in a primary-stream result latch before comparison —
    /// REESE's bread and butter, always detectable.
    PrimaryResult,
    /// A bit flip during the redundant recomputation — also caught by
    /// the comparison (the mismatch is symmetric).
    RedundantResult,
    /// An error striking after the P/R comparison (commit path,
    /// architectural register file) — undetectable by REESE, by design.
    PostCompare,
    /// A memory or cache cell upset — outside REESE's domain; the paper
    /// assumes ECC protects storage.
    CacheCell,
    /// A pipeline-control upset that does not change any instruction's
    /// result — invisible to result comparison.
    PipelineControl,
}

impl FaultClass {
    /// All classes, in display order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::PrimaryResult,
        FaultClass::RedundantResult,
        FaultClass::PostCompare,
        FaultClass::CacheCell,
        FaultClass::PipelineControl,
    ];

    /// Whether REESE's result comparison can ever observe this class.
    pub const fn detectable_by_design(self) -> bool {
        matches!(
            self,
            FaultClass::PrimaryResult | FaultClass::RedundantResult
        )
    }

    /// The display name as a static string (what [`fmt::Display`]
    /// prints): `"p-result"`, `"r-result"`, `"post-compare"`,
    /// `"cache-cell"`, `"pipeline-control"`.
    pub const fn name(self) -> &'static str {
        match self {
            FaultClass::PrimaryResult => "p-result",
            FaultClass::RedundantResult => "r-result",
            FaultClass::PostCompare => "post-compare",
            FaultClass::CacheCell => "cache-cell",
            FaultClass::PipelineControl => "pipeline-control",
        }
    }

    /// Parses a display name (`"p-result"`, …) back to the class, the
    /// inverse of [`fmt::Display`]. Used by campaign-log resume.
    pub fn from_name(name: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Relative frequencies of each fault class in a campaign.
///
/// # Example
///
/// ```
/// use reese_faults::{FaultClass, FaultMix};
///
/// let mix = FaultMix::result_errors_only();
/// assert_eq!(mix.weight(FaultClass::CacheCell), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMix {
    weights: [u32; 5],
}

impl FaultMix {
    /// A mix from per-class weights (indexed as [`FaultClass::ALL`]).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn new(weights: [u32; 5]) -> FaultMix {
        assert!(
            weights.iter().any(|&w| w > 0),
            "fault mix needs at least one class"
        );
        FaultMix { weights }
    }

    /// Only result-latch errors (the classes REESE is built to catch),
    /// split evenly between P and R.
    pub fn result_errors_only() -> FaultMix {
        FaultMix::new([1, 1, 0, 0, 0])
    }

    /// A broad mix exercising covered and uncovered classes alike.
    pub fn broad() -> FaultMix {
        FaultMix::new([4, 4, 1, 2, 1])
    }

    /// The weight of one class.
    pub fn weight(&self, class: FaultClass) -> u32 {
        let idx = FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        self.weights[idx]
    }

    /// Samples a class using `pick` uniform in `[0, 2^64)` (a raw RNG
    /// draw). The draw is reduced to `[0, total_weight)` with Lemire's
    /// widening multiply-shift rather than `pick % total`: the modulo
    /// over-represents the low residues whenever `2^64` is not a
    /// multiple of `total`, while the multiply's bias is bounded by
    /// `total / 2^64` per class — unobservable at any campaign size.
    /// A single draw per trial keeps campaigns deterministic: the class
    /// is a pure function of the serially pre-drawn seed stream.
    pub fn sample(&self, pick: u64) -> FaultClass {
        let total: u64 = self.weights.iter().map(|&w| u64::from(w)).sum();
        let mut p = ((u128::from(pick) * u128::from(total)) >> 64) as u64;
        for (i, &w) in self.weights.iter().enumerate() {
            if p < u64::from(w) {
                return FaultClass::ALL[i];
            }
            p -= u64::from(w);
        }
        unreachable!("weights sum covers the range")
    }
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix::result_errors_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detectability_by_design() {
        assert!(FaultClass::PrimaryResult.detectable_by_design());
        assert!(FaultClass::RedundantResult.detectable_by_design());
        assert!(!FaultClass::PostCompare.detectable_by_design());
        assert!(!FaultClass::CacheCell.detectable_by_design());
        assert!(!FaultClass::PipelineControl.detectable_by_design());
    }

    /// Picks spread uniformly across the full `u64` range, the way the
    /// campaign RNG produces them. Small consecutive integers no longer
    /// walk the weight table — `sample` treats the pick as a fixed-point
    /// fraction of `2^64`, so coverage tests must span the whole range.
    fn spread_picks(n: u64) -> impl Iterator<Item = u64> {
        let stride = u64::MAX / n;
        (0..n).map(move |i| i * stride + stride / 2)
    }

    #[test]
    fn sample_respects_zero_weights() {
        let mix = FaultMix::result_errors_only();
        for pick in spread_picks(100) {
            assert!(mix.sample(pick).detectable_by_design());
        }
    }

    #[test]
    fn sample_covers_all_weighted_classes() {
        let mix = FaultMix::broad();
        let mut seen = std::collections::HashSet::new();
        for pick in spread_picks(24) {
            seen.insert(mix.sample(pick));
        }
        assert_eq!(seen.len(), 5, "broad mix should produce every class");
    }

    #[test]
    fn sample_strata_match_weights_exactly() {
        // The multiply-shift maps [0, 2^64) onto total_weight contiguous
        // strata whose sizes differ by at most one part in 2^64 / total.
        // Probing the midpoint of each ideal stratum must therefore land
        // exactly on the class the weight table assigns to that stratum.
        let mix = FaultMix::broad();
        let total: u64 = FaultClass::ALL
            .iter()
            .map(|&c| u64::from(mix.weight(c)))
            .sum();
        for stratum in 0..total {
            let pick = (u64::MAX / total) * stratum + u64::MAX / total / 2;
            let mut acc = 0;
            let expect = FaultClass::ALL
                .iter()
                .copied()
                .find(|&c| {
                    acc += u64::from(mix.weight(c));
                    stratum < acc
                })
                .unwrap();
            assert_eq!(mix.sample(pick), expect, "stratum {stratum}");
        }
    }

    #[test]
    fn sample_bias_is_bounded_over_seeded_stream() {
        // Empirical distribution check over the same kind of stream the
        // campaign feeds in: per-class frequency must sit within ±1.5
        // percentage points of the exact weight fraction, a bound the
        // old modulo reduction also met for uniform u64 picks but which
        // documents (and pins) the intended distribution.
        use reese_stats::SplitMix64;
        let mix = FaultMix::broad();
        let total: f64 = FaultClass::ALL
            .iter()
            .map(|&c| f64::from(mix.weight(c)))
            .sum();
        let mut rng = SplitMix64::new(0xFA017);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(mix.sample(rng.next_u64())).or_insert(0u64) += 1;
        }
        for c in FaultClass::ALL {
            let expect = f64::from(mix.weight(c)) / total;
            let got = *counts.get(&c).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.015,
                "{c}: frequency {got:.4} vs weight fraction {expect:.4}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_panics() {
        FaultMix::new([0; 5]);
    }

    #[test]
    fn display_nonempty() {
        for c in FaultClass::ALL {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn name_round_trips() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(&c.to_string()), Some(c));
        }
        assert_eq!(FaultClass::from_name("gamma-ray"), None);
    }
}
