//! Soft-error fault classes and their coverage-by-design.

use std::fmt;

/// Where a transient fault strikes, classified by REESE's coverage
/// statement (paper §4.2): "This implementation detects soft errors
/// that affect instruction results… REESE does not detect soft errors
/// that do not affect the intermediate or final results of an individual
/// instruction, such as pipeline control or cache errors. Any error that
/// might occur after the results are compared would also not be
/// detected."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A bit flip in a primary-stream result latch before comparison —
    /// REESE's bread and butter, always detectable.
    PrimaryResult,
    /// A bit flip during the redundant recomputation — also caught by
    /// the comparison (the mismatch is symmetric).
    RedundantResult,
    /// An error striking after the P/R comparison (commit path,
    /// architectural register file) — undetectable by REESE, by design.
    PostCompare,
    /// A memory or cache cell upset — outside REESE's domain; the paper
    /// assumes ECC protects storage.
    CacheCell,
    /// A pipeline-control upset that does not change any instruction's
    /// result — invisible to result comparison.
    PipelineControl,
}

impl FaultClass {
    /// All classes, in display order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::PrimaryResult,
        FaultClass::RedundantResult,
        FaultClass::PostCompare,
        FaultClass::CacheCell,
        FaultClass::PipelineControl,
    ];

    /// Whether REESE's result comparison can ever observe this class.
    pub const fn detectable_by_design(self) -> bool {
        matches!(
            self,
            FaultClass::PrimaryResult | FaultClass::RedundantResult
        )
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::PrimaryResult => "p-result",
            FaultClass::RedundantResult => "r-result",
            FaultClass::PostCompare => "post-compare",
            FaultClass::CacheCell => "cache-cell",
            FaultClass::PipelineControl => "pipeline-control",
        };
        f.write_str(s)
    }
}

/// Relative frequencies of each fault class in a campaign.
///
/// # Example
///
/// ```
/// use reese_faults::{FaultClass, FaultMix};
///
/// let mix = FaultMix::result_errors_only();
/// assert_eq!(mix.weight(FaultClass::CacheCell), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMix {
    weights: [u32; 5],
}

impl FaultMix {
    /// A mix from per-class weights (indexed as [`FaultClass::ALL`]).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn new(weights: [u32; 5]) -> FaultMix {
        assert!(
            weights.iter().any(|&w| w > 0),
            "fault mix needs at least one class"
        );
        FaultMix { weights }
    }

    /// Only result-latch errors (the classes REESE is built to catch),
    /// split evenly between P and R.
    pub fn result_errors_only() -> FaultMix {
        FaultMix::new([1, 1, 0, 0, 0])
    }

    /// A broad mix exercising covered and uncovered classes alike.
    pub fn broad() -> FaultMix {
        FaultMix::new([4, 4, 1, 2, 1])
    }

    /// The weight of one class.
    pub fn weight(&self, class: FaultClass) -> u32 {
        let idx = FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        self.weights[idx]
    }

    /// Samples a class using `pick` uniform in `[0, total_weight)`.
    pub fn sample(&self, pick: u64) -> FaultClass {
        let total: u64 = self.weights.iter().map(|&w| u64::from(w)).sum();
        let mut p = pick % total;
        for (i, &w) in self.weights.iter().enumerate() {
            if p < u64::from(w) {
                return FaultClass::ALL[i];
            }
            p -= u64::from(w);
        }
        unreachable!("weights sum covers the range")
    }
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix::result_errors_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detectability_by_design() {
        assert!(FaultClass::PrimaryResult.detectable_by_design());
        assert!(FaultClass::RedundantResult.detectable_by_design());
        assert!(!FaultClass::PostCompare.detectable_by_design());
        assert!(!FaultClass::CacheCell.detectable_by_design());
        assert!(!FaultClass::PipelineControl.detectable_by_design());
    }

    #[test]
    fn sample_respects_zero_weights() {
        let mix = FaultMix::result_errors_only();
        for pick in 0..100 {
            assert!(mix.sample(pick).detectable_by_design());
        }
    }

    #[test]
    fn sample_covers_all_weighted_classes() {
        let mix = FaultMix::broad();
        let mut seen = std::collections::HashSet::new();
        for pick in 0..12 {
            seen.insert(mix.sample(pick));
        }
        assert_eq!(seen.len(), 5, "broad mix should produce every class");
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_panics() {
        FaultMix::new([0; 5]);
    }

    #[test]
    fn display_nonempty() {
        for c in FaultClass::ALL {
            assert!(!c.to_string().is_empty());
        }
    }
}
