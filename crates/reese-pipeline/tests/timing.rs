//! Timing-model invariants of the baseline pipeline, checked over both
//! hand-built corner cases and seeded randomly generated programs.

use reese_cpu::Emulator;
use reese_isa::{abi::*, assemble, Program, ProgramBuilder};
use reese_pipeline::{PipelineConfig, PipelineSim};

fn straight_line(n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(T0, 1);
    for _ in 0..n {
        b.addi(T0, T0, 1);
    }
    b.li(A0, 0);
    b.halt();
    b.build().expect("builds")
}

#[test]
fn cycles_lower_bound_width() {
    // N committed instructions on a W-wide machine need ≥ N/W cycles.
    let prog = straight_line(400);
    let r = PipelineSim::new(PipelineConfig::starting())
        .run(&prog)
        .expect("runs");
    let n = r.committed_instructions();
    assert!(
        r.cycles() >= n / 8,
        "{} cycles for {} instructions",
        r.cycles(),
        n
    );
}

#[test]
fn dependent_chain_lower_bound_latency() {
    // A chain of K dependent multiplies cannot finish before 3K cycles.
    let mut b = ProgramBuilder::new();
    b.li(T0, 3);
    for _ in 0..50 {
        b.mul(T0, T0, T0);
    }
    b.li(A0, 0);
    b.halt();
    let r = PipelineSim::new(PipelineConfig::starting())
        .run(&b.build().expect("builds"))
        .expect("runs");
    assert!(
        r.cycles() >= 150,
        "50 dependent 3-cycle multiplies in {} cycles",
        r.cycles()
    );
}

#[test]
fn smaller_ruu_never_faster() {
    let prog = reese_workload();
    let small = PipelineSim::new(PipelineConfig::starting().with_ruu(8).with_lsq(4))
        .run(&prog)
        .expect("runs");
    let big = PipelineSim::new(PipelineConfig::starting().with_ruu(64).with_lsq(32))
        .run(&prog)
        .expect("runs");
    assert!(
        small.cycles() >= big.cycles(),
        "shrinking the window cannot speed things up"
    );
}

#[test]
fn fewer_alus_never_faster() {
    let prog = reese_workload();
    let mut one_alu = PipelineConfig::starting();
    one_alu.fu.int_alu = 1;
    let slow = PipelineSim::new(one_alu).run(&prog).expect("runs");
    let fast = PipelineSim::new(PipelineConfig::starting().with_extra_int_alus(4))
        .run(&prog)
        .expect("runs");
    assert!(slow.cycles() >= fast.cycles());
}

#[test]
fn perfect_prediction_beats_always_wrong() {
    // A taken loop branch: always-not-taken mispredicts every iteration.
    let prog = assemble("  li t0, 200\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n").unwrap();
    let mut nt = PipelineConfig::starting();
    nt.predictor = nt
        .predictor
        .with_kind(reese_bpred::PredictorKind::AlwaysNotTaken);
    let mut tk = PipelineConfig::starting();
    tk.predictor = tk
        .predictor
        .with_kind(reese_bpred::PredictorKind::AlwaysTaken);
    let bad = PipelineSim::new(nt).run(&prog).expect("runs");
    let good = PipelineSim::new(tk).run(&prog).expect("runs");
    assert!(
        bad.cycles() > good.cycles() + 200,
        "200 mispredictions must cost real cycles ({} vs {})",
        bad.cycles(),
        good.cycles()
    );
    assert!(bad.stats.branch.mispredict_rate() > 0.9);
    assert!(good.stats.branch.mispredict_rate() < 0.1);
}

fn reese_workload() -> Program {
    assemble(
        "  la a0, buf\n  li s0, 300\n\
         loop: andi t4, s0, 127\n  slli t2, t4, 3\n  add t3, a0, t2\n  ld t0, 0(t3)\n\
         \n  addi t0, t0, 3\n  xor t5, t5, t0\n  sd t0, 0(t3)\n\
         \n  addi s0, s0, -1\n  bnez s0, loop\n  print t5\n  halt\n\
         \n  .data\nbuf: .space 1024\n",
    )
    .unwrap()
}

/// On random programs the pipeline still matches the emulator and
/// respects the width bound.
#[test]
fn random_programs_sound() {
    let mut rng = reese_stats::SplitMix64::new(30);
    for _ in 0..16 {
        let prog = reese_workloads::SyntheticSpec {
            iterations: 1 + rng.next_u32() % 5,
            seed: rng.next_u64(),
            ..reese_workloads::SyntheticSpec::balanced()
        }
        .build();
        let emu = Emulator::new(&prog).run(u64::MAX).expect("halts");
        let sim = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .expect("runs");
        assert_eq!(sim.state_digest, emu.state_digest);
        assert!(sim.cycles() >= emu.instructions / 8);
        assert!(sim.stats.issued >= sim.stats.committed);
        assert!(sim.stats.fetched >= sim.stats.committed);
    }
}

/// Adding cache latency monotonicity: a slower main memory never
/// produces a faster run.
#[test]
fn slower_memory_never_faster() {
    let mut rng = reese_stats::SplitMix64::new(31);
    for _ in 0..16 {
        let prog = reese_workloads::SyntheticSpec {
            iterations: 3,
            seed: rng.next_u64(),
            ..reese_workloads::SyntheticSpec::memory_heavy()
        }
        .build();
        let mut fast_mem = PipelineConfig::starting();
        fast_mem.hierarchy.mem_latency = 5;
        let mut slow_mem = PipelineConfig::starting();
        slow_mem.hierarchy.mem_latency = 200;
        let fast = PipelineSim::new(fast_mem).run(&prog).expect("runs");
        let slow = PipelineSim::new(slow_mem).run(&prog).expect("runs");
        assert!(slow.cycles() >= fast.cycles());
    }
}
