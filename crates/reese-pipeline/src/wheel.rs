//! A bucketed time wheel for completion events.
//!
//! The event-driven scheduler keeps one pending completion event per
//! issued instruction and asks three things of the container: pop
//! everything due at the current cycle in `(cycle, seq)` order, report
//! the earliest scheduled cycle (for idle-cycle skipping), and clear on
//! a flush. A `BinaryHeap<Reverse<(u64, Seq)>>` does all three but pays
//! a log-depth sift on every push and pop, which at small windows
//! (RUU = 16) is the last remaining per-cycle cost above the plain
//! scan. Event horizons here are tiny — a completion is never scheduled
//! further out than the worst-case memory latency — so a ring of
//! per-cycle buckets indexed by `cycle mod ring_size` makes push an
//! array append and the per-cycle drain a one-slot inspection.
//!
//! Draining advances a cursor; all live events sit in the half-open
//! window `[cursor, cursor + ring_size)`, so each bucket holds events
//! of exactly one cycle and the ring never needs tombstones. If a push
//! ever outruns the horizon the ring doubles (a handful of times per
//! process at most, driven by configured latencies, not by load).
//!
//! # Over-span scheduling audit
//!
//! An event scheduled ≥ `ring_size` cycles ahead would alias the slot
//! of a nearer cycle under `cycle & mask` — a long-latency op landing
//! in an occupied bucket would then fire with (and be sorted among)
//! events of a different cycle: silently early and misordered. The
//! guard is the grow loop in [`EventWheel::push`]: it runs *before*
//! the slot index is computed and doubles the ring until
//! `cycle - cursor < ring_size`, restoring the one-cycle-per-bucket
//! invariant. [`EventWheel::grow`] preserves it for the events already
//! resident: every live cycle lies in `[cursor, cursor + old_size)`,
//! and re-homing bucket `(cursor + d) & old_mask` to
//! `(cursor + d) & new_mask` for `d in 0..old_size` maps distinct live
//! cycles to distinct new slots (the window is shorter than the new
//! ring) while freshly-created slots start empty. The drain and
//! [`EventWheel::next_cycle`] walk cycle-by-cycle from
//! `cursor.max(hint)`, so they can neither resurrect a drained bucket
//! nor skip a due one. The alias regression is pinned by
//! `over_span_event_into_an_occupied_slot_neither_drops_nor_reorders`
//! below.

use crate::Seq;

/// Initial bucket count: comfortably above the default worst-case
/// access path (TLB miss + L1 + L2 + main memory) so growth is the
/// exception, small enough that a flush-triggered [`EventWheel::clear`]
/// stays cheap.
const INITIAL_SLOTS: usize = 256;

/// A set of `(cycle, seq)` completion events, drained in ascending
/// `(cycle, seq)` order, valid while every scheduled cycle is at or
/// after the last drained cycle.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// One bucket per cycle in the live window; within a bucket, seqs
    /// are unordered until the drain sorts them.
    slots: Vec<Vec<Seq>>,
    mask: u64,
    len: usize,
    /// All live events lie in `[cursor, cursor + slots.len())`.
    cursor: u64,
    /// Lower bound on the earliest live event's cycle (exact after
    /// [`EventWheel::next_cycle`] finds one). Lets the drain and the
    /// peek skip empty buckets without rescanning from `cursor`.
    hint: u64,
}

impl Default for EventWheel {
    fn default() -> EventWheel {
        EventWheel::new()
    }
}

impl EventWheel {
    /// Creates an empty wheel.
    pub fn new() -> EventWheel {
        EventWheel {
            slots: vec![Vec::new(); INITIAL_SLOTS],
            mask: (INITIAL_SLOTS - 1) as u64,
            len: 0,
            cursor: 0,
            hint: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether any event is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `seq` to fire at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is before a cycle that has already been
    /// drained — events never fire in the past.
    pub fn push(&mut self, cycle: u64, seq: Seq) {
        assert!(cycle >= self.cursor, "event scheduled in a drained cycle");
        while cycle - self.cursor >= self.slots.len() as u64 {
            self.grow();
        }
        self.slots[(cycle & self.mask) as usize].push(seq);
        self.len += 1;
        if cycle < self.hint {
            self.hint = cycle;
        }
    }

    /// Doubles the ring, re-homing each live bucket to its new index.
    fn grow(&mut self) {
        let old_mask = self.mask;
        let old_size = self.slots.len();
        let mut old = std::mem::replace(&mut self.slots, vec![Vec::new(); old_size * 2]);
        self.mask = (old_size * 2 - 1) as u64;
        for d in 0..old_size as u64 {
            let cycle = self.cursor + d;
            let bucket = std::mem::take(&mut old[(cycle & old_mask) as usize]);
            if !bucket.is_empty() {
                self.slots[(cycle & self.mask) as usize] = bucket;
            }
        }
    }

    /// Appends every event due at or before `now` to `out` (cleared
    /// first) in ascending `(cycle, seq)` order, and advances the
    /// drained-cycle cursor to `now + 1`.
    pub fn take_due_into(&mut self, now: u64, out: &mut Vec<Seq>) {
        out.clear();
        if self.len != 0 {
            let mut cycle = self.cursor.max(self.hint);
            while cycle <= now && self.len != 0 {
                let bucket = &mut self.slots[(cycle & self.mask) as usize];
                if !bucket.is_empty() {
                    bucket.sort_unstable();
                    self.len -= bucket.len();
                    out.append(bucket);
                }
                cycle += 1;
            }
        }
        self.cursor = now + 1;
        self.hint = self.hint.max(self.cursor);
    }

    /// Every event due at or before `now`, in ascending `(cycle, seq)`
    /// order.
    pub fn take_due(&mut self, now: u64) -> Vec<Seq> {
        let mut out = Vec::new();
        self.take_due_into(now, &mut out);
        out
    }

    /// Cycle of the earliest pending event, if any.
    pub fn next_cycle(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut cycle = self.cursor.max(self.hint);
        loop {
            if !self.slots[(cycle & self.mask) as usize].is_empty() {
                self.hint = cycle;
                return Some(cycle);
            }
            cycle += 1;
        }
    }

    /// Drops every pending event. The drained-cycle cursor is kept, so
    /// the wheel keeps rejecting past cycles after a flush.
    pub fn clear(&mut self) {
        if self.len != 0 {
            for bucket in &mut self.slots {
                bucket.clear();
            }
            self.len = 0;
        }
        self.hint = self.cursor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_cycle_then_seq_order() {
        let mut w = EventWheel::new();
        w.push(4, 9);
        w.push(2, 7);
        w.push(4, 1);
        w.push(2, 3);
        assert_eq!(w.next_cycle(), Some(2));
        assert_eq!(w.take_due(1), Vec::<Seq>::new());
        assert_eq!(w.take_due(2), vec![3, 7]);
        assert_eq!(w.next_cycle(), Some(4));
        assert_eq!(w.take_due(10), vec![1, 9]);
        assert_eq!(w.next_cycle(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn drain_spanning_many_cycles_stays_sorted() {
        let mut w = EventWheel::new();
        for (cycle, seq) in [(5, 2), (3, 0), (9, 1), (3, 4)] {
            w.push(cycle, seq);
        }
        assert_eq!(w.take_due(9), vec![0, 4, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "drained cycle")]
    fn past_push_panics() {
        let mut w = EventWheel::new();
        w.take_due(10);
        w.push(10, 0);
    }

    #[test]
    fn grows_past_the_initial_horizon() {
        let mut w = EventWheel::new();
        w.push(1, 0);
        w.push(INITIAL_SLOTS as u64 * 3, 1);
        w.push(2, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_cycle(), Some(1));
        assert_eq!(w.take_due(2), vec![0, 2]);
        assert_eq!(w.next_cycle(), Some(INITIAL_SLOTS as u64 * 3));
        assert_eq!(w.take_due(u64::MAX - 1), vec![1]);
    }

    #[test]
    fn over_span_event_into_an_occupied_slot_neither_drops_nor_reorders() {
        // A long-latency completion lands a full wheel span (or two)
        // after a near event with the *same* masked slot index. Without
        // the pre-index grow loop the far events would join the near
        // bucket and fire early; with it they must keep their own
        // cycles and ascending order.
        let span = INITIAL_SLOTS as u64;
        let mut w = EventWheel::new();
        w.push(3, 10); // occupies slot 3
        w.push(3 + span, 11); // would alias slot 3 under the old mask
        w.push(3 + 2 * span, 12); // aliases the doubled ring too
        assert_eq!(w.len(), 3);
        assert_eq!(w.take_due(3), vec![10], "only the near event is due");
        assert_eq!(w.next_cycle(), Some(3 + span));
        assert_eq!(w.take_due(3 + span), vec![11]);
        assert_eq!(w.next_cycle(), Some(3 + 2 * span));
        assert_eq!(w.take_due(3 + 2 * span), vec![12]);
        assert!(w.is_empty());

        // Same shape with the far event pushed first, so growth has to
        // re-home an occupied far bucket past a later near push.
        let mut w = EventWheel::new();
        w.push(7, 1);
        w.push(7 + span, 0); // grows; seq 0 younger than the near seq 1
        w.push(7 + span, 2);
        assert_eq!(w.take_due(7 + span - 1), vec![1]);
        assert_eq!(w.take_due(7 + span), vec![0, 2], "bucket drains sorted");
    }

    #[test]
    fn clear_keeps_the_cursor() {
        let mut w = EventWheel::new();
        w.push(5, 0);
        w.take_due(3);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_cycle(), None);
        w.push(4, 1); // at the cursor: legal
        assert_eq!(w.take_due(4), vec![1]);
    }

    #[test]
    fn matches_a_binary_heap_under_seeded_traffic() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // SplitMix64-driven schedule/drain churn with latencies 1..=120,
        // occasionally far beyond the initial horizon to force growth.
        let mut state: u64 = 0xC0_FFEE;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut wheel = EventWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, Seq)>> = BinaryHeap::new();
        let mut now: u64 = 0;
        let mut seq: Seq = 0;
        for _ in 0..5_000 {
            for _ in 0..next() % 4 {
                let latency = if next() % 64 == 0 {
                    INITIAL_SLOTS as u64 + 1 + next() % 1000
                } else {
                    1 + next() % 120
                };
                wheel.push(now + latency, seq);
                heap.push(Reverse((now + latency, seq)));
                seq += 1;
            }
            assert_eq!(wheel.next_cycle(), heap.peek().map(|&Reverse((c, _))| c));
            now += 1 + next() % 8;
            let mut expected = Vec::new();
            while let Some(&Reverse((c, s))) = heap.peek() {
                if c > now {
                    break;
                }
                heap.pop();
                expected.push(s);
            }
            assert_eq!(wheel.take_due(now), expected);
            assert_eq!(wheel.len(), heap.len());
        }
    }
}
