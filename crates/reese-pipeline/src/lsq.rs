//! The load/store queue and memory disambiguation.

use crate::Seq;
use std::collections::VecDeque;

/// What the scheduler should do with a load this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPlan {
    /// An older overlapping store has not produced its data yet; the
    /// load must wait (re-ask next cycle).
    Wait {
        /// The store blocking the load.
        store: Seq,
    },
    /// The youngest older overlapping store has executed; its data can
    /// be forwarded without touching the cache.
    Forward {
        /// The store supplying the data.
        store: Seq,
    },
    /// No conflict: access the data cache through a memory port.
    CacheAccess,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: Seq,
    addr: u64,
    len: u64,
    is_store: bool,
    executed: bool,
}

fn overlaps(a: &LsqEntry, addr: u64, len: u64) -> bool {
    a.addr < addr + len && addr < a.addr + a.len
}

/// The load/store queue.
///
/// Memory instructions enter in program order at dispatch and leave at
/// commit. Because simulation is execution-driven, every effective
/// address is known exactly, so disambiguation is precise: a load waits
/// only for *genuinely* overlapping older stores and forwards from the
/// youngest one once it has executed (store-to-load forwarding, as in
/// SimpleScalar's LSQ).
///
/// # Example
///
/// ```
/// use reese_pipeline::{LoadPlan, Lsq};
///
/// let mut lsq = Lsq::new(8);
/// lsq.insert(0, 0x1000, 8, true); // store
/// lsq.insert(1, 0x1000, 8, false); // load, same address
/// assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::Wait { store: 0 });
/// lsq.mark_executed(0);
/// assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::Forward { store: 0 });
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
}

impl Lsq {
    /// Creates an empty LSQ.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Lsq {
        assert!(capacity > 0, "LSQ capacity must be positive");
        Lsq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the LSQ is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether dispatch of a memory instruction must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a memory instruction at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if full or out of program order.
    pub fn insert(&mut self, seq: Seq, addr: u64, len: u64, is_store: bool) {
        assert!(!self.is_full(), "insert into a full LSQ");
        if let Some(back) = self.entries.back() {
            assert!(seq > back.seq, "LSQ insert must follow program order");
        }
        self.entries.push_back(LsqEntry {
            seq,
            addr,
            len,
            is_store,
            executed: false,
        });
    }

    /// Marks a memory instruction as executed (address + data done).
    ///
    /// Entries are kept in ascending seq order, so the lookup is a
    /// binary search rather than a scan.
    pub fn mark_executed(&mut self, seq: Seq) {
        if let Ok(idx) = self.entries.binary_search_by_key(&seq, |e| e.seq) {
            self.entries[idx].executed = true;
        }
    }

    /// Decides how the load `seq` covering `[addr, addr+len)` may
    /// proceed this cycle.
    pub fn plan_load(&self, seq: Seq, addr: u64, len: u64) -> LoadPlan {
        // Scan older entries youngest-first for the nearest overlapping store.
        for e in self.entries.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            if e.is_store && overlaps(e, addr, len) {
                return if e.executed {
                    LoadPlan::Forward { store: e.seq }
                } else {
                    LoadPlan::Wait { store: e.seq }
                };
            }
        }
        LoadPlan::CacheAccess
    }

    /// Removes the entry for a committing instruction (no-op for
    /// non-memory seqs).
    ///
    /// O(1): instructions commit in program order and the LSQ fills in
    /// program order, so a committing seq that is resident is always the
    /// front entry — a front that is *older* than `seq` would have had
    /// to commit (and be removed) first.
    pub fn remove(&mut self, seq: Seq) {
        if self.entries.front().is_some_and(|e| e.seq == seq) {
            self.entries.pop_front();
            return;
        }
        debug_assert!(
            !self.entries.iter().any(|e| e.seq == seq),
            "removal of a non-front seq breaks the in-order-departure invariant"
        );
    }

    /// Squashes everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_load_goes_to_cache() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, true);
        lsq.insert(1, 0x2000, 8, false);
        assert_eq!(lsq.plan_load(1, 0x2000, 8), LoadPlan::CacheAccess);
    }

    #[test]
    fn partial_overlap_detected() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1004, 4, true); // store word at 0x1004
        lsq.insert(1, 0x1000, 8, false); // load dword covering it
        assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::Wait { store: 0 });
    }

    #[test]
    fn adjacent_no_overlap() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 4, true);
        lsq.insert(1, 0x1004, 4, false);
        assert_eq!(lsq.plan_load(1, 0x1004, 4), LoadPlan::CacheAccess);
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, true);
        lsq.insert(1, 0x1000, 8, true);
        lsq.insert(2, 0x1000, 8, false);
        lsq.mark_executed(0);
        // Store 1 (younger) still pending: the load waits on it, not 0.
        assert_eq!(lsq.plan_load(2, 0x1000, 8), LoadPlan::Wait { store: 1 });
        lsq.mark_executed(1);
        assert_eq!(lsq.plan_load(2, 0x1000, 8), LoadPlan::Forward { store: 1 });
    }

    #[test]
    fn younger_stores_ignored() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, false); // load
        lsq.insert(1, 0x1000, 8, true); // younger store
        assert_eq!(lsq.plan_load(0, 0x1000, 8), LoadPlan::CacheAccess);
    }

    #[test]
    fn loads_do_not_block_loads() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, false);
        lsq.insert(1, 0x1000, 8, false);
        assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::CacheAccess);
    }

    #[test]
    fn remove_and_capacity() {
        let mut lsq = Lsq::new(2);
        lsq.insert(0, 0, 8, true);
        lsq.insert(1, 8, 8, false);
        assert!(lsq.is_full());
        lsq.remove(0);
        assert_eq!(lsq.len(), 1);
        lsq.remove(99); // no-op
        assert_eq!(lsq.len(), 1);
        lsq.flush_all();
        assert!(lsq.is_empty());
    }

    #[test]
    fn in_order_removal_with_non_memory_gaps() {
        // Commit removes every seq in order, but only memory seqs are
        // resident: absent seqs (2, 5) must be silent no-ops and present
        // ones must leave from the front.
        let mut lsq = Lsq::new(4);
        lsq.insert(1, 0x1000, 8, true);
        lsq.insert(3, 0x2000, 8, false);
        lsq.insert(4, 0x3000, 8, false);
        for seq in 0..=5 {
            lsq.remove(seq);
        }
        assert!(lsq.is_empty());
    }

    #[test]
    fn mark_executed_finds_any_resident_seq() {
        let mut lsq = Lsq::new(4);
        lsq.insert(2, 0x1000, 8, true);
        lsq.insert(7, 0x1000, 8, false);
        lsq.mark_executed(2);
        lsq.mark_executed(5); // absent: no-op
        assert_eq!(lsq.plan_load(7, 0x1000, 8), LoadPlan::Forward { store: 2 });
    }

    #[test]
    #[should_panic(expected = "full LSQ")]
    fn overfill_panics() {
        let mut lsq = Lsq::new(1);
        lsq.insert(0, 0, 8, true);
        lsq.insert(1, 8, 8, true);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_insert_panics() {
        let mut lsq = Lsq::new(4);
        lsq.insert(5, 0, 8, true);
        lsq.insert(3, 8, 8, true);
    }
}
