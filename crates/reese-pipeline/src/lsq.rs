//! The load/store queue and memory disambiguation.
//!
//! Storage is a fixed-capacity positional ring, allocated once at
//! construction: entry `i` (oldest = 0) lives in
//! `slots[(head + i) & mask]` with `slots.len()` the capacity rounded
//! up to a power of two. This is the same masked-slot discipline as
//! the scheduler's `InstArena`, applied to *positions* rather than
//! seqs — memory seqs are not contiguous (ALU instructions sit between
//! them), so the LSQ cannot index by `seq & mask` directly. Dispatch,
//! commit, and flush all become index arithmetic with no allocation
//! and no element movement.

use crate::Seq;

/// What the scheduler should do with a load this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPlan {
    /// An older overlapping store has not produced its data yet; the
    /// load must wait (re-ask next cycle).
    Wait {
        /// The store blocking the load.
        store: Seq,
    },
    /// The youngest older overlapping store has executed; its data can
    /// be forwarded without touching the cache.
    Forward {
        /// The store supplying the data.
        store: Seq,
    },
    /// No conflict: access the data cache through a memory port.
    CacheAccess,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: Seq,
    addr: u64,
    len: u64,
    is_store: bool,
    executed: bool,
}

/// Placeholder for never-written ring slots; every read goes through
/// the `[head, head + len)` window, so this is never observed.
const EMPTY: LsqEntry = LsqEntry {
    seq: 0,
    addr: 0,
    len: 0,
    is_store: false,
    executed: false,
};

fn overlaps(a: &LsqEntry, addr: u64, len: u64) -> bool {
    a.addr < addr + len && addr < a.addr + a.len
}

/// The load/store queue.
///
/// Memory instructions enter in program order at dispatch and leave at
/// commit. Because simulation is execution-driven, every effective
/// address is known exactly, so disambiguation is precise: a load waits
/// only for *genuinely* overlapping older stores and forwards from the
/// youngest one once it has executed (store-to-load forwarding, as in
/// SimpleScalar's LSQ).
///
/// # Example
///
/// ```
/// use reese_pipeline::{LoadPlan, Lsq};
///
/// let mut lsq = Lsq::new(8);
/// lsq.insert(0, 0x1000, 8, true); // store
/// lsq.insert(1, 0x1000, 8, false); // load, same address
/// assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::Wait { store: 0 });
/// lsq.mark_executed(0);
/// assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::Forward { store: 0 });
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    /// Power-of-two ring; live entries occupy positions
    /// `0..len`, position `i` at `slots[(head + i) & mask]`.
    slots: Vec<LsqEntry>,
    mask: usize,
    head: usize,
    len: usize,
    capacity: usize,
}

impl Lsq {
    /// Creates an empty LSQ.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Lsq {
        assert!(capacity > 0, "LSQ capacity must be positive");
        let slots = capacity.next_power_of_two();
        Lsq {
            slots: vec![EMPTY; slots],
            mask: slots - 1,
            head: 0,
            len: 0,
            capacity,
        }
    }

    /// The entry at program-order position `i` (0 = oldest).
    fn at(&self, i: usize) -> &LsqEntry {
        &self.slots[(self.head + i) & self.mask]
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the LSQ is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether dispatch of a memory instruction must stall.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a memory instruction at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if full or out of program order.
    pub fn insert(&mut self, seq: Seq, addr: u64, len: u64, is_store: bool) {
        assert!(!self.is_full(), "insert into a full LSQ");
        if self.len > 0 {
            assert!(
                seq > self.at(self.len - 1).seq,
                "LSQ insert must follow program order"
            );
        }
        self.slots[(self.head + self.len) & self.mask] = LsqEntry {
            seq,
            addr,
            len,
            is_store,
            executed: false,
        };
        self.len += 1;
    }

    /// Marks a memory instruction as executed (address + data done).
    ///
    /// Entries sit in ascending seq order by position, so the lookup is
    /// a binary search over positions rather than a scan.
    pub fn mark_executed(&mut self, seq: Seq) {
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.at(mid).seq.cmp(&seq) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    self.slots[(self.head + mid) & self.mask].executed = true;
                    return;
                }
            }
        }
    }

    /// Decides how the load `seq` covering `[addr, addr+len)` may
    /// proceed this cycle.
    pub fn plan_load(&self, seq: Seq, addr: u64, len: u64) -> LoadPlan {
        // Scan older entries youngest-first for the nearest overlapping store.
        for i in (0..self.len).rev() {
            let e = self.at(i);
            if e.seq >= seq {
                continue;
            }
            if e.is_store && overlaps(e, addr, len) {
                return if e.executed {
                    LoadPlan::Forward { store: e.seq }
                } else {
                    LoadPlan::Wait { store: e.seq }
                };
            }
        }
        LoadPlan::CacheAccess
    }

    /// Removes the entry for a committing instruction (no-op for
    /// non-memory seqs).
    ///
    /// O(1): instructions commit in program order and the LSQ fills in
    /// program order, so a committing seq that is resident is always the
    /// front entry — a front that is *older* than `seq` would have had
    /// to commit (and be removed) first.
    pub fn remove(&mut self, seq: Seq) {
        if self.len > 0 && self.at(0).seq == seq {
            self.head = (self.head + 1) & self.mask;
            self.len -= 1;
            return;
        }
        debug_assert!(
            !(0..self.len).any(|i| self.at(i).seq == seq),
            "removal of a non-front seq breaks the in-order-departure invariant"
        );
    }

    /// Squashes everything.
    pub fn flush_all(&mut self) {
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_load_goes_to_cache() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, true);
        lsq.insert(1, 0x2000, 8, false);
        assert_eq!(lsq.plan_load(1, 0x2000, 8), LoadPlan::CacheAccess);
    }

    #[test]
    fn partial_overlap_detected() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1004, 4, true); // store word at 0x1004
        lsq.insert(1, 0x1000, 8, false); // load dword covering it
        assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::Wait { store: 0 });
    }

    #[test]
    fn adjacent_no_overlap() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 4, true);
        lsq.insert(1, 0x1004, 4, false);
        assert_eq!(lsq.plan_load(1, 0x1004, 4), LoadPlan::CacheAccess);
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, true);
        lsq.insert(1, 0x1000, 8, true);
        lsq.insert(2, 0x1000, 8, false);
        lsq.mark_executed(0);
        // Store 1 (younger) still pending: the load waits on it, not 0.
        assert_eq!(lsq.plan_load(2, 0x1000, 8), LoadPlan::Wait { store: 1 });
        lsq.mark_executed(1);
        assert_eq!(lsq.plan_load(2, 0x1000, 8), LoadPlan::Forward { store: 1 });
    }

    #[test]
    fn younger_stores_ignored() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, false); // load
        lsq.insert(1, 0x1000, 8, true); // younger store
        assert_eq!(lsq.plan_load(0, 0x1000, 8), LoadPlan::CacheAccess);
    }

    #[test]
    fn loads_do_not_block_loads() {
        let mut lsq = Lsq::new(4);
        lsq.insert(0, 0x1000, 8, false);
        lsq.insert(1, 0x1000, 8, false);
        assert_eq!(lsq.plan_load(1, 0x1000, 8), LoadPlan::CacheAccess);
    }

    #[test]
    fn remove_and_capacity() {
        let mut lsq = Lsq::new(2);
        lsq.insert(0, 0, 8, true);
        lsq.insert(1, 8, 8, false);
        assert!(lsq.is_full());
        lsq.remove(0);
        assert_eq!(lsq.len(), 1);
        lsq.remove(99); // no-op
        assert_eq!(lsq.len(), 1);
        lsq.flush_all();
        assert!(lsq.is_empty());
    }

    #[test]
    fn in_order_removal_with_non_memory_gaps() {
        // Commit removes every seq in order, but only memory seqs are
        // resident: absent seqs (2, 5) must be silent no-ops and present
        // ones must leave from the front.
        let mut lsq = Lsq::new(4);
        lsq.insert(1, 0x1000, 8, true);
        lsq.insert(3, 0x2000, 8, false);
        lsq.insert(4, 0x3000, 8, false);
        for seq in 0..=5 {
            lsq.remove(seq);
        }
        assert!(lsq.is_empty());
    }

    #[test]
    fn mark_executed_finds_any_resident_seq() {
        let mut lsq = Lsq::new(4);
        lsq.insert(2, 0x1000, 8, true);
        lsq.insert(7, 0x1000, 8, false);
        lsq.mark_executed(2);
        lsq.mark_executed(5); // absent: no-op
        assert_eq!(lsq.plan_load(7, 0x1000, 8), LoadPlan::Forward { store: 2 });
    }

    #[test]
    fn ring_wraps_without_losing_order_or_entries() {
        // Capacity 3 on a 4-slot ring: the head crosses the wrap seam
        // every other round, with live disambiguation queries spanning
        // it each time.
        let mut lsq = Lsq::new(3);
        let mut seq: Seq = 0;
        for _ in 0..25 {
            let (store, load) = (seq, seq + 1);
            seq += 2;
            lsq.insert(store, 0x1000, 8, true);
            lsq.insert(load, 0x1000, 8, false);
            assert_eq!(lsq.plan_load(load, 0x1000, 8), LoadPlan::Wait { store });
            lsq.mark_executed(store);
            assert_eq!(lsq.plan_load(load, 0x1000, 8), LoadPlan::Forward { store });
            lsq.remove(store);
            lsq.remove(load);
            assert!(lsq.is_empty());
        }
        // Fill to capacity straddling the seam and check the youngest-
        // older-store rule still resolves across it.
        lsq.insert(seq, 0x2000, 8, true);
        lsq.insert(seq + 1, 0x3000, 8, true);
        lsq.insert(seq + 2, 0x2000, 8, false);
        assert!(lsq.is_full());
        assert_eq!(
            lsq.plan_load(seq + 2, 0x2000, 8),
            LoadPlan::Wait { store: seq }
        );
    }

    #[test]
    #[should_panic(expected = "full LSQ")]
    fn overfill_panics() {
        let mut lsq = Lsq::new(1);
        lsq.insert(0, 0, 8, true);
        lsq.insert(1, 8, 8, true);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_insert_panics() {
        let mut lsq = Lsq::new(4);
        lsq.insert(5, 0, 8, true);
        lsq.insert(3, 8, 8, true);
    }
}
