//! Simulation results and statistics.

use reese_bpred::BranchStats;
use reese_isa::FuClass;
use reese_mem::HierarchyStats;
use std::fmt;

/// Why a simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStop {
    /// The program's `halt` committed.
    Halted,
    /// The requested committed-instruction budget was reached.
    InstructionLimit,
    /// The configured cycle cap was reached.
    CycleLimit,
}

/// Errors a simulation run can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program itself misbehaved (wild jump, ran off the text
    /// segment).
    Emulation(reese_cpu::EmuError),
    /// The pipeline made no forward progress for a long time — a
    /// simulator invariant violation, never expected in a correct build.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Emulation(e) => write!(f, "emulation error: {e}"),
            SimError::Deadlock { cycle } => {
                write!(f, "pipeline deadlock detected at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Emulation(e) => Some(e),
            SimError::Deadlock { .. } => None,
        }
    }
}

impl From<reese_cpu::EmuError> for SimError {
    fn from(e: reese_cpu::EmuError) -> Self {
        SimError::Emulation(e)
    }
}

/// Timing statistics shared by the baseline and REESE simulators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (architecturally retired) instructions.
    pub committed: u64,
    /// Instructions delivered by the front end (replays re-count).
    pub fetched: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub loads_forwarded: u64,
    /// Dispatch stalls because the RUU was full.
    pub dispatch_stall_ruu_full: u64,
    /// Dispatch stalls because the LSQ was full.
    pub dispatch_stall_lsq_full: u64,
    /// Cycles in which the fetch queue was empty at dispatch.
    pub fetch_queue_empty_cycles: u64,
    /// Branch prediction statistics.
    pub branch: BranchStats,
    /// Cache/TLB statistics.
    pub hierarchy: Option<HierarchyStats>,
    /// Per-class functional-unit utilisation in `[0, 1]`.
    pub fu_utilisation: Vec<(FuClass, f64)>,
}

impl PipelineStats {
    /// Accumulates another interval's statistics into this one, as if
    /// the two runs had been one. Counters add; the per-class
    /// functional-unit utilisations are averaged weighted by each
    /// side's cycle count. Used to stitch a sharded run's per-interval
    /// results into one whole-program report.
    pub fn merge(&mut self, other: &PipelineStats) {
        let (self_cycles, other_cycles) = (self.cycles, other.cycles);
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.fetched += other.fetched;
        self.issued += other.issued;
        self.loads_forwarded += other.loads_forwarded;
        self.dispatch_stall_ruu_full += other.dispatch_stall_ruu_full;
        self.dispatch_stall_lsq_full += other.dispatch_stall_lsq_full;
        self.fetch_queue_empty_cycles += other.fetch_queue_empty_cycles;
        self.branch.merge(&other.branch);
        match (&mut self.hierarchy, &other.hierarchy) {
            (Some(h), Some(o)) => h.merge(o),
            (None, Some(o)) => self.hierarchy = Some(*o),
            _ => {}
        }
        if self.fu_utilisation.is_empty() {
            self.fu_utilisation = other.fu_utilisation.clone();
        } else if !other.fu_utilisation.is_empty() && self_cycles + other_cycles > 0 {
            let total = (self_cycles + other_cycles) as f64;
            for (class, util) in &mut self.fu_utilisation {
                let theirs = other
                    .fu_utilisation
                    .iter()
                    .find(|(c, _)| c == class)
                    .map_or(0.0, |&(_, u)| u);
                *util = (*util * self_cycles as f64 + theirs * other_cycles as f64) / total;
            }
        }
    }

    /// Committed instructions per cycle — the paper's headline metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// A counter normalised to events per 1000 simulated cycles, so
    /// stall pressure compares across runs of different lengths; 0 for
    /// a zero-cycle run.
    pub fn per_1k_cycles(&self, count: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.cycles as f64
        }
    }

    /// Fraction of issue bandwidth left idle (the paper's "idle
    /// capacity"), given the machine width.
    pub fn idle_issue_fraction(&self, width: usize) -> f64 {
        let slots = self.cycles * width as u64;
        if slots == 0 {
            0.0
        } else {
            1.0 - self.issued as f64 / slots as f64
        }
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions in {} cycles (IPC {:.3}); {} fetched, {} issued, {} loads forwarded",
            self.committed,
            self.cycles,
            self.ipc(),
            self.fetched,
            self.issued,
            self.loads_forwarded
        )?;
        writeln!(
            f,
            "stalls: {} RUU-full ({:.2}/1k cycles), {} LSQ-full ({:.2}/1k cycles), \
             {} empty-fetch-queue cycles",
            self.dispatch_stall_ruu_full,
            self.per_1k_cycles(self.dispatch_stall_ruu_full),
            self.dispatch_stall_lsq_full,
            self.per_1k_cycles(self.dispatch_stall_lsq_full),
            self.fetch_queue_empty_cycles
        )?;
        writeln!(
            f,
            "branches: {} lookups, {:.2}% mispredicted; indirect: {} lookups, {} mispredicted",
            self.branch.branch_lookups,
            self.branch.mispredict_rate() * 100.0,
            self.branch.indirect_lookups,
            self.branch.indirect_mispredicts
        )?;
        if let Some(h) = &self.hierarchy {
            writeln!(
                f,
                "caches: L1I {:.2}% miss, L1D {:.2}% miss, L2 {:.2}% miss; TLB misses {}i/{}d",
                h.l1i.miss_rate() * 100.0,
                h.l1d.miss_rate() * 100.0,
                h.l2.miss_rate() * 100.0,
                h.itlb_misses,
                h.dtlb_misses
            )?;
        }
        for (class, util) in &self.fu_utilisation {
            write!(f, "  {class}: {:.0}%", util * 100.0)?;
        }
        writeln!(f)
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Why the run stopped.
    pub stop: SimStop,
    /// Timing statistics.
    pub stats: PipelineStats,
    /// Values printed by committed `print` instructions, in order.
    pub output: Vec<i64>,
    /// Exit code from the committed `halt`, if the program halted.
    pub exit_code: Option<u64>,
    /// Digest of the final architectural register state.
    pub state_digest: u64,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Committed instruction count.
    pub fn committed_instructions(&self) -> u64 {
        self.stats.committed
    }

    /// Simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_guarded() {
        let s = PipelineStats::default();
        assert_eq!(s.ipc(), 0.0);
        let s = PipelineStats {
            cycles: 100,
            committed: 150,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction() {
        let s = PipelineStats {
            cycles: 10,
            issued: 40,
            ..Default::default()
        };
        assert!((s.idle_issue_fraction(8) - 0.5).abs() < 1e-12);
        assert_eq!(PipelineStats::default().idle_issue_fraction(8), 0.0);
    }

    #[test]
    fn stall_lines_report_rates_per_1k_cycles() {
        let s = PipelineStats {
            cycles: 2000,
            dispatch_stall_ruu_full: 30,
            dispatch_stall_lsq_full: 5,
            ..Default::default()
        };
        assert!((s.per_1k_cycles(s.dispatch_stall_ruu_full) - 15.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("30 RUU-full (15.00/1k cycles)"), "{text}");
        assert!(text.contains("5 LSQ-full (2.50/1k cycles)"), "{text}");
        assert_eq!(PipelineStats::default().per_1k_cycles(7), 0.0);
    }

    #[test]
    fn error_display() {
        let e = SimError::Deadlock { cycle: 42 };
        assert!(e.to_string().contains("42"));
    }
}
