//! In-flight dynamic instruction records.

use reese_cpu::StepInfo;
use reese_isa::FuClass;

/// Monotonically increasing id of a dynamic (fetched) instruction.
pub type Seq = u64;

/// Branch-prediction bookkeeping attached to a fetched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictionInfo {
    /// Direction predicted for a conditional branch.
    pub predicted_taken: Option<bool>,
    /// Target predicted for an indirect jump (`None` = no prediction
    /// bookkeeping, `Some(None)` = BTB miss, `Some(Some(t))` = target).
    pub predicted_target: Option<Option<u64>>,
    /// Whether the front end discovered a misprediction when it fetched
    /// this instruction (fetch stalls until the instruction resolves).
    pub mispredicted: bool,
}

/// One instruction in flight in the RUU.
///
/// Carries the full functional record ([`StepInfo`]) — operands, result,
/// effective address, next PC — which is what makes the downstream
/// R-stream Queue entry free to build: REESE stores exactly this
/// information (paper §4.3).
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Fetch sequence number (program order).
    pub seq: Seq,
    /// The functional record of the instruction.
    pub info: StepInfo,
    /// Prediction bookkeeping from the front end.
    pub pred: PredictionInfo,
    /// Unresolved register/LSQ producers this instruction waits on.
    pub pending_deps: u32,
    /// Instructions waiting for this one's result.
    pub consumers: Vec<Seq>,
    /// Whether the instruction has been issued to a functional unit.
    pub issued: bool,
    /// Whether execution has finished (result available).
    pub completed: bool,
    /// Cycle the instruction was dispatched into the RUU.
    pub dispatch_cycle: u64,
    /// Cycle the instruction issued (valid when `issued`).
    pub issue_cycle: u64,
    /// Cycle execution completes (valid when `issued`).
    pub complete_cycle: u64,
}

impl DynInst {
    /// Creates a fresh record at dispatch time.
    pub fn new(seq: Seq, info: StepInfo, pred: PredictionInfo, dispatch_cycle: u64) -> DynInst {
        DynInst {
            seq,
            info,
            pred,
            pending_deps: 0,
            consumers: Vec::new(),
            issued: false,
            completed: false,
            dispatch_cycle,
            issue_cycle: 0,
            complete_cycle: 0,
        }
    }

    /// The functional-unit class this instruction needs.
    pub fn fu_class(&self) -> FuClass {
        self.info.instr.op.fu_class()
    }

    /// Whether all operands are available and the instruction can be
    /// considered by the scheduler.
    pub fn ready(&self) -> bool {
        !self.issued && !self.completed && self.pending_deps == 0
    }

    /// Whether this is a load or store.
    pub fn is_mem(&self) -> bool {
        self.info.mem.is_some()
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.info.mem.is_some_and(|m| m.is_store)
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_control(&self) -> bool {
        self.info.instr.op.is_control()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::{step, ArchState};
    use reese_isa::{abi::*, Instr, Opcode};
    use reese_mem::Memory;

    fn make(instr: Instr) -> DynInst {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let info = step(&mut s, &instr, &mut m);
        DynInst::new(0, info, PredictionInfo::default(), 0)
    }

    #[test]
    fn classification() {
        assert_eq!(
            make(Instr::rrr(Opcode::Mul, T0, T1, T2)).fu_class(),
            FuClass::IntMulDiv
        );
        assert!(make(Instr::load(Opcode::Ld, T0, SP, 0)).is_mem());
        assert!(!make(Instr::load(Opcode::Ld, T0, SP, 0)).is_store());
        assert!(make(Instr::store(Opcode::Sd, T0, SP, 0)).is_store());
        assert!(make(Instr::branch(Opcode::Beq, T0, T1, 8)).is_control());
    }

    #[test]
    fn readiness() {
        let mut d = make(Instr::rrr(Opcode::Add, T0, T1, T2));
        assert!(d.ready());
        d.pending_deps = 1;
        assert!(!d.ready());
        d.pending_deps = 0;
        d.issued = true;
        assert!(!d.ready(), "issued instructions leave the ready pool");
    }
}
