//! The baseline out-of-order superscalar simulator.

use crate::{
    FetchUnit, Fetched, FuPool, LoadPlan, Lsq, PipelineConfig, PipelineStats, Ruu, SchedulerMode,
    SimError, SimResult, SimStop,
};
use reese_cpu::Emulator;
use reese_isa::{FuClass, Program};
use reese_mem::MemHierarchy;
use reese_trace::{CycleState, NoopObserver, Observer, Stage, Stream, TraceEvent};
use std::collections::VecDeque;

/// Warm microarchitectural state to seed an interval run with: the
/// cache/TLB hierarchy and the branch unit as some earlier execution
/// left them. Produced by a checkpointing fast-forward pass and
/// consumed by [`PipelineSim::run_interval`]; both sides must use the
/// same hierarchy and predictor geometry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarmState {
    /// Cache and TLB state.
    pub hierarchy: reese_mem::HierarchySnapshot,
    /// Branch predictor, BTB, and RAS state.
    pub branch: reese_bpred::BranchSnapshot,
}

/// Cycles without a commit after which the simulator declares a
/// deadlock (an internal invariant violation, not a program property).
const DEADLOCK_HORIZON: u64 = 100_000;

/// The baseline machine: SimpleScalar `sim-outorder` re-imagined in
/// Rust. Fetch → dispatch → out-of-order issue → writeback → in-order
/// commit, with an RUU, an LSQ, a gshare front end, and the paper's
/// Table 1 cache hierarchy.
///
/// # Example
///
/// ```
/// use reese_pipeline::{PipelineConfig, PipelineSim};
///
/// let prog = reese_isa::assemble(
///     "  li t0, 100\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
/// )?;
/// let result = PipelineSim::new(PipelineConfig::starting()).run(&prog)?;
/// assert_eq!(result.committed_instructions(), 202);
/// assert!(result.ipc() > 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSim {
    config: PipelineConfig,
}

impl PipelineSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid
    /// (see [`PipelineConfig::validate`]).
    pub fn new(config: PipelineConfig) -> PipelineSim {
        config.validate();
        PipelineSim { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs a program to its `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Emulation`] if the program misbehaves and
    /// [`SimError::Deadlock`] on an internal invariant violation.
    pub fn run(&self, program: &Program) -> Result<SimResult, SimError> {
        self.run_limit(program, u64::MAX)
    }

    /// Runs a program until `halt` or until `max_instructions` commit.
    ///
    /// # Errors
    ///
    /// See [`PipelineSim::run`].
    pub fn run_limit(
        &self,
        program: &Program,
        max_instructions: u64,
    ) -> Result<SimResult, SimError> {
        self.run_region(program, 0, max_instructions)
    }

    /// Fast-forwards `skip` instructions functionally (SimpleScalar's
    /// `-fastfwd`), then simulates timing until `halt` or until
    /// `max_instructions` commit in the timed region. Architectural
    /// state is warm at the start of measurement; caches, predictors,
    /// and queues are cold, exactly as in SimpleScalar.
    ///
    /// # Errors
    ///
    /// See [`PipelineSim::run`].
    pub fn run_region(
        &self,
        program: &Program,
        skip: u64,
        max_instructions: u64,
    ) -> Result<SimResult, SimError> {
        self.run_observed(program, skip, max_instructions, &mut NoopObserver)
    }

    /// Like [`PipelineSim::run_region`] but with an [`Observer`]
    /// receiving per-instruction lifecycle events and per-cycle state.
    /// Observers are passive — results are bit-identical with any
    /// observer, and with [`NoopObserver`] the hooks compile away.
    ///
    /// # Errors
    ///
    /// See [`PipelineSim::run`].
    pub fn run_observed<O: Observer>(
        &self,
        program: &Program,
        skip: u64,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<SimResult, SimError> {
        let mut m = Machine::new(&self.config, program);
        m.fetch.fast_forward(skip);
        m.run(max_instructions, obs)
    }

    /// Resumes detailed timing mid-program from a checkpoint-restored
    /// emulator (see [`FetchUnit::from_restored`]), simulating until
    /// `halt` or until `max_instructions` commit in this interval.
    /// Caches, predictors, and queues start cold unless `warm` state is
    /// supplied. The returned statistics cover this interval only, so a
    /// sharded driver can stitch intervals with
    /// [`PipelineStats::merge`].
    ///
    /// # Errors
    ///
    /// See [`PipelineSim::run`].
    pub fn run_interval(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        max_instructions: u64,
    ) -> Result<SimResult, SimError> {
        self.run_interval_observed(emulator, warm, max_instructions, &mut NoopObserver)
    }

    /// Like [`PipelineSim::run_interval`] but with an [`Observer`].
    ///
    /// # Errors
    ///
    /// See [`PipelineSim::run`].
    pub fn run_interval_observed<O: Observer>(
        &self,
        emulator: Emulator,
        warm: Option<&WarmState>,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<SimResult, SimError> {
        let mut m = Machine::restored(&self.config, emulator, warm);
        m.run(max_instructions, obs)
    }
}

/// Transient per-run machine state.
struct Machine<'c> {
    cfg: &'c PipelineConfig,
    cycle: u64,
    fetch: FetchUnit,
    fetchq: VecDeque<Fetched>,
    ruu: Ruu,
    lsq: Lsq,
    fu: FuPool,
    hierarchy: MemHierarchy,
    stats: PipelineStats,
    output: Vec<i64>,
    exit_code: Option<u64>,
    last_commit_cycle: u64,
    /// Reused buffers for the per-cycle writeback/issue work lists, so
    /// the steady-state loop never allocates.
    scratch_done: Vec<u64>,
    scratch_ready: Vec<u64>,
}

impl<'c> Machine<'c> {
    fn new(cfg: &'c PipelineConfig, program: &Program) -> Machine<'c> {
        let fetch = FetchUnit::new(program, cfg.predictor.clone());
        Machine::with_front_end(cfg, fetch, MemHierarchy::new(cfg.hierarchy.clone()))
    }

    fn restored(
        cfg: &'c PipelineConfig,
        emulator: Emulator,
        warm: Option<&WarmState>,
    ) -> Machine<'c> {
        let mut fetch = FetchUnit::from_restored(emulator, cfg.predictor.clone());
        let mut hierarchy = MemHierarchy::new(cfg.hierarchy.clone());
        if let Some(w) = warm {
            fetch.import_branch_state(&w.branch);
            hierarchy.import_state(&w.hierarchy);
        }
        Machine::with_front_end(cfg, fetch, hierarchy)
    }

    fn with_front_end(
        cfg: &'c PipelineConfig,
        fetch: FetchUnit,
        hierarchy: MemHierarchy,
    ) -> Machine<'c> {
        Machine {
            cfg,
            cycle: 0,
            fetch,
            fetchq: VecDeque::with_capacity(cfg.fetch_queue_size),
            ruu: Ruu::with_scheduler(cfg.ruu_size, cfg.scheduler),
            lsq: Lsq::new(cfg.lsq_size),
            fu: FuPool::new(cfg.fu),
            hierarchy,
            stats: PipelineStats::default(),
            output: Vec::new(),
            exit_code: None,
            last_commit_cycle: 0,
            scratch_done: Vec::new(),
            scratch_ready: Vec::new(),
        }
    }

    fn run<O: Observer>(
        &mut self,
        max_instructions: u64,
        obs: &mut O,
    ) -> Result<SimResult, SimError> {
        let stop = loop {
            // The cycle hook fires for the *previous* cycle once all its
            // stages have run, so the state it sees is complete; the
            // final cycle's hook fires after the loop breaks.
            if O::ENABLED && self.cycle > 0 {
                obs.cycle(self.cycle, &self.cycle_state());
            }
            self.cycle += 1;
            if self.cfg.scheduler == SchedulerMode::EventDriven {
                self.skip_idle_cycles(obs);
            }

            self.commit(max_instructions, obs);
            if self.exit_code.is_some() {
                break SimStop::Halted;
            }
            if self.stats.committed >= max_instructions {
                break SimStop::InstructionLimit;
            }
            self.writeback(obs);
            self.issue(obs);
            self.dispatch(obs);
            self.do_fetch(obs);

            if self.cfg.max_cycles > 0 && self.cycle >= self.cfg.max_cycles {
                break SimStop::CycleLimit;
            }
            if self.machine_drained() {
                // No more instructions will ever arrive: surface the
                // emulator error that cut the program short.
                if let Some(e) = self.fetch.error() {
                    return Err(SimError::Emulation(e.clone()));
                }
                // A program without halt that ran dry (cannot happen for
                // halting programs) — treat as an instruction limit.
                break SimStop::InstructionLimit;
            }
            if self.cycle - self.last_commit_cycle > DEADLOCK_HORIZON {
                return Err(SimError::Deadlock { cycle: self.cycle });
            }
        };
        if O::ENABLED {
            obs.cycle(self.cycle, &self.cycle_state());
        }
        self.finalise();
        Ok(SimResult {
            stop,
            stats: self.stats.clone(),
            output: std::mem::take(&mut self.output),
            exit_code: self.exit_code,
            state_digest: self.fetch.state_digest(),
        })
    }

    fn machine_drained(&self) -> bool {
        self.fetch.exhausted() && self.fetchq.is_empty() && self.ruu.is_empty()
    }

    /// The cumulative-counter snapshot handed to [`Observer::cycle`].
    /// Only built when an observer is enabled.
    fn cycle_state(&self) -> CycleState {
        CycleState {
            committed: self.stats.committed,
            issued: self.stats.issued,
            r_issued: 0,
            r_missed: 0,
            dispatch_stall_ruu: self.stats.dispatch_stall_ruu_full,
            dispatch_stall_lsq: self.stats.dispatch_stall_lsq_full,
            fetch_empty: self.stats.fetch_queue_empty_cycles,
            fu_busy: self.fu.busy_by_class(),
            sched_ops: self.ruu.sched_ops(),
            ruu_occ: self.ruu.len(),
            lsq_occ: self.lsq.len(),
            rqueue_occ: 0,
            fetchq_occ: self.fetchq.len(),
        }
    }

    /// When this cycle provably does nothing — no committable head, no
    /// completion due, nothing ready to issue, nothing to dispatch, and
    /// fetch dormant — jumps the clock to the next cycle on which any
    /// unit can make progress, bulk-accounting the skipped idle cycles.
    /// The landing cycle then runs through the normal loop body, so the
    /// cycle-limit and deadlock checks fire exactly as in `Scan` mode.
    fn skip_idle_cycles<O: Observer>(&mut self, obs: &mut O) {
        if self.ruu.head().is_some_and(|e| e.completed)
            || self.ruu.has_ready()
            || !self.fetchq.is_empty()
        {
            return;
        }
        if self
            .ruu
            .next_completion_cycle()
            .is_some_and(|t| t <= self.cycle)
        {
            return;
        }
        let fetch_at = self.fetch.next_fetch_cycle(self.cycle);
        if fetch_at == Some(self.cycle) {
            return;
        }
        let target = match (self.ruu.next_completion_cycle(), fetch_at) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // Nothing will ever wake: let the drain/deadlock path run.
            (None, None) => return,
        };
        let mut target = target.min(self.last_commit_cycle + DEADLOCK_HORIZON + 1);
        if self.cfg.max_cycles > 0 {
            target = target.min(self.cfg.max_cycles);
        }
        if target <= self.cycle {
            return;
        }
        // Cycles `self.cycle..target` are no-ops; the only per-cycle
        // bookkeeping they would have done is the empty-queue counter.
        self.stats.fetch_queue_empty_cycles += target - self.cycle;
        if O::ENABLED {
            obs.idle_skip(self.cycle, target, &self.cycle_state());
        }
        self.cycle = target;
    }

    /// In-order commit from the RUU head, up to the machine width.
    fn commit<O: Observer>(&mut self, max_instructions: u64, obs: &mut O) {
        for _ in 0..self.cfg.width {
            if self.stats.committed >= max_instructions {
                return;
            }
            let Some(head) = self.ruu.head() else { return };
            if !head.completed {
                return;
            }
            let e = self.ruu.pop_head();
            self.lsq.remove(e.seq);
            self.fetch.on_commit(1);
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: e.seq,
                    pc: e.info.pc,
                    stage: Stage::Commit,
                    stream: Stream::Primary,
                });
            }
            self.stats.committed += 1;
            self.last_commit_cycle = self.cycle;
            if let Some(v) = e.info.printed {
                self.output.push(v);
            }
            if e.info.halted {
                self.exit_code = Some(e.info.result);
                return;
            }
        }
    }

    /// Completes instructions whose execution finishes this cycle,
    /// waking dependants and resolving control flow.
    fn writeback<O: Observer>(&mut self, obs: &mut O) {
        let mut done = std::mem::take(&mut self.scratch_done);
        match self.cfg.scheduler {
            SchedulerMode::Scan => {
                done.clear();
                done.extend(
                    self.ruu
                        .iter()
                        .filter(|e| e.issued && !e.completed && e.complete_cycle <= self.cycle)
                        .map(|e| e.seq),
                );
            }
            SchedulerMode::EventDriven => self.ruu.take_completions_into(self.cycle, &mut done),
        }
        for seq in done.drain(..) {
            self.ruu.complete(seq);
            // Copy out the two Copy fields needed below rather than
            // cloning the whole entry per completion.
            let e = self.ruu.get(seq).expect("just completed");
            let is_mem = e.is_mem();
            let fetched = e.is_control().then_some(Fetched {
                seq: e.seq,
                info: *e.info,
                pred: e.pred,
            });
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq,
                    pc: e.info.pc,
                    stage: Stage::Writeback,
                    stream: Stream::Primary,
                });
            }
            if is_mem {
                self.lsq.mark_executed(seq);
            }
            if let Some(fetched) = fetched {
                self.fetch
                    .resolve_control(&fetched, self.cycle, self.cfg.mispredict_penalty);
            }
        }
        self.scratch_done = done;
    }

    /// Out-of-order issue: oldest ready instructions first, bounded by
    /// the machine width and functional-unit availability.
    fn issue<O: Observer>(&mut self, obs: &mut O) {
        let mut ready = std::mem::take(&mut self.scratch_ready);
        match self.cfg.scheduler {
            SchedulerMode::Scan => {
                ready.clear();
                ready.extend(self.ruu.ready_seqs());
            }
            SchedulerMode::EventDriven => self.ruu.ready_into(&mut ready),
        }
        let event_driven = self.cfg.scheduler == SchedulerMode::EventDriven;
        let mut issued = 0usize;
        for seq in ready.drain(..) {
            if issued == self.cfg.width {
                break;
            }
            let e = self.ruu.get(seq).expect("ready seq in window");
            let op = e.info.instr.op;
            // O(1) per-class gate (event mode): `class_free` is exactly
            // `try_issue`'s success condition, so a blocked entry skips
            // on one compare instead of a per-unit probe. Stores need an
            // agen ALU and a port together; loads are never gated — a
            // forwarded load issues without any functional unit.
            if event_driven {
                let blocked = match e.info.mem {
                    None => !self.fu.class_free(op.fu_class(), self.cycle),
                    Some(mem) if mem.is_store => {
                        !(self.fu.class_free(FuClass::IntAlu, self.cycle)
                            && self.fu.class_free(FuClass::MemPort, self.cycle))
                    }
                    Some(_) => false,
                };
                if blocked {
                    continue;
                }
            }
            let latency: u64 = if let Some(mem) = e.info.mem {
                if mem.is_store {
                    if !self.fu.try_issue_mem(op, self.cycle) {
                        continue; // no agen ALU + memory port this cycle
                    }
                    1 + u64::from(self.hierarchy.access_data(mem.addr, true))
                } else {
                    match self.lsq.plan_load(seq, mem.addr, mem.width.bytes()) {
                        LoadPlan::Wait { .. } => continue,
                        LoadPlan::Forward { .. } => {
                            // Store-to-load forwarding: address generation
                            // plus the bypass, no cache port needed.
                            self.stats.loads_forwarded += 1;
                            2
                        }
                        LoadPlan::CacheAccess => {
                            if !self.fu.try_issue_mem(op, self.cycle) {
                                continue;
                            }
                            1 + u64::from(self.hierarchy.access_data(mem.addr, false))
                        }
                    }
                }
            } else {
                if !self.fu.try_issue(op, self.cycle) {
                    continue;
                }
                u64::from(op.latency())
            };
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq,
                    pc: e.info.pc,
                    stage: Stage::Issue,
                    stream: Stream::Primary,
                });
            }
            self.ruu.mark_issued(seq, self.cycle, self.cycle + latency);
            issued += 1;
            self.stats.issued += 1;
        }
        self.scratch_ready = ready;
    }

    /// In-order dispatch from the fetch queue into the RUU/LSQ.
    fn dispatch<O: Observer>(&mut self, obs: &mut O) {
        if self.fetchq.is_empty() {
            self.stats.fetch_queue_empty_cycles += 1;
            return;
        }
        for _ in 0..self.cfg.width {
            let Some(front) = self.fetchq.front() else {
                break;
            };
            if self.ruu.is_full() {
                self.stats.dispatch_stall_ruu_full += 1;
                break;
            }
            if front.info.mem.is_some() && self.lsq.is_full() {
                self.stats.dispatch_stall_lsq_full += 1;
                break;
            }
            let f = self.fetchq.pop_front().expect("checked front");
            self.ruu.dispatch(f.seq, f.info, f.pred, self.cycle);
            if O::ENABLED {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: f.seq,
                    pc: f.info.pc,
                    stage: Stage::Dispatch,
                    stream: Stream::Primary,
                });
            }
            if let Some(mem) = f.info.mem {
                self.lsq
                    .insert(f.seq, mem.addr, mem.width.bytes(), mem.is_store);
            }
        }
    }

    /// Fetches new instructions into the fetch queue.
    fn do_fetch<O: Observer>(&mut self, obs: &mut O) {
        let space = self.cfg.fetch_queue_size - self.fetchq.len();
        if space == 0 {
            return;
        }
        let batch = self
            .fetch
            .fetch_cycle(self.cycle, self.cfg.width, space, &mut self.hierarchy);
        if O::ENABLED {
            for f in &batch {
                obs.event(TraceEvent {
                    cycle: self.cycle,
                    seq: f.seq,
                    pc: f.info.pc,
                    stage: Stage::Fetch,
                    stream: Stream::Primary,
                });
            }
        }
        self.fetchq.extend(batch);
    }

    /// Final bookkeeping into the stats structure.
    fn finalise(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.fetched = self.fetch.total_fetched();
        self.stats.branch = self.fetch.branch_stats();
        self.stats.hierarchy = Some(self.hierarchy.stats());
        self.stats.fu_utilisation = FuClass::ALL
            .iter()
            .map(|&c| (c, self.fu.utilisation(c, self.cycle)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;
    use reese_isa::assemble;

    fn run(src: &str) -> SimResult {
        let prog = assemble(src).unwrap();
        PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap()
    }

    #[test]
    fn trivial_program_halts() {
        let r = run("  li t0, 1\n  halt\n");
        assert_eq!(r.stop, SimStop::Halted);
        assert_eq!(r.committed_instructions(), 2);
        assert!(r.cycles() >= 2);
    }

    #[test]
    fn loop_matches_emulator_instruction_count() {
        let src = "  li t0, 50\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n";
        let prog = assemble(src).unwrap();
        let emu = Emulator::new(&prog).run(10_000).unwrap();
        let sim = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap();
        assert_eq!(sim.committed_instructions(), emu.instructions);
        assert_eq!(sim.state_digest, emu.state_digest);
    }

    #[test]
    fn output_collected_at_commit() {
        let r = run("  li a0, 1\n  print a0\n  li a0, 2\n  print a0\n  halt\n");
        assert_eq!(r.output, vec![1, 2]);
        assert_eq!(r.exit_code, Some(2));
    }

    #[test]
    fn dependent_chain_is_serialised() {
        // 20 dependent adds cannot exceed 1 IPC through the adder chain.
        let mut src = String::from("  li t0, 1\n");
        for _ in 0..20 {
            src.push_str("  add t0, t0, t0\n");
        }
        src.push_str("  halt\n");
        let r = run(&src);
        assert!(
            r.cycles() >= 20,
            "dependence chain must serialise, got {} cycles",
            r.cycles()
        );
    }

    #[test]
    fn independent_ops_reach_high_ipc() {
        // A hot loop of independent adds: once the i-cache warms and the
        // loop branch trains, IPC should comfortably exceed 1.5.
        let r = run("  li s0, 200\n\
             loop: addi t0, t0, 1\n  addi t1, t1, 1\n  addi t2, t2, 1\n\
             \n  addi s0, s0, -1\n  bnez s0, loop\n  halt\n");
        assert!(r.ipc() > 1.5, "independent loop IPC {:.2} too low", r.ipc());
    }

    #[test]
    fn cold_straight_line_code_pays_icache_misses() {
        // 400 straight-line instructions never reuse an i-cache line, so
        // IPC is dominated by cold misses — a real effect the hierarchy
        // must charge.
        let mut src = String::from("  li t0, 1\n");
        for _ in 0..100 {
            src.push_str(
                "  addi t0, t0, 1\n  addi t1, t1, 1\n  addi t2, t2, 1\n  addi t3, t3, 1\n",
            );
        }
        src.push_str("  halt\n");
        let r = run(&src);
        assert!(
            r.ipc() < 1.0,
            "cold-code IPC {:.2} suspiciously high",
            r.ipc()
        );
        let h = r.stats.hierarchy.unwrap();
        assert!(h.l1i.misses >= 100, "every line is a cold miss");
    }

    #[test]
    fn memory_program_correct() {
        let r = run(
            "  la a0, arr\n  li t0, 0\n  li t1, 10\n\
             loop: slli t2, t0, 3\n  add t3, a0, t2\n  sd t0, 0(t3)\n  addi t0, t0, 1\n  bne t0, t1, loop\n\
             \n  ld a1, 72(a0)\n  print a1\n  halt\n  .data\narr: .space 80\n",
        );
        assert_eq!(r.output, vec![9]);
    }

    #[test]
    fn store_load_forwarding_counted() {
        let r = run("  li t0, 7\n  sd t0, -8(sp)\n  ld t1, -8(sp)\n  print t1\n  halt\n");
        assert_eq!(r.output, vec![7]);
        assert!(
            r.stats.loads_forwarded >= 1,
            "the reload must forward from the store"
        );
    }

    #[test]
    fn division_stalls_ruu() {
        // Long dependent division chain: low IPC expected.
        let r = run(
            "  li t0, 1000000\n  li t1, 3\n\
             \n  div t2, t0, t1\n  div t2, t2, t1\n  div t2, t2, t1\n  div t2, t2, t1\n  print t2\n  halt\n",
        );
        assert_eq!(r.output, vec![12345]);
        assert!(
            r.cycles() > 80,
            "four dependent 20-cycle divides, got {}",
            r.cycles()
        );
    }

    #[test]
    fn instruction_limit_stops_run() {
        let prog = assemble("loop: addi t0, t0, 1\n  j loop\n  halt\n").unwrap();
        let r = PipelineSim::new(PipelineConfig::starting())
            .run_limit(&prog, 100)
            .unwrap();
        assert_eq!(r.stop, SimStop::InstructionLimit);
        assert!(r.committed_instructions() >= 100);
    }

    #[test]
    fn cycle_limit_stops_run() {
        let prog = assemble("loop: addi t0, t0, 1\n  j loop\n  halt\n").unwrap();
        let mut cfg = PipelineConfig::starting();
        cfg.max_cycles = 1000;
        let r = PipelineSim::new(cfg).run(&prog).unwrap();
        assert_eq!(r.stop, SimStop::CycleLimit);
        assert_eq!(r.cycles(), 1000);
    }

    #[test]
    fn wild_jump_is_an_error() {
        let prog = assemble("  li t0, 0x900000\n  jalr x0, 0(t0)\n  halt\n").unwrap();
        let err = PipelineSim::new(PipelineConfig::starting())
            .run(&prog)
            .unwrap_err();
        assert!(matches!(err, SimError::Emulation(_)));
    }

    #[test]
    fn determinism() {
        let src =
            "  li t0, 500\nloop: addi t0, t0, -1\n  mul t1, t0, t0\n  bnez t0, loop\n  halt\n";
        let a = run(src);
        let b = run(src);
        assert_eq!(a, b);
    }

    #[test]
    fn scan_and_event_driven_agree() {
        // The event-driven scheduler is an implementation change only:
        // every statistic must match the per-cycle scan bit for bit.
        let srcs = [
            "  li t0, 200\nloop: addi t0, t0, -1\n  mul t1, t0, t0\n  bnez t0, loop\n  halt\n",
            "  li t0, 9\n  li t1, 3\n  div t2, t0, t1\n  div t2, t2, t1\n  print t2\n  halt\n",
            "  li t0, 7\n  sd t0, -8(sp)\n  ld t1, -8(sp)\n  print t1\n  halt\n",
        ];
        for src in srcs {
            let prog = assemble(src).unwrap();
            let scan =
                PipelineSim::new(PipelineConfig::starting().with_scheduler(SchedulerMode::Scan))
                    .run(&prog)
                    .unwrap();
            let event = PipelineSim::new(
                PipelineConfig::starting().with_scheduler(SchedulerMode::EventDriven),
            )
            .run(&prog)
            .unwrap();
            assert_eq!(scan, event, "modes diverged on {src:?}");
        }
    }

    #[test]
    fn idle_skip_preserves_cycle_limit_semantics() {
        // A long divide chain leaves many cycles with nothing to do;
        // the skipping clock must still stop on the exact same cycle.
        let src = "  li t0, 1000000\n  li t1, 3\n  div t2, t0, t1\n  div t2, t2, t1\n  div t2, t2, t1\n  halt\n";
        let prog = assemble(src).unwrap();
        for limit in [10, 25, 40] {
            let mut scan_cfg = PipelineConfig::starting().with_scheduler(SchedulerMode::Scan);
            scan_cfg.max_cycles = limit;
            let mut event_cfg =
                PipelineConfig::starting().with_scheduler(SchedulerMode::EventDriven);
            event_cfg.max_cycles = limit;
            let a = PipelineSim::new(scan_cfg).run(&prog).unwrap();
            let b = PipelineSim::new(event_cfg).run(&prog).unwrap();
            assert_eq!(a, b, "cycle limit {limit}");
            assert_eq!(b.stop, SimStop::CycleLimit);
        }
    }

    #[test]
    fn stats_populated() {
        let r = run("  li t0, 30\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n");
        assert!(r.stats.fetched >= r.stats.committed);
        assert!(r.stats.issued >= r.stats.committed);
        assert!(r.stats.branch.branch_lookups >= 30);
        assert!(r.stats.hierarchy.is_some());
        assert_eq!(r.stats.fu_utilisation.len(), 5);
    }

    #[test]
    fn subroutine_program() {
        let r = run("        .entry main\n\
             square: mul a0, a0, a0\n\
                     ret\n\
             main:   li a0, 9\n\
                     call square\n\
                     print a0\n\
                     halt\n");
        assert_eq!(r.output, vec![81]);
    }
}
