//! The Register Update Unit.

use crate::{DynInst, EventWheel, PredictionInfo, ReadyRing, SchedulerMode, Seq};
use reese_cpu::StepInfo;
use reese_isa::NUM_REGS;
use std::collections::VecDeque;

/// The Register Update Unit: SimpleScalar's combined reorder buffer and
/// reservation stations.
///
/// Instructions dispatch into the tail in program order, issue out of
/// order when their operands resolve, and leave from the head in program
/// order. Register renaming is a last-writer map over the 64-entry
/// architectural register space; wake-up is push-based through per-entry
/// consumer lists.
///
/// The paper identifies the RUU as the central bottleneck ("an RUU-based
/// microprocessor cannot attain 2 IPC on a regular basis… a high-latency
/// instruction can reach the head of the RUU and cause other
/// instructions to back up behind it"), which is why Figures 3 and 7
/// sweep its size.
#[derive(Debug, Clone)]
pub struct Ruu {
    entries: VecDeque<DynInst>,
    head_seq: Seq,
    capacity: usize,
    rename: [Option<Seq>; NUM_REGS as usize],
    mode: SchedulerMode,
    /// Sequence numbers whose operands have all resolved but which have
    /// not issued ([`SchedulerMode::EventDriven`] only). Ascending
    /// iteration (a rotated bitmap scan from `head_seq`) is
    /// oldest-first, the same order the [`Ruu::ready_seqs`] scan
    /// produces.
    ready: ReadyRing,
    /// Completion event wheel: issued-but-incomplete instructions keyed
    /// by `(complete_cycle, seq)` ([`SchedulerMode::EventDriven`] only).
    /// All latencies are at least one cycle, so at any writeback every
    /// pending event is for the current or a future cycle — popping the
    /// events due *now* yields them in ascending seq order, identical to
    /// the full-window scan.
    completions: EventWheel,
    /// Scheduler bookkeeping operations performed so far: ReadyRing
    /// inserts/removes plus EventWheel pushes/pops. Stays 0 under
    /// [`SchedulerMode::Scan`], which maintains neither structure — the
    /// metrics sampler reads this to expose the event-driven
    /// scheduler's bookkeeping cost per cycle.
    sched_ops: u64,
}

impl Ruu {
    /// Creates an empty RUU with `capacity` entries and the default
    /// (event-driven) scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ruu {
        Ruu::with_scheduler(capacity, SchedulerMode::default())
    }

    /// Creates an empty RUU with an explicit scheduler mode. In
    /// [`SchedulerMode::Scan`] the incremental structures are not
    /// maintained at all, so that mode measures the original
    /// implementation faithfully.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_scheduler(capacity: usize, mode: SchedulerMode) -> Ruu {
        assert!(capacity > 0, "RUU capacity must be positive");
        Ruu {
            entries: VecDeque::with_capacity(capacity),
            head_seq: 0,
            capacity,
            rename: [None; NUM_REGS as usize],
            mode,
            ready: ReadyRing::new(capacity),
            completions: EventWheel::new(),
            sched_ops: 0,
        }
    }

    /// Scheduler bookkeeping operations (ReadyRing + EventWheel)
    /// performed so far; 0 under [`SchedulerMode::Scan`].
    pub fn sched_ops(&self) -> u64 {
        self.sched_ops
    }

    fn event_driven(&self) -> bool {
        self.mode == SchedulerMode::EventDriven
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the RUU is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the RUU is full (dispatch must stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn index_of(&self, seq: Seq) -> Option<usize> {
        if self.entries.is_empty() || seq < self.head_seq {
            return None;
        }
        let idx = (seq - self.head_seq) as usize;
        if idx < self.entries.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Looks up an in-flight instruction by sequence number.
    pub fn get(&self, seq: Seq) -> Option<&DynInst> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut DynInst> {
        self.index_of(seq).map(move |i| &mut self.entries[i])
    }

    /// Dispatches an instruction into the tail, wiring its register
    /// dependences through the rename map.
    ///
    /// # Panics
    ///
    /// Panics if the RUU is full or `seq` is not the next sequence
    /// number in program order.
    pub fn dispatch(&mut self, seq: Seq, info: StepInfo, pred: PredictionInfo, cycle: u64) {
        assert!(!self.is_full(), "dispatch into a full RUU");
        if let Some(last) = self.entries.back() {
            assert_eq!(seq, last.seq + 1, "dispatch must follow program order");
        } else {
            self.head_seq = seq;
        }
        let mut inst = DynInst::new(seq, info, pred, cycle);
        let mut producers: [Option<Seq>; 2] = [None, None];
        for (slot, src) in info.instr.sources().enumerate() {
            producers[slot] = self.rename[src.raw() as usize];
        }
        // An instruction reading the same pending producer through both
        // operands waits on it once.
        if producers[0].is_some() && producers[0] == producers[1] {
            producers[1] = None;
        }
        for producer_seq in producers.into_iter().flatten() {
            if let Some(idx) = self.index_of(producer_seq) {
                if !self.entries[idx].completed {
                    self.entries[idx].consumers.push(seq);
                    inst.pending_deps += 1;
                }
            }
        }
        if let Some(rd) = info.instr.dest() {
            self.rename[rd.raw() as usize] = Some(seq);
        }
        if self.event_driven() && inst.ready() {
            self.ready.insert(seq);
            self.sched_ops += 1;
        }
        self.entries.push_back(inst);
    }

    /// Marks `seq` complete and wakes its consumers.
    ///
    /// Consumers that have already left the window (only possible after
    /// a flush) are silently skipped.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    pub fn complete(&mut self, seq: Seq) {
        let idx = self
            .index_of(seq)
            .expect("completing an instruction not in the RUU");
        self.entries[idx].completed = true;
        let consumers = std::mem::take(&mut self.entries[idx].consumers);
        for c in consumers {
            if let Some(ci) = self.index_of(c) {
                debug_assert!(self.entries[ci].pending_deps > 0);
                self.entries[ci].pending_deps -= 1;
                if self.event_driven() && self.entries[ci].ready() {
                    self.ready.insert(c);
                    self.sched_ops += 1;
                }
            }
        }
    }

    /// Records that `seq` issued this cycle, leaving the ready pool and
    /// scheduling its completion event.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    pub fn mark_issued(&mut self, seq: Seq, issue_cycle: u64, complete_cycle: u64) {
        let idx = self.index_of(seq).expect("issuing a seq not in the RUU");
        let e = &mut self.entries[idx];
        debug_assert!(e.ready(), "only ready instructions issue");
        e.issued = true;
        e.issue_cycle = issue_cycle;
        e.complete_cycle = complete_cycle;
        if self.event_driven() {
            self.ready.remove(seq);
            self.completions.push(complete_cycle, seq);
            self.sched_ops += 2;
        }
    }

    /// Like [`Ruu::take_completions`] but reusing a caller-owned buffer
    /// (cleared first), so the per-cycle writeback loop allocates
    /// nothing.
    pub fn take_completions_into(&mut self, now: u64, out: &mut Vec<Seq>) {
        self.completions.take_due_into(now, out);
        self.sched_ops += out.len() as u64;
    }

    /// Pops and returns the seqs of every scheduled completion due at or
    /// before `now`, in `(complete_cycle, seq)` order — which, because
    /// every latency is at least one cycle, is ascending seq order
    /// within a writeback. Event-driven mode only (empty under
    /// [`SchedulerMode::Scan`]).
    pub fn take_completions(&mut self, now: u64) -> Vec<Seq> {
        let due = self.completions.take_due(now);
        self.sched_ops += due.len() as u64;
        due
    }

    /// Cycle of the earliest scheduled completion, if any (event-driven
    /// mode only).
    pub fn next_completion_cycle(&mut self) -> Option<u64> {
        self.completions.next_cycle()
    }

    /// Whether any instruction is ready to issue (event-driven mode
    /// only; always `false` under [`SchedulerMode::Scan`]).
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Snapshot of the ready set, oldest first (event-driven mode only).
    /// A snapshot is required because issuing mutates the set.
    pub fn ready_snapshot(&self) -> Vec<Seq> {
        let mut out = Vec::with_capacity(self.ready.len());
        self.ready_into_inner(&mut out);
        out
    }

    /// Like [`Ruu::ready_snapshot`] but reusing a caller-owned buffer
    /// (cleared first), so the per-cycle issue loop allocates nothing.
    pub fn ready_into(&self, out: &mut Vec<Seq>) {
        out.clear();
        self.ready_into_inner(out);
    }

    fn ready_into_inner(&self, out: &mut Vec<Seq>) {
        self.ready.collect_from(self.head_seq, usize::MAX, out);
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<&DynInst> {
        self.entries.front()
    }

    /// Removes the head (for commit or migration to the R-stream Queue).
    ///
    /// # Panics
    ///
    /// Panics if the head has not completed — callers must check first.
    pub fn pop_head(&mut self) -> DynInst {
        let e = self.entries.pop_front().expect("pop from empty RUU");
        assert!(e.completed, "popping an incomplete head");
        self.head_seq = e.seq + 1;
        // Retire the rename-map entry if this instruction is still the
        // architecturally last writer.
        if let Some(rd) = e.info.instr.dest() {
            if self.rename[rd.raw() as usize] == Some(e.seq) {
                self.rename[rd.raw() as usize] = None;
            }
        }
        e
    }

    /// Number of contiguous completed instructions starting at
    /// `start_seq`, capped at `max`. Entries are seq-contiguous, so one
    /// forward walk sizes the whole batch the REESE migrate stage can
    /// drain this cycle without re-probing each sequence number.
    pub fn completed_run_len(&self, start_seq: Seq, max: usize) -> usize {
        let Some(start) = self.index_of(start_seq) else {
            return 0;
        };
        self.entries
            .iter()
            .skip(start)
            .take(max)
            .take_while(|e| e.completed)
            .count()
    }

    /// Sequence numbers of instructions ready to issue, oldest first.
    pub fn ready_seqs(&self) -> impl Iterator<Item = Seq> + '_ {
        self.entries.iter().filter(|e| e.ready()).map(|e| e.seq)
    }

    /// Iterates over all in-flight instructions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DynInst> {
        self.entries.iter()
    }

    /// Squashes every in-flight instruction and clears renaming.
    ///
    /// The ready set and the completion wheel are drained too: after a
    /// detection flush the front end re-delivers the *same* sequence
    /// numbers, so a stale event surviving here would fire against an
    /// unrelated re-dispatched instruction.
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.rename = [None; NUM_REGS as usize];
        self.ready.clear();
        self.completions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::{step, ArchState};
    use reese_isa::{abi::*, Instr, Opcode};
    use reese_mem::Memory;

    /// Executes a tiny straight-line program and dispatches it into an RUU.
    fn dispatch_chain(ruu: &mut Ruu, instrs: &[Instr]) -> Vec<StepInfo> {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let mut infos = Vec::new();
        for (i, instr) in instrs.iter().enumerate() {
            let info = step(&mut s, instr, &mut m);
            ruu.dispatch(i as Seq, info, PredictionInfo::default(), 0);
            infos.push(info);
        }
        infos
    }

    #[test]
    fn raw_dependence_tracked() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1), // seq 0
                Instr::rrr(Opcode::Add, T1, T0, T0), // seq 1 depends on 0
                Instr::rrr(Opcode::Add, T2, T1, T0), // seq 2 depends on 0 and 1
            ],
        );
        assert_eq!(ruu.get(0).unwrap().pending_deps, 0);
        assert_eq!(ruu.get(1).unwrap().pending_deps, 1);
        assert_eq!(ruu.get(2).unwrap().pending_deps, 2);
        assert_eq!(ruu.ready_seqs().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn wakeup_on_complete() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rrr(Opcode::Add, T1, T0, T0),
            ],
        );
        ruu.complete(0);
        assert!(ruu.get(0).unwrap().completed);
        assert_eq!(ruu.get(1).unwrap().pending_deps, 0);
        assert_eq!(ruu.ready_seqs().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn waw_renaming_last_writer_wins() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),   // seq 0 writes t0
                Instr::rri(Opcode::Li, T0, ZERO, 2),   // seq 1 rewrites t0
                Instr::rrr(Opcode::Add, T1, T0, ZERO), // seq 2 must depend on seq 1 only
            ],
        );
        assert_eq!(ruu.get(2).unwrap().pending_deps, 1);
        assert!(ruu.get(1).unwrap().consumers.contains(&2));
        assert!(ruu.get(0).unwrap().consumers.is_empty());
    }

    #[test]
    fn completed_producer_creates_no_dependence() {
        let mut ruu = Ruu::new(8);
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let li = Instr::rri(Opcode::Li, T0, ZERO, 5);
        let add = Instr::rrr(Opcode::Add, T1, T0, T0);
        let i0 = step(&mut s, &li, &mut m);
        ruu.dispatch(0, i0, PredictionInfo::default(), 0);
        ruu.complete(0);
        let i1 = step(&mut s, &add, &mut m);
        ruu.dispatch(1, i1, PredictionInfo::default(), 0);
        assert_eq!(ruu.get(1).unwrap().pending_deps, 0);
    }

    #[test]
    fn pop_head_in_order() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rri(Opcode::Li, T1, ZERO, 2),
            ],
        );
        ruu.complete(0);
        let e = ruu.pop_head();
        assert_eq!(e.seq, 0);
        assert_eq!(ruu.head().unwrap().seq, 1);
        assert_eq!(ruu.len(), 1);
    }

    #[test]
    #[should_panic(expected = "incomplete head")]
    fn pop_incomplete_head_panics() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(&mut ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
        ruu.pop_head();
    }

    #[test]
    #[should_panic(expected = "full RUU")]
    fn dispatch_into_full_panics() {
        let mut ruu = Ruu::new(1);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rri(Opcode::Li, T1, ZERO, 2),
            ],
        );
    }

    #[test]
    fn flush_clears_everything() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rrr(Opcode::Add, T1, T0, T0),
            ],
        );
        ruu.flush_all();
        assert!(ruu.is_empty());
        // After a flush, re-dispatch from seq 0 with fresh renaming.
        dispatch_chain(&mut ruu, &[Instr::rrr(Opcode::Add, T2, T0, T1)]);
        assert_eq!(
            ruu.get(0).unwrap().pending_deps,
            0,
            "stale renaming must be gone"
        );
    }

    #[test]
    fn rename_entry_cleared_on_pop() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(&mut ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
        ruu.complete(0);
        ruu.pop_head();
        // A later reader of t0 must not depend on the departed writer.
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let info = step(&mut s, &Instr::rrr(Opcode::Add, T1, T0, T0), &mut m);
        ruu.dispatch(1, info, PredictionInfo::default(), 0);
        assert_eq!(ruu.get(1).unwrap().pending_deps, 0);
    }

    #[test]
    fn ready_set_tracks_dispatch_and_wakeup() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1), // seq 0: ready at dispatch
                Instr::rrr(Opcode::Add, T1, T0, T0), // seq 1: waits on 0
            ],
        );
        assert!(ruu.has_ready());
        assert_eq!(ruu.ready_snapshot(), vec![0]);
        assert_eq!(
            ruu.ready_snapshot(),
            ruu.ready_seqs().collect::<Vec<_>>(),
            "set and scan must agree"
        );
        ruu.mark_issued(0, 1, 2);
        assert!(!ruu.has_ready(), "issued instructions leave the set");
        ruu.complete(0);
        assert_eq!(ruu.ready_snapshot(), vec![1], "wake-up inserts consumers");
        assert_eq!(ruu.ready_snapshot(), ruu.ready_seqs().collect::<Vec<_>>());
    }

    #[test]
    fn completion_wheel_fires_in_cycle_then_seq_order() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rri(Opcode::Li, T1, ZERO, 2),
                Instr::rri(Opcode::Li, T2, ZERO, 3),
            ],
        );
        ruu.mark_issued(2, 1, 2);
        ruu.mark_issued(0, 1, 4);
        ruu.mark_issued(1, 1, 2);
        assert_eq!(ruu.next_completion_cycle(), Some(2));
        assert_eq!(ruu.take_completions(1), Vec::<Seq>::new());
        assert_eq!(ruu.take_completions(2), vec![1, 2]);
        assert_eq!(ruu.next_completion_cycle(), Some(4));
        assert_eq!(ruu.take_completions(10), vec![0]);
        assert_eq!(ruu.next_completion_cycle(), None);
    }

    #[test]
    fn flush_drains_ready_set_and_wheel() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rri(Opcode::Li, T1, ZERO, 2),
            ],
        );
        ruu.mark_issued(0, 1, 5);
        assert!(ruu.has_ready());
        assert_eq!(ruu.next_completion_cycle(), Some(5));
        ruu.flush_all();
        assert!(!ruu.has_ready(), "no stale ready seqs after a flush");
        assert_eq!(
            ruu.next_completion_cycle(),
            None,
            "no stale events may fire against re-delivered seqs"
        );
    }

    #[test]
    fn scan_mode_skips_incremental_structures() {
        let mut ruu = Ruu::with_scheduler(8, SchedulerMode::Scan);
        dispatch_chain(&mut ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
        assert!(!ruu.has_ready(), "scan mode maintains no ready set");
        assert_eq!(ruu.ready_seqs().collect::<Vec<_>>(), vec![0]);
        ruu.mark_issued(0, 1, 2);
        assert_eq!(ruu.next_completion_cycle(), None, "no wheel in scan mode");
        let e = ruu.get(0).unwrap();
        assert!(e.issued);
        assert_eq!((e.issue_cycle, e.complete_cycle), (1, 2));
    }

    #[test]
    fn get_rejects_departed_and_future_seqs() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(&mut ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
        assert!(ruu.get(0).is_some());
        assert!(ruu.get(1).is_none());
        ruu.complete(0);
        ruu.pop_head();
        assert!(ruu.get(0).is_none());
    }
}
