//! The Register Update Unit.

use crate::{
    DynInst, EventWheel, InstArena, InstView, PredictionInfo, ReadyRing, SchedulerMode, Seq,
};
use reese_cpu::StepInfo;
use reese_isa::NUM_REGS;
use std::collections::VecDeque;

/// In-flight instruction storage, selected by scheduler mode.
///
/// Scan mode keeps the original array-of-structures `VecDeque<DynInst>`
/// so the full-window rescan keeps measuring the unoptimised
/// implementation; event-driven mode stores the same state in the
/// structure-of-arrays [`InstArena`]. Both expose instructions through
/// [`InstView`], so the machines above are layout-blind.
// One Window exists per machine, so the inline-size gap between the
// variants (the arena's dozen Vec headers vs one deque header) is a few
// hundred one-off bytes; boxing would buy them back by putting a pointer
// chase on every scheduler access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Window {
    Scan(VecDeque<DynInst>),
    Event(InstArena),
}

/// Iterator over either storage layout without boxing (the per-cycle
/// scan loops call [`Ruu::ready_seqs`]; a heap allocation per call
/// would bill the control arm for the arena's bookkeeping).
enum EitherIter<L, R> {
    Scan(L),
    Event(R),
}

impl<T, L: Iterator<Item = T>, R: Iterator<Item = T>> Iterator for EitherIter<L, R> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::Scan(it) => it.next(),
            EitherIter::Event(it) => it.next(),
        }
    }
}

/// The Register Update Unit: SimpleScalar's combined reorder buffer and
/// reservation stations.
///
/// Instructions dispatch into the tail in program order, issue out of
/// order when their operands resolve, and leave from the head in program
/// order. Register renaming is a last-writer map over the 64-entry
/// architectural register space; wake-up is push-based through per-entry
/// consumer lists.
///
/// The paper identifies the RUU as the central bottleneck ("an RUU-based
/// microprocessor cannot attain 2 IPC on a regular basis… a high-latency
/// instruction can reach the head of the RUU and cause other
/// instructions to back up behind it"), which is why Figures 3 and 7
/// sweep its size.
#[derive(Debug, Clone)]
pub struct Ruu {
    window: Window,
    head_seq: Seq,
    capacity: usize,
    rename: [Option<Seq>; NUM_REGS as usize],
    /// Sequence numbers whose operands have all resolved but which have
    /// not issued ([`SchedulerMode::EventDriven`] only). Ascending
    /// iteration (a rotated bitmap scan from `head_seq`) is
    /// oldest-first, the same order the [`Ruu::ready_seqs`] scan
    /// produces.
    ready: ReadyRing,
    /// Completion event wheel: issued-but-incomplete instructions keyed
    /// by `(complete_cycle, seq)` ([`SchedulerMode::EventDriven`] only).
    /// All latencies are at least one cycle, so at any writeback every
    /// pending event is for the current or a future cycle — popping the
    /// events due *now* yields them in ascending seq order, identical to
    /// the full-window scan.
    completions: EventWheel,
    /// Scheduler bookkeeping operations performed so far: ReadyRing
    /// inserts/removes plus EventWheel pushes/pops. Stays 0 under
    /// [`SchedulerMode::Scan`], which maintains neither structure — the
    /// metrics sampler reads this to expose the event-driven
    /// scheduler's bookkeeping cost per cycle.
    sched_ops: u64,
    /// Reused wake-up buffer for the arena path (no per-complete
    /// allocation).
    wake_scratch: Vec<Seq>,
}

impl Ruu {
    /// Creates an empty RUU with `capacity` entries and the default
    /// (event-driven) scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ruu {
        Ruu::with_scheduler(capacity, SchedulerMode::default())
    }

    /// Creates an empty RUU with an explicit scheduler mode. In
    /// [`SchedulerMode::Scan`] the incremental structures are not
    /// maintained at all — and instruction state keeps the original
    /// array-of-structures layout — so that mode measures the original
    /// implementation faithfully.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_scheduler(capacity: usize, mode: SchedulerMode) -> Ruu {
        assert!(capacity > 0, "RUU capacity must be positive");
        let window = match mode {
            SchedulerMode::Scan => Window::Scan(VecDeque::with_capacity(capacity)),
            SchedulerMode::EventDriven => Window::Event(InstArena::new(capacity)),
        };
        Ruu {
            window,
            head_seq: 0,
            capacity,
            rename: [None; NUM_REGS as usize],
            ready: ReadyRing::new(capacity),
            completions: EventWheel::new(),
            sched_ops: 0,
            wake_scratch: Vec::new(),
        }
    }

    /// Scheduler bookkeeping operations (ReadyRing + EventWheel)
    /// performed so far; 0 under [`SchedulerMode::Scan`].
    pub fn sched_ops(&self) -> u64 {
        self.sched_ops
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        match &self.window {
            Window::Scan(entries) => entries.len(),
            Window::Event(arena) => arena.len(),
        }
    }

    /// Whether the RUU is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the RUU is full (dispatch must stall).
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Position of `seq` in a seq-contiguous window starting at
    /// `head_seq` with `len` live entries (free function so the scan
    /// arms can index while the window is mutably borrowed).
    fn index_in(head_seq: Seq, len: usize, seq: Seq) -> Option<usize> {
        if len == 0 || seq < head_seq {
            return None;
        }
        let idx = (seq - head_seq) as usize;
        (idx < len).then_some(idx)
    }

    fn index_of(&self, seq: Seq) -> Option<usize> {
        Ruu::index_in(self.head_seq, self.len(), seq)
    }

    /// Looks up an in-flight instruction by sequence number.
    pub fn get(&self, seq: Seq) -> Option<InstView<'_>> {
        match &self.window {
            Window::Scan(entries) => self.index_of(seq).map(|i| entries[i].view()),
            Window::Event(arena) => arena.view(seq),
        }
    }

    /// Dispatches an instruction into the tail, wiring its register
    /// dependences through the rename map.
    ///
    /// # Panics
    ///
    /// Panics if the RUU is full or `seq` is not the next sequence
    /// number in program order.
    pub fn dispatch(&mut self, seq: Seq, info: StepInfo, pred: PredictionInfo, cycle: u64) {
        assert!(!self.is_full(), "dispatch into a full RUU");
        if self.is_empty() {
            self.head_seq = seq;
        }
        let mut producers: [Option<Seq>; 2] = [None, None];
        for (slot, src) in info.instr.sources().enumerate() {
            producers[slot] = self.rename[src.raw() as usize];
        }
        // An instruction reading the same pending producer through both
        // operands waits on it once.
        if producers[0].is_some() && producers[0] == producers[1] {
            producers[1] = None;
        }
        match &mut self.window {
            Window::Scan(entries) => {
                if let Some(last) = entries.back() {
                    assert_eq!(seq, last.seq + 1, "dispatch must follow program order");
                }
                let mut inst = DynInst::new(seq, info, pred, cycle);
                for producer_seq in producers.into_iter().flatten() {
                    if let Some(idx) = Ruu::index_in(self.head_seq, entries.len(), producer_seq) {
                        if !entries[idx].completed {
                            entries[idx].consumers.push(seq);
                            inst.pending_deps += 1;
                        }
                    }
                }
                entries.push_back(inst);
            }
            Window::Event(arena) => {
                arena.dispatch(seq, info, pred, cycle);
                for producer_seq in producers.into_iter().flatten() {
                    if arena.contains(producer_seq) && !arena.is_completed(producer_seq) {
                        arena.add_consumer(producer_seq, seq);
                        arena.inc_pending(seq);
                    }
                }
                if arena.is_ready(seq) {
                    self.ready.insert(seq);
                    self.sched_ops += 1;
                }
            }
        }
        if let Some(rd) = info.instr.dest() {
            self.rename[rd.raw() as usize] = Some(seq);
        }
    }

    /// Marks `seq` complete and wakes its consumers.
    ///
    /// Consumers that have already left the window (only possible after
    /// a flush) are silently skipped.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    pub fn complete(&mut self, seq: Seq) {
        match &mut self.window {
            Window::Scan(entries) => {
                let idx = Ruu::index_in(self.head_seq, entries.len(), seq)
                    .expect("completing an instruction not in the RUU");
                entries[idx].completed = true;
                let consumers = std::mem::take(&mut entries[idx].consumers);
                for c in consumers {
                    if let Some(ci) = Ruu::index_in(self.head_seq, entries.len(), c) {
                        debug_assert!(entries[ci].pending_deps > 0);
                        entries[ci].pending_deps -= 1;
                    }
                }
            }
            Window::Event(arena) => {
                assert!(
                    arena.contains(seq),
                    "completing an instruction not in the RUU"
                );
                let mut woken = std::mem::take(&mut self.wake_scratch);
                woken.clear();
                arena.complete_into(seq, &mut woken);
                for &c in &woken {
                    if arena.contains(c) && arena.dec_pending(c) {
                        self.ready.insert(c);
                        self.sched_ops += 1;
                    }
                }
                self.wake_scratch = woken;
            }
        }
    }

    /// Records that `seq` issued this cycle, leaving the ready pool and
    /// scheduling its completion event.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    pub fn mark_issued(&mut self, seq: Seq, issue_cycle: u64, complete_cycle: u64) {
        match &mut self.window {
            Window::Scan(entries) => {
                let idx = Ruu::index_in(self.head_seq, entries.len(), seq)
                    .expect("issuing a seq not in the RUU");
                let e = &mut entries[idx];
                debug_assert!(e.ready(), "only ready instructions issue");
                e.issued = true;
                e.issue_cycle = issue_cycle;
                e.complete_cycle = complete_cycle;
            }
            Window::Event(arena) => {
                assert!(arena.contains(seq), "issuing a seq not in the RUU");
                arena.mark_issued(seq, issue_cycle, complete_cycle);
                self.ready.remove(seq);
                self.completions.push(complete_cycle, seq);
                self.sched_ops += 2;
            }
        }
    }

    /// Like [`Ruu::take_completions`] but reusing a caller-owned buffer
    /// (cleared first), so the per-cycle writeback loop allocates
    /// nothing.
    pub fn take_completions_into(&mut self, now: u64, out: &mut Vec<Seq>) {
        self.completions.take_due_into(now, out);
        self.sched_ops += out.len() as u64;
    }

    /// Pops and returns the seqs of every scheduled completion due at or
    /// before `now`, in `(complete_cycle, seq)` order — which, because
    /// every latency is at least one cycle, is ascending seq order
    /// within a writeback. Event-driven mode only (empty under
    /// [`SchedulerMode::Scan`]).
    pub fn take_completions(&mut self, now: u64) -> Vec<Seq> {
        let due = self.completions.take_due(now);
        self.sched_ops += due.len() as u64;
        due
    }

    /// Cycle of the earliest scheduled completion, if any (event-driven
    /// mode only).
    pub fn next_completion_cycle(&mut self) -> Option<u64> {
        self.completions.next_cycle()
    }

    /// Whether any instruction is ready to issue (event-driven mode
    /// only; always `false` under [`SchedulerMode::Scan`]).
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Snapshot of the ready set, oldest first (event-driven mode only).
    /// A snapshot is required because issuing mutates the set.
    pub fn ready_snapshot(&self) -> Vec<Seq> {
        let mut out = Vec::with_capacity(self.ready.len());
        self.ready_into_inner(&mut out);
        out
    }

    /// Like [`Ruu::ready_snapshot`] but reusing a caller-owned buffer
    /// (cleared first), so the per-cycle issue loop allocates nothing.
    pub fn ready_into(&self, out: &mut Vec<Seq>) {
        out.clear();
        self.ready_into_inner(out);
    }

    fn ready_into_inner(&self, out: &mut Vec<Seq>) {
        self.ready.collect_from(self.head_seq, usize::MAX, out);
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<InstView<'_>> {
        match &self.window {
            Window::Scan(entries) => entries.front().map(DynInst::view),
            Window::Event(arena) => arena.head(),
        }
    }

    /// Removes the head (for commit or migration to the R-stream Queue).
    ///
    /// # Panics
    ///
    /// Panics if the head has not completed — callers must check first.
    pub fn pop_head(&mut self) -> DynInst {
        let e = match &mut self.window {
            Window::Scan(entries) => {
                let e = entries.pop_front().expect("pop from empty RUU");
                assert!(e.completed, "popping an incomplete head");
                e
            }
            Window::Event(arena) => arena.pop_head(),
        };
        self.head_seq = e.seq + 1;
        // Retire the rename-map entry if this instruction is still the
        // architecturally last writer.
        if let Some(rd) = e.info.instr.dest() {
            if self.rename[rd.raw() as usize] == Some(e.seq) {
                self.rename[rd.raw() as usize] = None;
            }
        }
        e
    }

    /// Number of contiguous completed instructions starting at
    /// `start_seq`, capped at `max`. Entries are seq-contiguous, so one
    /// forward walk sizes the whole batch the REESE migrate stage can
    /// drain this cycle without re-probing each sequence number.
    pub fn completed_run_len(&self, start_seq: Seq, max: usize) -> usize {
        match &self.window {
            Window::Scan(entries) => {
                let Some(start) = self.index_of(start_seq) else {
                    return 0;
                };
                entries
                    .iter()
                    .skip(start)
                    .take(max)
                    .take_while(|e| e.completed)
                    .count()
            }
            Window::Event(arena) => arena.completed_run_len(start_seq, max),
        }
    }

    /// Sequence numbers of instructions ready to issue, oldest first.
    pub fn ready_seqs(&self) -> impl Iterator<Item = Seq> + '_ {
        match &self.window {
            Window::Scan(entries) => {
                EitherIter::Scan(entries.iter().filter(|e| e.ready()).map(|e| e.seq))
            }
            Window::Event(arena) => {
                EitherIter::Event(arena.iter().filter(|v| v.ready()).map(|v| v.seq))
            }
        }
    }

    /// Iterates over all in-flight instructions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = InstView<'_>> {
        match &self.window {
            Window::Scan(entries) => EitherIter::Scan(entries.iter().map(DynInst::view)),
            Window::Event(arena) => EitherIter::Event(arena.iter()),
        }
    }

    /// The recorded consumers of `seq`, in dispatch order (empty if the
    /// seq is not resident or has completed). Test/debug accessor — the
    /// hot path never materialises this list.
    pub fn consumers_of(&self, seq: Seq) -> Vec<Seq> {
        match &self.window {
            Window::Scan(entries) => self
                .index_of(seq)
                .map(|i| entries[i].consumers.clone())
                .unwrap_or_default(),
            Window::Event(arena) => arena.consumers_of(seq),
        }
    }

    /// Squashes every in-flight instruction and clears renaming.
    ///
    /// The ready set and the completion wheel are drained too: after a
    /// detection flush the front end re-delivers the *same* sequence
    /// numbers, so a stale event surviving here would fire against an
    /// unrelated re-dispatched instruction.
    pub fn flush_all(&mut self) {
        match &mut self.window {
            Window::Scan(entries) => entries.clear(),
            Window::Event(arena) => arena.clear(),
        }
        self.rename = [None; NUM_REGS as usize];
        self.ready.clear();
        self.completions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::{step, ArchState};
    use reese_isa::{abi::*, Instr, Opcode};
    use reese_mem::Memory;

    /// Executes a tiny straight-line program and dispatches it into an RUU.
    fn dispatch_chain(ruu: &mut Ruu, instrs: &[Instr]) -> Vec<StepInfo> {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let mut infos = Vec::new();
        for (i, instr) in instrs.iter().enumerate() {
            let info = step(&mut s, instr, &mut m);
            ruu.dispatch(i as Seq, info, PredictionInfo::default(), 0);
            infos.push(info);
        }
        infos
    }

    /// Every behavioural test runs against both layouts: the scan-mode
    /// `VecDeque<DynInst>` and the event-driven `InstArena`.
    fn both_layouts(capacity: usize, check: impl Fn(&mut Ruu)) {
        for mode in [SchedulerMode::Scan, SchedulerMode::EventDriven] {
            let mut ruu = Ruu::with_scheduler(capacity, mode);
            check(&mut ruu);
        }
    }

    #[test]
    fn raw_dependence_tracked() {
        both_layouts(8, |ruu| {
            dispatch_chain(
                ruu,
                &[
                    Instr::rri(Opcode::Li, T0, ZERO, 1), // seq 0
                    Instr::rrr(Opcode::Add, T1, T0, T0), // seq 1 depends on 0
                    Instr::rrr(Opcode::Add, T2, T1, T0), // seq 2 depends on 0 and 1
                ],
            );
            assert_eq!(ruu.get(0).unwrap().pending_deps, 0);
            assert_eq!(ruu.get(1).unwrap().pending_deps, 1);
            assert_eq!(ruu.get(2).unwrap().pending_deps, 2);
            assert_eq!(ruu.ready_seqs().collect::<Vec<_>>(), vec![0]);
        });
    }

    #[test]
    fn wakeup_on_complete() {
        both_layouts(8, |ruu| {
            dispatch_chain(
                ruu,
                &[
                    Instr::rri(Opcode::Li, T0, ZERO, 1),
                    Instr::rrr(Opcode::Add, T1, T0, T0),
                ],
            );
            ruu.complete(0);
            assert!(ruu.get(0).unwrap().completed);
            assert_eq!(ruu.get(1).unwrap().pending_deps, 0);
            assert_eq!(ruu.ready_seqs().collect::<Vec<_>>(), vec![1]);
        });
    }

    #[test]
    fn waw_renaming_last_writer_wins() {
        both_layouts(8, |ruu| {
            dispatch_chain(
                ruu,
                &[
                    Instr::rri(Opcode::Li, T0, ZERO, 1),   // seq 0 writes t0
                    Instr::rri(Opcode::Li, T0, ZERO, 2),   // seq 1 rewrites t0
                    Instr::rrr(Opcode::Add, T1, T0, ZERO), // seq 2 must depend on seq 1 only
                ],
            );
            assert_eq!(ruu.get(2).unwrap().pending_deps, 1);
            assert!(ruu.consumers_of(1).contains(&2));
            assert!(ruu.consumers_of(0).is_empty());
        });
    }

    #[test]
    fn completed_producer_creates_no_dependence() {
        both_layouts(8, |ruu| {
            let mut s = ArchState::new(0x1000);
            let mut m = Memory::new();
            let li = Instr::rri(Opcode::Li, T0, ZERO, 5);
            let add = Instr::rrr(Opcode::Add, T1, T0, T0);
            let i0 = step(&mut s, &li, &mut m);
            ruu.dispatch(0, i0, PredictionInfo::default(), 0);
            ruu.complete(0);
            let i1 = step(&mut s, &add, &mut m);
            ruu.dispatch(1, i1, PredictionInfo::default(), 0);
            assert_eq!(ruu.get(1).unwrap().pending_deps, 0);
        });
    }

    #[test]
    fn pop_head_in_order() {
        both_layouts(8, |ruu| {
            dispatch_chain(
                ruu,
                &[
                    Instr::rri(Opcode::Li, T0, ZERO, 1),
                    Instr::rri(Opcode::Li, T1, ZERO, 2),
                ],
            );
            ruu.complete(0);
            let e = ruu.pop_head();
            assert_eq!(e.seq, 0);
            assert_eq!(ruu.head().unwrap().seq, 1);
            assert_eq!(ruu.len(), 1);
        });
    }

    #[test]
    #[should_panic(expected = "incomplete head")]
    fn pop_incomplete_head_panics() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(&mut ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
        ruu.pop_head();
    }

    #[test]
    #[should_panic(expected = "full RUU")]
    fn dispatch_into_full_panics() {
        let mut ruu = Ruu::new(1);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rri(Opcode::Li, T1, ZERO, 2),
            ],
        );
    }

    #[test]
    fn flush_clears_everything() {
        both_layouts(8, |ruu| {
            dispatch_chain(
                ruu,
                &[
                    Instr::rri(Opcode::Li, T0, ZERO, 1),
                    Instr::rrr(Opcode::Add, T1, T0, T0),
                ],
            );
            ruu.flush_all();
            assert!(ruu.is_empty());
            // After a flush, re-dispatch from seq 0 with fresh renaming.
            dispatch_chain(ruu, &[Instr::rrr(Opcode::Add, T2, T0, T1)]);
            assert_eq!(
                ruu.get(0).unwrap().pending_deps,
                0,
                "stale renaming must be gone"
            );
        });
    }

    #[test]
    fn rename_entry_cleared_on_pop() {
        both_layouts(8, |ruu| {
            dispatch_chain(ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
            ruu.complete(0);
            ruu.pop_head();
            // A later reader of t0 must not depend on the departed writer.
            let mut s = ArchState::new(0x1000);
            let mut m = Memory::new();
            let info = step(&mut s, &Instr::rrr(Opcode::Add, T1, T0, T0), &mut m);
            ruu.dispatch(1, info, PredictionInfo::default(), 0);
            assert_eq!(ruu.get(1).unwrap().pending_deps, 0);
        });
    }

    #[test]
    fn ready_set_tracks_dispatch_and_wakeup() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1), // seq 0: ready at dispatch
                Instr::rrr(Opcode::Add, T1, T0, T0), // seq 1: waits on 0
            ],
        );
        assert!(ruu.has_ready());
        assert_eq!(ruu.ready_snapshot(), vec![0]);
        assert_eq!(
            ruu.ready_snapshot(),
            ruu.ready_seqs().collect::<Vec<_>>(),
            "set and scan must agree"
        );
        ruu.mark_issued(0, 1, 2);
        assert!(!ruu.has_ready(), "issued instructions leave the set");
        ruu.complete(0);
        assert_eq!(ruu.ready_snapshot(), vec![1], "wake-up inserts consumers");
        assert_eq!(ruu.ready_snapshot(), ruu.ready_seqs().collect::<Vec<_>>());
    }

    #[test]
    fn completion_wheel_fires_in_cycle_then_seq_order() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rri(Opcode::Li, T1, ZERO, 2),
                Instr::rri(Opcode::Li, T2, ZERO, 3),
            ],
        );
        ruu.mark_issued(2, 1, 2);
        ruu.mark_issued(0, 1, 4);
        ruu.mark_issued(1, 1, 2);
        assert_eq!(ruu.next_completion_cycle(), Some(2));
        assert_eq!(ruu.take_completions(1), Vec::<Seq>::new());
        assert_eq!(ruu.take_completions(2), vec![1, 2]);
        assert_eq!(ruu.next_completion_cycle(), Some(4));
        assert_eq!(ruu.take_completions(10), vec![0]);
        assert_eq!(ruu.next_completion_cycle(), None);
    }

    #[test]
    fn flush_drains_ready_set_and_wheel() {
        let mut ruu = Ruu::new(8);
        dispatch_chain(
            &mut ruu,
            &[
                Instr::rri(Opcode::Li, T0, ZERO, 1),
                Instr::rri(Opcode::Li, T1, ZERO, 2),
            ],
        );
        ruu.mark_issued(0, 1, 5);
        assert!(ruu.has_ready());
        assert_eq!(ruu.next_completion_cycle(), Some(5));
        ruu.flush_all();
        assert!(!ruu.has_ready(), "no stale ready seqs after a flush");
        assert_eq!(
            ruu.next_completion_cycle(),
            None,
            "no stale events may fire against re-delivered seqs"
        );
    }

    #[test]
    fn scan_mode_skips_incremental_structures() {
        let mut ruu = Ruu::with_scheduler(8, SchedulerMode::Scan);
        dispatch_chain(&mut ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
        assert!(!ruu.has_ready(), "scan mode maintains no ready set");
        assert_eq!(ruu.ready_seqs().collect::<Vec<_>>(), vec![0]);
        ruu.mark_issued(0, 1, 2);
        assert_eq!(ruu.next_completion_cycle(), None, "no wheel in scan mode");
        let e = ruu.get(0).unwrap();
        assert!(e.issued);
        assert_eq!((e.issue_cycle, e.complete_cycle), (1, 2));
    }

    #[test]
    fn get_rejects_departed_and_future_seqs() {
        both_layouts(8, |ruu| {
            dispatch_chain(ruu, &[Instr::rri(Opcode::Li, T0, ZERO, 1)]);
            assert!(ruu.get(0).is_some());
            assert!(ruu.get(1).is_none());
            ruu.complete(0);
            ruu.pop_head();
            assert!(ruu.get(0).is_none());
        });
    }

    #[test]
    fn layouts_agree_under_interleaved_traffic() {
        // Drive both layouts through a seeded interleaving of dispatch,
        // complete, issue, pop and flush, and demand identical views at
        // every step — the arena must be observationally equal to the
        // original array-of-structures window.
        let mut scan = Ruu::with_scheduler(8, SchedulerMode::Scan);
        let mut event = Ruu::with_scheduler(8, SchedulerMode::EventDriven);
        let mut state: u64 = 0xA11CE;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        let regs = [T0, T1, T2, T3];
        let mut seq: Seq = 0;
        for round in 0..2_000u64 {
            match next() % 5 {
                0 | 1 => {
                    if !scan.is_full() {
                        let rd = regs[(next() % 4) as usize];
                        let rs = regs[(next() % 4) as usize];
                        let instr = if next() % 2 == 0 {
                            Instr::rri(Opcode::Li, rd, ZERO, seq as i64)
                        } else {
                            Instr::rrr(Opcode::Add, rd, rs, rs)
                        };
                        let info = step(&mut s, &instr, &mut m);
                        scan.dispatch(seq, info, PredictionInfo::default(), round);
                        event.dispatch(seq, info, PredictionInfo::default(), round);
                        seq += 1;
                    }
                }
                2 => {
                    let ready: Vec<Seq> = scan.ready_seqs().collect();
                    if let Some(&pick) = ready.first() {
                        scan.mark_issued(pick, round, round + 1 + next() % 6);
                        let cc = scan.get(pick).unwrap().complete_cycle;
                        event.mark_issued(pick, round, cc);
                        scan.complete(pick);
                        event.complete(pick);
                    }
                }
                3 => {
                    if scan.head().is_some_and(|e| e.completed) {
                        let a = scan.pop_head();
                        let b = event.pop_head();
                        assert_eq!(
                            (a.seq, a.info, a.complete_cycle),
                            (b.seq, b.info, b.complete_cycle)
                        );
                    }
                }
                _ => {
                    if next() % 29 == 0 {
                        scan.flush_all();
                        event.flush_all();
                        // The front end re-delivers from the squashed head.
                        seq = scan.head_seq.min(seq);
                    }
                }
            }
            assert_eq!(scan.len(), event.len());
            let a: Vec<(Seq, bool, bool, u32)> = scan
                .iter()
                .map(|v| (v.seq, v.issued, v.completed, v.pending_deps))
                .collect();
            let b: Vec<(Seq, bool, bool, u32)> = event
                .iter()
                .map(|v| (v.seq, v.issued, v.completed, v.pending_deps))
                .collect();
            assert_eq!(a, b);
            assert_eq!(
                scan.ready_seqs().collect::<Vec<_>>(),
                event.ready_seqs().collect::<Vec<_>>()
            );
            assert_eq!(
                scan.completed_run_len(scan.head_seq, 8),
                event.completed_run_len(scan.head_seq, 8)
            );
        }
    }
}
