//! The baseline out-of-order superscalar timing simulator.
//!
//! A Rust re-implementation of the machine the REESE paper modifies:
//! SimpleScalar 2.0's `sim-outorder`. The pipeline is
//! fetch → dispatch → (out-of-order) issue → writeback → (in-order)
//! commit, built around a Register Update Unit ([`Ruu`]), a load/store
//! queue ([`Lsq`]), a pool of functional units ([`FuPool`]), a gshare
//! front end ([`FetchUnit`]), and the Table 1 cache hierarchy.
//!
//! Simulation is execution-driven: the functional emulator runs the
//! correct path and the timing model charges latencies, structural
//! stalls, and branch-misprediction penalties on the dynamic stream.
//!
//! The individual components are public because the REESE simulator in
//! `reese-core` composes them with its R-stream Queue.
//!
//! # Example
//!
//! ```
//! use reese_pipeline::{PipelineConfig, PipelineSim};
//!
//! let prog = reese_isa::assemble(
//!     "  li t0, 10\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n",
//! )?;
//! let result = PipelineSim::new(PipelineConfig::starting()).run(&prog)?;
//! assert_eq!(result.committed_instructions(), 22);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod arena;
mod config;
mod dyninst;
mod fetch;
mod fu;
mod lsq;
mod readyring;
mod ruu;
mod sim;
mod stats;
mod wheel;

pub use arena::{InstArena, InstView};
pub use config::{FuCounts, PipelineConfig, SchedulerMode};
pub use dyninst::{DynInst, PredictionInfo, Seq};
pub use fetch::{FetchUnit, Fetched};
pub use fu::FuPool;
pub use lsq::{LoadPlan, Lsq};
pub use readyring::ReadyRing;
pub use ruu::Ruu;
pub use sim::{PipelineSim, WarmState};
pub use stats::{PipelineStats, SimError, SimResult, SimStop};
pub use wheel::EventWheel;
