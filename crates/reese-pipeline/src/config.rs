//! Pipeline configuration.

use reese_bpred::PredictorConfig;
use reese_isa::FuClass;
use reese_mem::HierarchyConfig;

/// Number of functional units of each class.
///
/// The REESE paper's spare-capacity experiments are sweeps over these
/// counts: the starting configuration is 4 integer ALUs and 1 integer
/// multiplier/divider (same for FP), and spares are added on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuCounts {
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiplier/dividers.
    pub int_muldiv: u32,
    /// FP adders.
    pub fp_alu: u32,
    /// FP multiplier/dividers.
    pub fp_muldiv: u32,
    /// Memory ports.
    pub mem_ports: u32,
}

impl FuCounts {
    /// Table 1 of the paper: 4 IntALU, 1 IntMul/Div, 4 FPALU,
    /// 1 FPMul/Div, 2 memory ports.
    pub fn paper() -> FuCounts {
        FuCounts {
            int_alu: 4,
            int_muldiv: 1,
            fp_alu: 4,
            fp_muldiv: 1,
            mem_ports: 2,
        }
    }

    /// The count for one class.
    pub fn count(&self, class: FuClass) -> u32 {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMulDiv => self.int_muldiv,
            FuClass::FpAlu => self.fp_alu,
            FuClass::FpMulDiv => self.fp_muldiv,
            FuClass::MemPort => self.mem_ports,
        }
    }
}

impl Default for FuCounts {
    fn default() -> Self {
        FuCounts::paper()
    }
}

/// How the cycle loop finds work each cycle.
///
/// Both modes are cycle-accurate and produce bit-identical results; the
/// equivalence suite in the workspace root asserts exactly that. The
/// scan path is retained as the executable specification the
/// event-driven path is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Re-scan the whole instruction window every cycle (the original
    /// SimpleScalar-style implementation): writeback filters every RUU
    /// entry, issue collects every ready entry, and the clock always
    /// advances one cycle at a time.
    Scan,
    /// Maintain incremental structures instead: a ready set updated at
    /// dispatch/wake-up, a completion event wheel keyed by
    /// `complete_cycle`, and idle-cycle skipping that jumps the clock to
    /// the next scheduled event when the machine is provably quiescent.
    #[default]
    EventDriven,
}

/// Full configuration of the baseline out-of-order pipeline.
///
/// [`PipelineConfig::starting`] reproduces the paper's Table 1 "starting
/// configuration"; the `with_*` builders express every variation the
/// evaluation sweeps (Figures 2–7).
///
/// # Example
///
/// ```
/// use reese_pipeline::PipelineConfig;
///
/// // Figure 3's machine: the starting config with RUU and LSQ doubled.
/// let cfg = PipelineConfig::starting().with_ruu(32).with_lsq(16);
/// assert_eq!(cfg.ruu_size, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Fetch queue capacity (instructions).
    pub fetch_queue_size: usize,
    /// Machine width: max instructions fetched, dispatched, issued, and
    /// committed per cycle ("Max IPC for other pipeline stages").
    pub width: usize,
    /// Register update unit capacity.
    pub ruu_size: usize,
    /// Load/store queue capacity.
    pub lsq_size: usize,
    /// Functional-unit counts.
    pub fu: FuCounts,
    /// Memory hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// Extra front-end refill cycles charged after a branch
    /// misprediction resolves (fetch/decode depth).
    pub mispredict_penalty: u32,
    /// Hard safety cap on simulated cycles (0 = unlimited).
    pub max_cycles: u64,
    /// How the cycle loop finds work (results are identical either way).
    pub scheduler: SchedulerMode,
}

impl PipelineConfig {
    /// The paper's Table 1 starting configuration: fetch queue 16,
    /// width 8, RUU 16, LSQ 8, gshare, paper cache hierarchy.
    pub fn starting() -> PipelineConfig {
        PipelineConfig {
            fetch_queue_size: 16,
            width: 8,
            ruu_size: 16,
            lsq_size: 8,
            fu: FuCounts::paper(),
            hierarchy: HierarchyConfig::paper(),
            predictor: PredictorConfig::paper(),
            mispredict_penalty: 3,
            max_cycles: 0,
            scheduler: SchedulerMode::default(),
        }
    }

    /// Selects the cycle-loop scheduler implementation.
    pub fn with_scheduler(mut self, mode: SchedulerMode) -> PipelineConfig {
        self.scheduler = mode;
        self
    }

    /// Sets the RUU size.
    pub fn with_ruu(mut self, n: usize) -> PipelineConfig {
        self.ruu_size = n;
        self
    }

    /// Sets the LSQ size.
    pub fn with_lsq(mut self, n: usize) -> PipelineConfig {
        self.lsq_size = n;
        self
    }

    /// Sets the machine width (and grows the fetch queue to `2 * width`
    /// if it would otherwise be smaller, as the paper's 16-wide runs do).
    pub fn with_width(mut self, w: usize) -> PipelineConfig {
        self.width = w;
        self.fetch_queue_size = self.fetch_queue_size.max(2 * w);
        self
    }

    /// Sets the number of memory ports (Figure 5 doubles this to 4).
    pub fn with_mem_ports(mut self, n: u32) -> PipelineConfig {
        self.fu.mem_ports = n;
        self
    }

    /// Sets the functional-unit counts.
    pub fn with_fu(mut self, fu: FuCounts) -> PipelineConfig {
        self.fu = fu;
        self
    }

    /// Adds integer ALUs on top of the current count (the paper's
    /// "+1 ALU" / "+2 ALU" spare elements).
    pub fn with_extra_int_alus(mut self, n: u32) -> PipelineConfig {
        self.fu.int_alu += n;
        self
    }

    /// Adds integer multiplier/dividers ("+1 Mult").
    pub fn with_extra_int_muldivs(mut self, n: u32) -> PipelineConfig {
        self.fu.int_muldiv += n;
        self
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero or the LSQ exceeds the RUU.
    pub fn validate(&self) {
        assert!(self.width > 0, "width must be positive");
        assert!(self.fetch_queue_size > 0, "fetch queue must be non-empty");
        assert!(self.ruu_size > 0, "RUU must be non-empty");
        assert!(self.lsq_size > 0, "LSQ must be non-empty");
        assert!(
            self.lsq_size <= self.ruu_size,
            "LSQ larger than RUU makes no sense"
        );
        for class in FuClass::ALL {
            assert!(self.fu.count(class) > 0, "need at least one {class} unit");
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::starting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starting_matches_table1() {
        let c = PipelineConfig::starting();
        assert_eq!(c.fetch_queue_size, 16);
        assert_eq!(c.width, 8);
        assert_eq!(c.ruu_size, 16);
        assert_eq!(c.lsq_size, 8);
        assert_eq!(c.fu.int_alu, 4);
        assert_eq!(c.fu.int_muldiv, 1);
        assert_eq!(c.fu.mem_ports, 2);
        c.validate();
    }

    #[test]
    fn builders_compose() {
        let c = PipelineConfig::starting()
            .with_ruu(32)
            .with_lsq(16)
            .with_width(16)
            .with_mem_ports(4)
            .with_extra_int_alus(2)
            .with_extra_int_muldivs(1);
        assert_eq!(c.ruu_size, 32);
        assert_eq!(c.width, 16);
        assert_eq!(c.fetch_queue_size, 32, "fetch queue grows with width");
        assert_eq!(c.fu.mem_ports, 4);
        assert_eq!(c.fu.int_alu, 6);
        assert_eq!(c.fu.int_muldiv, 2);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "LSQ larger than RUU")]
    fn oversized_lsq_rejected() {
        PipelineConfig::starting()
            .with_ruu(8)
            .with_lsq(16)
            .validate();
    }

    #[test]
    fn scheduler_defaults_to_event_driven() {
        let c = PipelineConfig::starting();
        assert_eq!(c.scheduler, SchedulerMode::EventDriven);
        let c = c.with_scheduler(SchedulerMode::Scan);
        assert_eq!(c.scheduler, SchedulerMode::Scan);
        c.validate();
    }

    #[test]
    fn fu_count_lookup() {
        let fu = FuCounts::paper();
        assert_eq!(fu.count(FuClass::IntAlu), 4);
        assert_eq!(fu.count(FuClass::MemPort), 2);
    }
}
