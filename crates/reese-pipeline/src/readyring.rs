//! A bitmap ring over a sliding sequence-number window.
//!
//! The event-driven scheduler needs a set of sequence numbers with four
//! cheap operations: insert, remove, "is anything here?", and iterate
//! oldest-first. A `BTreeSet` gives all four but pays pointer-chasing
//! and node allocation on every mutation, which for small windows
//! (RUU = 16) costs more than the full-window scan it replaces. The
//! members, however, always live inside a window of at most `capacity`
//! consecutive sequence numbers (the RUU/R-queue window), so a bitmap
//! of `capacity` bits indexed by `seq mod ring_size` is exact: one word
//! op per mutation, no allocation ever, and oldest-first iteration is a
//! rotated word scan starting at the window base.
//!
//! This `seq & mask` slot mapping is shared with [`crate::InstArena`]
//! (same power-of-two rounding, same injectivity argument over a
//! seq-contiguous live window), so a ready bit and the arena record it
//! qualifies always agree on the slot a seq occupies.

use crate::Seq;

/// A fixed-size bitmap set of sequence numbers, valid while all members
/// lie in a window of less than `ring_size` consecutive seqs (callers
/// guarantee this structurally: an instruction window never holds seqs
/// further apart than its capacity).
#[derive(Debug, Clone)]
pub struct ReadyRing {
    words: Vec<u64>,
    mask: u64,
    len: usize,
}

impl ReadyRing {
    /// Creates a ring able to track any window of up to `capacity`
    /// consecutive sequence numbers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReadyRing {
        assert!(capacity > 0, "ready ring needs a positive capacity");
        let ring = capacity.next_power_of_two().max(64);
        ReadyRing {
            words: vec![0; ring / 64],
            mask: (ring - 1) as u64,
            len: 0,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `seq`; a no-op if already present.
    pub fn insert(&mut self, seq: Seq) {
        let pos = (seq & self.mask) as usize;
        let bit = 1u64 << (pos % 64);
        let w = &mut self.words[pos / 64];
        if *w & bit == 0 {
            *w |= bit;
            self.len += 1;
        }
    }

    /// Removes `seq`, returning whether it was present.
    pub fn remove(&mut self, seq: Seq) -> bool {
        let pos = (seq & self.mask) as usize;
        let bit = 1u64 << (pos % 64);
        let w = &mut self.words[pos / 64];
        if *w & bit != 0 {
            *w &= !bit;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Whether `seq` is a member.
    pub fn contains(&self, seq: Seq) -> bool {
        let pos = (seq & self.mask) as usize;
        self.words[pos / 64] & (1 << (pos % 64)) != 0
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Appends up to `limit` members to `out` in ascending sequence
    /// order, starting the rotated scan at `base`. `base` must be at or
    /// below every member and within one ring size of all of them —
    /// for an instruction window, its head sequence number.
    pub fn collect_from(&self, base: Seq, limit: usize, out: &mut Vec<Seq>) {
        if self.len == 0 || limit == 0 {
            return;
        }
        let nwords = self.words.len();
        let start_bit = (base & self.mask) as usize;
        let (start_word, start_off) = (start_bit / 64, start_bit % 64);
        let mut remaining = limit.min(self.len);
        for k in 0..=nwords {
            let wi = (start_word + k) % nwords;
            let mut w = self.words[wi];
            if k == 0 {
                w &= !0u64 << start_off;
            } else if k == nwords {
                if start_off == 0 {
                    break;
                }
                w &= (1u64 << start_off) - 1;
            }
            while w != 0 {
                let b = w.trailing_zeros() as u64;
                w &= w - 1;
                let pos = wi as u64 * 64 + b;
                let offset = pos.wrapping_sub(start_bit as u64) & self.mask;
                out.push(base + offset);
                remaining -= 1;
                if remaining == 0 {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ring: &ReadyRing, base: Seq) -> Vec<Seq> {
        let mut v = Vec::new();
        ring.collect_from(base, usize::MAX, &mut v);
        v
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = ReadyRing::new(16);
        assert!(r.is_empty());
        r.insert(5);
        r.insert(5); // idempotent
        assert_eq!(r.len(), 1);
        assert!(r.contains(5));
        assert!(r.remove(5));
        assert!(!r.remove(5));
        assert!(r.is_empty());
    }

    #[test]
    fn iterates_ascending_from_base() {
        let mut r = ReadyRing::new(16);
        for s in [12, 3, 7, 3] {
            r.insert(s);
        }
        assert_eq!(drain(&r, 0), vec![3, 7, 12]);
        assert_eq!(drain(&r, 3), vec![3, 7, 12]);
    }

    #[test]
    fn window_wrapping_preserves_order() {
        // Ring size 64: a window of seqs straddling a multiple of 64
        // maps to bits on both sides of the rotation point.
        let mut r = ReadyRing::new(16);
        for s in [60, 61, 64, 70] {
            r.insert(s);
        }
        assert_eq!(drain(&r, 60), vec![60, 61, 64, 70]);
        let mut front = Vec::new();
        r.collect_from(60, 2, &mut front);
        assert_eq!(front, vec![60, 61]);
    }

    #[test]
    fn wrapping_across_many_words() {
        let mut r = ReadyRing::new(256);
        let base = 250;
        let members: Vec<Seq> = (0..40).map(|i| base + i * 6).collect();
        for &s in &members {
            r.insert(s);
        }
        assert_eq!(drain(&r, base), members);
    }

    #[test]
    fn matches_btreeset_under_random_window_traffic() {
        use std::collections::BTreeSet;
        // SplitMix64-driven churn over a sliding 32-wide window.
        let mut state: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut ring = ReadyRing::new(32);
        let mut set: BTreeSet<Seq> = BTreeSet::new();
        let mut head: Seq = 0;
        for _ in 0..10_000 {
            match next() % 4 {
                0 | 1 => {
                    let seq = head + next() % 32;
                    ring.insert(seq);
                    set.insert(seq);
                }
                2 => {
                    if let Some(&seq) = set.iter().next() {
                        set.remove(&seq);
                        assert!(ring.remove(seq));
                        head = head.max(seq); // window never moves backwards
                    }
                }
                _ => {
                    // Advance the window: retire everything below the new head.
                    head += next() % 4;
                    while let Some(&seq) = set.iter().next() {
                        if seq >= head {
                            break;
                        }
                        set.remove(&seq);
                        ring.remove(seq);
                    }
                }
            }
            assert_eq!(ring.len(), set.len());
            assert_eq!(drain(&ring, head), set.iter().copied().collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_panics() {
        ReadyRing::new(0);
    }
}
