//! The functional-unit pool and its per-cycle scheduler interface.

use crate::FuCounts;
use reese_isa::{FuClass, Opcode};

/// One functional-unit class: a set of identical units.
#[derive(Debug, Clone)]
struct ClassPool {
    /// Cycle at which each unit can next *accept* an operation.
    next_free: Vec<u64>,
    /// Operations issued to this class (for utilisation stats).
    issued: u64,
    /// Cycles of unit occupancy accumulated (busy time).
    busy_cycles: u64,
}

/// The pool of all functional units.
///
/// Pipelined units accept a new operation every cycle even while older
/// operations are still in flight; non-pipelined units (dividers, square
/// root) are busy for their whole latency. Memory ports are modelled
/// here too, as single-cycle-occupancy units — the cache-access latency
/// itself is charged to the instruction, not the port.
///
/// Utilisation statistics feed the paper's central premise: "30–40% of
/// hardware is unused during any specific cycle", which REESE harvests
/// for the R stream.
///
/// # Example
///
/// ```
/// use reese_isa::{FuClass, Opcode};
/// use reese_pipeline::{FuCounts, FuPool};
///
/// let mut pool = FuPool::new(FuCounts::paper());
/// // Table 1 has exactly one integer multiplier/divider.
/// assert!(pool.try_issue(Opcode::Div, 0));
/// assert!(!pool.try_issue(Opcode::Mul, 0), "divider busy 20 cycles");
/// assert!(pool.try_issue(Opcode::Mul, 20));
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    classes: [ClassPool; 5],
    counts: FuCounts,
    mem_port_occupancy: u64,
    /// Per-class minimum of `next_free` — the earliest cycle at which
    /// *some* unit of the class can accept an operation. Maintained on
    /// every issue/flush so availability is one compare instead of a
    /// per-unit scan. A class with zero units holds `u64::MAX`.
    earliest_free: [u64; 5],
}

fn class_index(class: FuClass) -> usize {
    match class {
        FuClass::IntAlu => 0,
        FuClass::IntMulDiv => 1,
        FuClass::FpAlu => 2,
        FuClass::FpMulDiv => 3,
        FuClass::MemPort => 4,
    }
}

impl FuPool {
    /// Creates a pool with the given per-class counts.
    pub fn new(counts: FuCounts) -> FuPool {
        let make = |n: u32| ClassPool {
            next_free: vec![0; n as usize],
            issued: 0,
            busy_cycles: 0,
        };
        let classes = [
            make(counts.int_alu),
            make(counts.int_muldiv),
            make(counts.fp_alu),
            make(counts.fp_muldiv),
            make(counts.mem_ports),
        ];
        let mut earliest_free = [u64::MAX; 5];
        for (e, pool) in earliest_free.iter_mut().zip(&classes) {
            if !pool.next_free.is_empty() {
                *e = 0;
            }
        }
        FuPool {
            classes,
            counts,
            mem_port_occupancy: 1,
            earliest_free,
        }
    }

    /// Sets how many cycles a memory port stays busy per access.
    ///
    /// Cache ports are not pipelined: an access holds its port for the
    /// L1 hit time (2 cycles in the paper's Table 1), so two ports
    /// sustain only one access per cycle. This is the resource the
    /// paper's Figure 5 doubles.
    pub fn with_mem_port_occupancy(mut self, cycles: u32) -> FuPool {
        self.mem_port_occupancy = u64::from(cycles.max(1));
        self
    }

    /// Tries to issue `op` in cycle `now`; returns whether a unit
    /// accepted it and books the unit if so.
    pub fn try_issue(&mut self, op: Opcode, now: u64) -> bool {
        self.try_issue_occupying(op, now, None)
    }

    /// Like [`FuPool::try_issue`] but overriding how long the unit is
    /// held. The REESE redundant stream uses this for its memory
    /// verification accesses, which are tag-check-only guaranteed hits
    /// and release the port after one cycle.
    pub fn try_issue_occupying(&mut self, op: Opcode, now: u64, occupancy: Option<u64>) -> bool {
        // Deliberately the original per-unit probe, with no early bail
        // on `earliest_free`: `Scan` mode is the measurement baseline
        // and equivalence oracle, so it must keep the original
        // algorithm's cost profile. The event-driven schedulers get the
        // O(1) bail by gating on [`FuPool::class_free`] at their call
        // sites instead.
        let class = op.fu_class();
        let idx = class_index(class);
        let pool = &mut self.classes[idx];
        let Some(unit) = pool.next_free.iter_mut().find(|f| **f <= now) else {
            return false;
        };
        // A pipelined unit is occupied for one cycle (it can start a new
        // op next cycle); a non-pipelined one for the full latency.
        // Memory ports are occupied for the configured cache-access time.
        let occupancy = occupancy.unwrap_or(if class == FuClass::MemPort {
            self.mem_port_occupancy
        } else if op.pipelined() {
            1
        } else {
            u64::from(op.latency())
        });
        *unit = now + occupancy;
        pool.issued += 1;
        pool.busy_cycles += occupancy;
        self.earliest_free[idx] = pool.next_free.iter().copied().min().unwrap_or(u64::MAX);
        true
    }

    /// Tries to issue a memory operation, which needs *two* resources in
    /// the same cycle: an integer ALU for address generation (one
    /// cycle) and a memory port for the cache access. Books both or
    /// neither.
    ///
    /// # Panics
    ///
    /// Debug-panics if `op` is not a memory operation.
    pub fn try_issue_mem(&mut self, op: Opcode, now: u64) -> bool {
        debug_assert_eq!(op.fu_class(), FuClass::MemPort, "{op} is not a memory op");
        // Original per-unit availability scan, as with
        // [`FuPool::try_issue_occupying`] — event-driven callers gate on
        // `class_free(IntAlu) && class_free(MemPort)` before probing.
        if self.free_units(FuClass::IntAlu, now) == 0 || self.free_units(FuClass::MemPort, now) == 0
        {
            return false;
        }
        let agen = self.try_issue(Opcode::Add, now);
        let port = self.try_issue(op, now);
        debug_assert!(agen && port, "both units were checked free");
        true
    }

    /// Whether at least one unit of `class` can accept an operation at
    /// cycle `now`. O(1): one compare against the maintained per-class
    /// minimum — this is exactly the success condition of
    /// [`FuPool::try_issue`] for an op of that class.
    pub fn class_free(&self, class: FuClass, now: u64) -> bool {
        self.earliest_free[class_index(class)] <= now
    }

    /// The earliest cycle at which some unit of `class` is free
    /// (`u64::MAX` when the class has no units). The event-driven
    /// scheduler uses this to compute when a blocked redundant stream
    /// can next make progress.
    pub fn earliest_free(&self, class: FuClass) -> u64 {
        self.earliest_free[class_index(class)]
    }

    /// Number of units of `class` free at cycle `now`.
    pub fn free_units(&self, class: FuClass, now: u64) -> u32 {
        self.classes[class_index(class)]
            .next_free
            .iter()
            .filter(|f| **f <= now)
            .count() as u32
    }

    /// Operations issued to `class` so far.
    pub fn issued(&self, class: FuClass) -> u64 {
        self.classes[class_index(class)].issued
    }

    /// Unit-cycles of occupancy accumulated by `class`.
    pub fn busy_cycles(&self, class: FuClass) -> u64 {
        self.classes[class_index(class)].busy_cycles
    }

    /// Unit-cycles of occupancy for every class at once, in
    /// [`FuClass::ALL`] order (the layout the metrics sampler records).
    pub fn busy_by_class(&self) -> [u64; 5] {
        let mut busy = [0u64; 5];
        for (out, &class) in busy.iter_mut().zip(FuClass::ALL.iter()) {
            *out = self.busy_cycles(class);
        }
        busy
    }

    /// Average utilisation of `class` over `cycles` simulated cycles, in
    /// `[0, 1]`.
    pub fn utilisation(&self, class: FuClass, cycles: u64) -> f64 {
        let total = cycles * u64::from(self.counts.count(class));
        if total == 0 {
            0.0
        } else {
            self.busy_cycles(class) as f64 / total as f64
        }
    }

    /// The configured counts.
    pub fn counts(&self) -> FuCounts {
        self.counts
    }

    /// Releases every unit (pipeline flush; in-flight work is squashed).
    pub fn flush(&mut self) {
        for (pool, earliest) in self.classes.iter_mut().zip(&mut self.earliest_free) {
            pool.next_free.fill(0);
            if !pool.next_free.is_empty() {
                *earliest = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_units_accept_every_cycle() {
        let mut p = FuPool::new(FuCounts {
            int_alu: 1,
            ..FuCounts::paper()
        });
        assert!(p.try_issue(Opcode::Add, 0));
        assert!(
            !p.try_issue(Opcode::Add, 0),
            "one unit, one issue per cycle"
        );
        assert!(p.try_issue(Opcode::Add, 1), "pipelined: free next cycle");
    }

    #[test]
    fn nonpipelined_units_block_for_latency() {
        let mut p = FuPool::new(FuCounts::paper());
        assert!(p.try_issue(Opcode::Div, 0));
        for c in 1..20 {
            assert!(!p.try_issue(Opcode::Rem, c), "divider busy at cycle {c}");
        }
        assert!(p.try_issue(Opcode::Rem, 20));
    }

    #[test]
    fn multiplier_is_pipelined() {
        let mut p = FuPool::new(FuCounts::paper());
        assert!(p.try_issue(Opcode::Mul, 0));
        assert!(p.try_issue(Opcode::Mul, 1), "3-cycle latency but pipelined");
    }

    #[test]
    fn classes_do_not_interfere() {
        let mut p = FuPool::new(FuCounts {
            int_alu: 1,
            int_muldiv: 1,
            ..FuCounts::paper()
        });
        assert!(p.try_issue(Opcode::Add, 0));
        assert!(p.try_issue(Opcode::Mul, 0));
        assert!(p.try_issue(Opcode::Ld, 0));
    }

    #[test]
    fn paper_counts_give_four_alu_issues() {
        let mut p = FuPool::new(FuCounts::paper());
        for _ in 0..4 {
            assert!(p.try_issue(Opcode::Add, 5));
        }
        assert!(!p.try_issue(Opcode::Add, 5));
        assert_eq!(p.free_units(FuClass::IntAlu, 5), 0);
        assert_eq!(p.free_units(FuClass::IntAlu, 6), 4);
    }

    #[test]
    fn utilisation_accounting() {
        let mut p = FuPool::new(FuCounts {
            int_alu: 2,
            ..FuCounts::paper()
        });
        p.try_issue(Opcode::Add, 0);
        p.try_issue(Opcode::Add, 0);
        p.try_issue(Opcode::Add, 1);
        // 3 busy unit-cycles over 2 units * 2 cycles.
        assert!((p.utilisation(FuClass::IntAlu, 2) - 0.75).abs() < 1e-12);
        assert_eq!(p.issued(FuClass::IntAlu), 3);
    }

    #[test]
    fn flush_releases_units() {
        let mut p = FuPool::new(FuCounts::paper());
        p.try_issue(Opcode::Div, 0);
        p.flush();
        assert!(p.try_issue(Opcode::Div, 1));
    }

    #[test]
    fn class_free_mirrors_try_issue() {
        // class_free must be exactly try_issue's success condition, at
        // every cycle, so the event-driven scheduler can gate on it.
        let mut p = FuPool::new(FuCounts {
            int_muldiv: 1,
            ..FuCounts::paper()
        });
        assert!(p.class_free(FuClass::IntMulDiv, 0));
        assert!(p.try_issue(Opcode::Div, 0));
        for c in 0..20 {
            assert!(!p.class_free(FuClass::IntMulDiv, c), "divider busy at {c}");
        }
        assert!(p.class_free(FuClass::IntMulDiv, 20));
        assert_eq!(p.earliest_free(FuClass::IntMulDiv), 20);
        p.flush();
        assert!(p.class_free(FuClass::IntMulDiv, 0));
        assert_eq!(p.earliest_free(FuClass::IntMulDiv), 0);
    }

    #[test]
    fn earliest_free_tracks_min_across_units() {
        let mut p = FuPool::new(FuCounts {
            int_alu: 2,
            ..FuCounts::paper()
        });
        assert!(p.try_issue(Opcode::Add, 0));
        assert_eq!(p.earliest_free(FuClass::IntAlu), 0, "second unit idle");
        assert!(p.try_issue(Opcode::Add, 0));
        assert_eq!(p.earliest_free(FuClass::IntAlu), 1, "both booked to 1");
        assert!(!p.class_free(FuClass::IntAlu, 0));
        assert!(p.class_free(FuClass::IntAlu, 1));
    }

    #[test]
    fn mem_port_occupied_one_cycle() {
        let mut p = FuPool::new(FuCounts {
            mem_ports: 1,
            ..FuCounts::paper()
        });
        assert!(p.try_issue(Opcode::Ld, 0));
        assert!(!p.try_issue(Opcode::Sd, 0));
        assert!(p.try_issue(Opcode::Sd, 1));
    }
}
