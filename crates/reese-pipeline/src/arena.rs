//! Structure-of-arrays storage for in-flight instructions.
//!
//! The event-driven scheduler's remaining per-cycle cost is memory
//! layout: a `VecDeque<DynInst>` interleaves the four fields the
//! scheduler actually touches every cycle (`pending_deps`, `issued`,
//! `completed`, `complete_cycle`) with ~120 bytes of functional record
//! it touches once, and every dispatch heap-allocates a `Vec<Seq>`
//! consumer list. [`InstArena`] splits that record into parallel
//! arrays indexed directly by `seq & mask` — the same seq→slot mapping
//! the [`crate::ReadyRing`] bitmap already uses — so the hot loops
//! (head-completed probes, completed-run walks, wake-up) touch dense
//! homogeneous arrays, and consumer edges live in a pooled chunked
//! adjacency list that allocates nothing per dispatch once warm.
//!
//! # Seq → slot mapping
//!
//! The window is seq-contiguous (`[head_seq, head_seq + len)`) and
//! `len` never exceeds the configured capacity, so with
//! `slots = capacity.next_power_of_two()` the map `seq & (slots - 1)`
//! is injective over any live window: no two in-flight instructions
//! share a slot, and no slot is cleared on retirement — re-dispatching
//! into a slot overwrites every field that will be read.
//!
//! Scan mode ([`crate::SchedulerMode::Scan`]) never builds an arena:
//! it keeps the original `VecDeque<DynInst>` layout so the full-window
//! rescan keeps measuring the unoptimised implementation, exactly as
//! it does for the ready set and the completion wheel.

use crate::{DynInst, PredictionInfo, Seq};
use reese_cpu::StepInfo;

/// Sentinel for "no chunk" in the consumer pool's u32 index space.
const NONE: u32 = u32::MAX;

/// Consumer seqs per pool chunk. Six seqs plus the length and next-link
/// keep a chunk within one 64-byte line; fan-out above six (rare — most
/// values have one or two readers in flight) links additional chunks.
const CHUNK_CAP: usize = 6;

/// One node of the pooled consumer adjacency list.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    seqs: [Seq; CHUNK_CAP],
    len: u8,
    next: u32,
}

impl Chunk {
    fn empty() -> Chunk {
        Chunk {
            seqs: [0; CHUNK_CAP],
            len: 0,
            next: NONE,
        }
    }
}

/// A pool of consumer-list chunks shared by every slot in the arena.
///
/// Freed chunks (drained at wake-up) go on an intrusive free list and
/// are recycled, so steady-state dispatch performs no heap allocation;
/// a flush returns everything to the pool wholesale.
#[derive(Debug, Clone, Default)]
struct ConsumerPool {
    chunks: Vec<Chunk>,
    free_head: u32,
}

impl ConsumerPool {
    fn new() -> ConsumerPool {
        ConsumerPool {
            chunks: Vec::new(),
            free_head: NONE,
        }
    }

    fn alloc(&mut self) -> u32 {
        if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.chunks[idx as usize].next;
            self.chunks[idx as usize] = Chunk::empty();
            idx
        } else {
            self.chunks.push(Chunk::empty());
            (self.chunks.len() - 1) as u32
        }
    }

    /// Appends `value` to the list rooted at `head`/`tail` (both `NONE`
    /// for an empty list), in push order.
    fn push(&mut self, head: &mut u32, tail: &mut u32, value: Seq) {
        if *tail == NONE || self.chunks[*tail as usize].len as usize == CHUNK_CAP {
            let idx = self.alloc();
            if *tail == NONE {
                *head = idx;
            } else {
                self.chunks[*tail as usize].next = idx;
            }
            *tail = idx;
        }
        let chunk = &mut self.chunks[*tail as usize];
        chunk.seqs[chunk.len as usize] = value;
        chunk.len += 1;
    }

    /// Appends the list's seqs to `out` in push order and returns every
    /// chunk to the free list; `head`/`tail` are reset to `NONE`.
    fn drain(&mut self, head: &mut u32, tail: &mut u32, out: &mut Vec<Seq>) {
        let mut at = *head;
        while at != NONE {
            let chunk = self.chunks[at as usize];
            out.extend_from_slice(&chunk.seqs[..chunk.len as usize]);
            self.chunks[at as usize].next = self.free_head;
            self.free_head = at;
            at = chunk.next;
        }
        *head = NONE;
        *tail = NONE;
    }

    /// Non-destructive read of the list rooted at `head`, in push order.
    fn collect(&self, head: u32, out: &mut Vec<Seq>) {
        let mut at = head;
        while at != NONE {
            let chunk = &self.chunks[at as usize];
            out.extend_from_slice(&chunk.seqs[..chunk.len as usize]);
            at = chunk.next;
        }
    }

    /// Returns every chunk to the allocator in one step (flush path).
    fn clear(&mut self) {
        self.chunks.clear();
        self.free_head = NONE;
    }
}

/// A read-only view of one in-flight instruction, assembled from the
/// arena's parallel arrays (or borrowed from a [`DynInst`] in scan
/// mode). Field names and helper methods mirror [`DynInst`] so
/// scheduler call sites read identically against either layout; only
/// `info` is behind a reference, because [`StepInfo`] is the one field
/// too large to copy per probe.
#[derive(Debug, Clone, Copy)]
pub struct InstView<'a> {
    /// Fetch sequence number (program order).
    pub seq: Seq,
    /// The functional record of the instruction.
    pub info: &'a StepInfo,
    /// Prediction bookkeeping from the front end.
    pub pred: PredictionInfo,
    /// Unresolved register/LSQ producers this instruction waits on.
    pub pending_deps: u32,
    /// Whether the instruction has been issued to a functional unit.
    pub issued: bool,
    /// Whether execution has finished (result available).
    pub completed: bool,
    /// Cycle the instruction was dispatched into the RUU.
    pub dispatch_cycle: u64,
    /// Cycle the instruction issued (valid when `issued`).
    pub issue_cycle: u64,
    /// Cycle execution completes (valid when `issued`).
    pub complete_cycle: u64,
}

impl<'a> InstView<'a> {
    /// The functional-unit class this instruction needs.
    pub fn fu_class(&self) -> reese_isa::FuClass {
        self.info.instr.op.fu_class()
    }

    /// Whether all operands are available and the instruction can be
    /// considered by the scheduler.
    pub fn ready(&self) -> bool {
        !self.issued && !self.completed && self.pending_deps == 0
    }

    /// Whether this is a load or store.
    pub fn is_mem(&self) -> bool {
        self.info.mem.is_some()
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.info.mem.is_some_and(|m| m.is_store)
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_control(&self) -> bool {
        self.info.instr.op.is_control()
    }
}

impl DynInst {
    /// A view of this record with the same shape the arena produces.
    pub fn view(&self) -> InstView<'_> {
        InstView {
            seq: self.seq,
            info: &self.info,
            pred: self.pred,
            pending_deps: self.pending_deps,
            issued: self.issued,
            completed: self.completed,
            dispatch_cycle: self.dispatch_cycle,
            issue_cycle: self.issue_cycle,
            complete_cycle: self.complete_cycle,
        }
    }
}

/// Instruction-status flag: issued to a functional unit.
const F_ISSUED: u8 = 1 << 0;
/// Instruction-status flag: execution finished.
const F_COMPLETED: u8 = 1 << 1;

/// Structure-of-arrays store for the in-flight instruction window.
///
/// Hot scheduler fields (`pending_deps`, status flags,
/// `complete_cycle`, consumer-list roots) and cold functional fields
/// (`StepInfo`, `PredictionInfo`, dispatch/issue cycles) live in
/// sibling parallel arrays indexed by `seq & mask`; see the module
/// docs for the mapping argument.
#[derive(Debug, Clone)]
pub struct InstArena {
    mask: u64,
    head_seq: Seq,
    len: usize,
    // Hot arrays: touched by per-cycle probes, wake-up and run walks.
    pending_deps: Vec<u32>,
    flags: Vec<u8>,
    complete_cycle: Vec<u64>,
    consumer_head: Vec<u32>,
    consumer_tail: Vec<u32>,
    // Cold arrays: written at dispatch, read at writeback/commit.
    // `info` is filled lazily (StepInfo has no Default): empty until
    // the first dispatch, whose record seeds every slot.
    info: Vec<StepInfo>,
    pred: Vec<PredictionInfo>,
    dispatch_cycle: Vec<u64>,
    issue_cycle: Vec<u64>,
    pool: ConsumerPool,
}

impl InstArena {
    /// Creates an empty arena able to hold `capacity` in-flight
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> InstArena {
        assert!(capacity > 0, "arena capacity must be positive");
        let slots = capacity.next_power_of_two();
        InstArena {
            mask: (slots - 1) as u64,
            head_seq: 0,
            len: 0,
            pending_deps: vec![0; slots],
            flags: vec![0; slots],
            complete_cycle: vec![0; slots],
            consumer_head: vec![NONE; slots],
            consumer_tail: vec![NONE; slots],
            info: Vec::new(),
            pred: vec![PredictionInfo::default(); slots],
            dispatch_cycle: vec![0; slots],
            issue_cycle: vec![0; slots],
            pool: ConsumerPool::new(),
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequence number of the oldest in-flight instruction (the next
    /// one to dispatch when empty).
    pub fn head_seq(&self) -> Seq {
        self.head_seq
    }

    #[inline]
    fn slot(&self, seq: Seq) -> usize {
        (seq & self.mask) as usize
    }

    /// Whether `seq` is in the live window.
    #[inline]
    pub fn contains(&self, seq: Seq) -> bool {
        seq >= self.head_seq && seq - self.head_seq < self.len as u64
    }

    /// Writes a freshly dispatched instruction into its slot. Register
    /// wiring (consumer edges, pending counts) is layered on by the
    /// caller via [`InstArena::add_consumer`] / [`InstArena::inc_pending`].
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not the next sequence number in program order
    /// (the caller checks fullness against its configured capacity).
    pub fn dispatch(&mut self, seq: Seq, info: StepInfo, pred: PredictionInfo, cycle: u64) {
        if self.len == 0 {
            self.head_seq = seq;
        } else {
            assert_eq!(
                seq,
                self.head_seq + self.len as u64,
                "dispatch must follow program order"
            );
        }
        if self.info.is_empty() {
            // First dispatch ever: seed the cold array. Non-live slots
            // are never read, so the filler value is immaterial.
            self.info = vec![info; self.mask as usize + 1];
        }
        let s = self.slot(seq);
        self.pending_deps[s] = 0;
        self.flags[s] = 0;
        self.complete_cycle[s] = 0;
        debug_assert_eq!(self.consumer_head[s], NONE, "slot leaked consumer chunks");
        self.info[s] = info;
        self.pred[s] = pred;
        self.dispatch_cycle[s] = cycle;
        self.issue_cycle[s] = 0;
        self.len += 1;
    }

    /// Records a consumer edge: `consumer` waits on `producer`.
    pub fn add_consumer(&mut self, producer: Seq, consumer: Seq) {
        debug_assert!(self.contains(producer));
        let s = self.slot(producer);
        let (mut head, mut tail) = (self.consumer_head[s], self.consumer_tail[s]);
        self.pool.push(&mut head, &mut tail, consumer);
        self.consumer_head[s] = head;
        self.consumer_tail[s] = tail;
    }

    /// Bumps the unresolved-producer count of `seq`.
    pub fn inc_pending(&mut self, seq: Seq) {
        let s = self.slot(seq);
        self.pending_deps[s] += 1;
    }

    /// Drops one unresolved producer of `seq`, returning whether the
    /// instruction is now ready to issue.
    pub fn dec_pending(&mut self, seq: Seq) -> bool {
        let s = self.slot(seq);
        debug_assert!(self.pending_deps[s] > 0);
        self.pending_deps[s] -= 1;
        self.pending_deps[s] == 0 && self.flags[s] == 0
    }

    /// Whether `seq` is ready to issue (unissued, incomplete, no
    /// unresolved producers).
    pub fn is_ready(&self, seq: Seq) -> bool {
        let s = self.slot(seq);
        self.flags[s] == 0 && self.pending_deps[s] == 0
    }

    /// Whether `seq` has finished executing.
    pub fn is_completed(&self, seq: Seq) -> bool {
        self.flags[self.slot(seq)] & F_COMPLETED != 0
    }

    /// Marks `seq` complete and moves its consumer list into `out`
    /// (appended in dispatch order); the chunks return to the pool.
    pub fn complete_into(&mut self, seq: Seq, out: &mut Vec<Seq>) {
        let s = self.slot(seq);
        self.flags[s] |= F_COMPLETED;
        let (mut head, mut tail) = (self.consumer_head[s], self.consumer_tail[s]);
        self.pool.drain(&mut head, &mut tail, out);
        self.consumer_head[s] = head;
        self.consumer_tail[s] = tail;
    }

    /// Records that `seq` issued this cycle.
    pub fn mark_issued(&mut self, seq: Seq, issue_cycle: u64, complete_cycle: u64) {
        let s = self.slot(seq);
        debug_assert!(
            self.flags[s] == 0 && self.pending_deps[s] == 0,
            "only ready instructions issue"
        );
        self.flags[s] |= F_ISSUED;
        self.issue_cycle[s] = issue_cycle;
        self.complete_cycle[s] = complete_cycle;
    }

    /// A view of the in-flight instruction `seq`, if resident.
    pub fn view(&self, seq: Seq) -> Option<InstView<'_>> {
        if !self.contains(seq) {
            return None;
        }
        let s = self.slot(seq);
        Some(InstView {
            seq,
            info: &self.info[s],
            pred: self.pred[s],
            pending_deps: self.pending_deps[s],
            issued: self.flags[s] & F_ISSUED != 0,
            completed: self.flags[s] & F_COMPLETED != 0,
            dispatch_cycle: self.dispatch_cycle[s],
            issue_cycle: self.issue_cycle[s],
            complete_cycle: self.complete_cycle[s],
        })
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<InstView<'_>> {
        if self.len == 0 {
            None
        } else {
            self.view(self.head_seq)
        }
    }

    /// Removes the head, returning an owned record (consumer list
    /// already drained at completion, so `consumers` is empty).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the head has not completed.
    pub fn pop_head(&mut self) -> DynInst {
        assert!(self.len > 0, "pop from empty RUU");
        let seq = self.head_seq;
        let s = self.slot(seq);
        assert!(
            self.flags[s] & F_COMPLETED != 0,
            "popping an incomplete head"
        );
        self.head_seq = seq + 1;
        self.len -= 1;
        DynInst {
            seq,
            info: self.info[s],
            pred: self.pred[s],
            pending_deps: self.pending_deps[s],
            consumers: Vec::new(),
            issued: self.flags[s] & F_ISSUED != 0,
            completed: true,
            dispatch_cycle: self.dispatch_cycle[s],
            issue_cycle: self.issue_cycle[s],
            complete_cycle: self.complete_cycle[s],
        }
    }

    /// Number of contiguous completed instructions starting at
    /// `start_seq`, capped at `max`. A forward walk over the dense flag
    /// array — one byte per probe instead of a ~180-byte `DynInst`
    /// stride.
    pub fn completed_run_len(&self, start_seq: Seq, max: usize) -> usize {
        if !self.contains(start_seq) {
            return 0;
        }
        let window = ((self.head_seq + self.len as u64) - start_seq) as usize;
        let mut run = 0;
        while run < max.min(window) {
            if self.flags[self.slot(start_seq + run as u64)] & F_COMPLETED == 0 {
                break;
            }
            run += 1;
        }
        run
    }

    /// Iterates over the live window, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = InstView<'_>> {
        (self.head_seq..self.head_seq + self.len as u64).map(|seq| {
            self.view(seq)
                .expect("window seqs are resident by construction")
        })
    }

    /// The recorded consumers of `seq`, in dispatch order (test/debug
    /// accessor; the hot path drains via [`InstArena::complete_into`]).
    pub fn consumers_of(&self, seq: Seq) -> Vec<Seq> {
        let mut out = Vec::new();
        if self.contains(seq) {
            self.pool
                .collect(self.consumer_head[self.slot(seq)], &mut out);
        }
        out
    }

    /// Squashes the window and returns every consumer chunk to the
    /// pool. Slot contents need no scrubbing — dispatch rewrites every
    /// field it reads — but the list roots must reset because the pool
    /// indices they hold are gone.
    pub fn clear(&mut self) {
        self.len = 0;
        self.pool.clear();
        self.consumer_head.fill(NONE);
        self.consumer_tail.fill(NONE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::{step, ArchState};
    use reese_isa::{abi::*, Instr, Opcode};
    use reese_mem::Memory;

    fn info_for(instr: Instr) -> StepInfo {
        let mut s = ArchState::new(0x1000);
        let mut m = Memory::new();
        step(&mut s, &instr, &mut m)
    }

    fn li(rd: reese_isa::Reg, imm: i64) -> StepInfo {
        info_for(Instr::rri(Opcode::Li, rd, ZERO, imm))
    }

    #[test]
    fn slot_mapping_is_injective_over_a_full_window() {
        // Capacity 3 → 4 slots; a full window of 3 live seqs anywhere
        // in the sequence space must land on 3 distinct slots.
        let mut a = InstArena::new(3);
        for base in [0u64, 5, 1021] {
            a.clear();
            for seq in base..base + 3 {
                a.dispatch(seq, li(T0, 1), PredictionInfo::default(), 0);
            }
            for seq in base..base + 3 {
                assert_eq!(a.view(seq).unwrap().seq, seq);
                a.complete_into(seq, &mut Vec::new());
            }
            for _ in 0..3 {
                a.pop_head();
            }
        }
    }

    #[test]
    fn consumer_pool_chains_and_recycles_chunks() {
        let mut a = InstArena::new(32);
        a.dispatch(0, li(T0, 1), PredictionInfo::default(), 0);
        // Fan-out past one chunk: 2×CHUNK_CAP + 1 consumers.
        let consumers: Vec<Seq> = (1..=2 * CHUNK_CAP as u64 + 1).collect();
        for &c in &consumers {
            a.dispatch(c, li(T1, 2), PredictionInfo::default(), 0);
            a.add_consumer(0, c);
            a.inc_pending(c);
        }
        assert_eq!(a.consumers_of(0), consumers);
        let chunks_before = a.pool.chunks.len();
        let mut woken = Vec::new();
        a.complete_into(0, &mut woken);
        assert_eq!(woken, consumers, "wake-up preserves dispatch order");
        assert!(a.consumers_of(0).is_empty());
        // Recycled: building a same-shaped list allocates no new chunk.
        a.pop_head();
        a.dispatch(
            2 * CHUNK_CAP as u64 + 2,
            li(T0, 1),
            PredictionInfo::default(),
            0,
        );
        for c in &consumers {
            a.add_consumer(2 * CHUNK_CAP as u64 + 2, c + 100);
        }
        assert_eq!(a.pool.chunks.len(), chunks_before, "free list recycles");
    }

    #[test]
    fn clear_resets_list_roots() {
        let mut a = InstArena::new(8);
        a.dispatch(0, li(T0, 1), PredictionInfo::default(), 0);
        a.dispatch(1, li(T1, 2), PredictionInfo::default(), 0);
        a.add_consumer(0, 1);
        a.clear();
        assert!(a.is_empty());
        // Re-dispatch into the same slots: stale pool roots would trip
        // the leak debug_assert or read freed chunks.
        a.dispatch(0, li(T0, 1), PredictionInfo::default(), 0);
        assert!(a.consumers_of(0).is_empty());
    }

    #[test]
    fn completed_run_walk() {
        let mut a = InstArena::new(8);
        for seq in 0..5 {
            a.dispatch(seq, li(T0, seq as i64), PredictionInfo::default(), 0);
        }
        for seq in [0u64, 1, 3] {
            a.mark_issued(seq, 1, 2);
            a.complete_into(seq, &mut Vec::new());
        }
        assert_eq!(a.completed_run_len(0, 8), 2);
        assert_eq!(a.completed_run_len(0, 1), 1);
        assert_eq!(a.completed_run_len(2, 8), 0);
        assert_eq!(a.completed_run_len(3, 8), 1);
        assert_eq!(a.completed_run_len(99, 8), 0);
    }
}
