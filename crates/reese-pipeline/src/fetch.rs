//! The front end: oracle-driven instruction delivery with branch
//! prediction and a replay window.
//!
//! Simulation is execution-driven (SimpleScalar style): the functional
//! emulator runs the *correct* path, and the front end charges timing
//! penalties when the branch predictor would have gone the other way —
//! fetch simply stalls until the mispredicted instruction resolves, then
//! pays a redirect penalty. Wrong-path instructions are not injected.
//!
//! Every fetched-but-uncommitted instruction stays in a replay window so
//! a REESE error-detection flush can rewind fetch to the faulting
//! instruction without disturbing architectural state.

use crate::{PredictionInfo, Seq};
use reese_bpred::{BranchStats, BranchUnit, PredictorConfig};
use reese_cpu::{EmuError, Emulator, StepInfo};
use reese_isa::{Instr, OpKind, Opcode, Program, Reg};
use reese_mem::MemHierarchy;
use std::collections::VecDeque;

/// One instruction delivered by the front end.
#[derive(Debug, Clone, Copy)]
pub struct Fetched {
    /// Fetch sequence number (program order).
    pub seq: Seq,
    /// Functional record.
    pub info: StepInfo,
    /// Prediction bookkeeping (for resolution at writeback).
    pub pred: PredictionInfo,
}

/// The fetch unit.
///
/// # Example
///
/// ```
/// use reese_bpred::PredictorConfig;
/// use reese_mem::{HierarchyConfig, MemHierarchy};
/// use reese_pipeline::FetchUnit;
///
/// let prog = reese_isa::assemble("  li t0, 1\n  halt\n")?;
/// let mut hier = MemHierarchy::new(HierarchyConfig::paper());
/// let mut fetch = FetchUnit::new(&prog, PredictorConfig::paper());
/// let got = fetch.fetch_cycle(1, 8, 16, &mut hier);
/// assert!(got.len() <= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FetchUnit {
    emulator: Emulator,
    branch: BranchUnit,
    /// Window of fetched-but-uncommitted instructions; `buffer[0]` has
    /// sequence number `base_seq`.
    buffer: VecDeque<StepInfo>,
    base_seq: Seq,
    /// Next buffer index to deliver.
    cursor: usize,
    /// Mispredicted control instruction fetch is stalled on.
    blocked_on: Option<Seq>,
    /// Earliest cycle fetch may run (icache stall / redirect penalty).
    resume_at: u64,
    /// A halt has been delivered and not flushed away.
    delivered_halt: bool,
    /// The emulator has produced its final instruction (halt or error).
    emu_done: bool,
    emu_error: Option<EmuError>,
    total_fetched: u64,
    /// Instruction size of the running program's ISA; return-address
    /// pushes use it to compute the link address (`pc + size`).
    inst_size: u64,
}

impl FetchUnit {
    /// Creates a front end over a freshly loaded program.
    pub fn new(program: &Program, predictor: PredictorConfig) -> FetchUnit {
        FetchUnit {
            emulator: Emulator::new(program),
            branch: BranchUnit::new(predictor),
            buffer: VecDeque::new(),
            base_seq: 0,
            cursor: 0,
            blocked_on: None,
            resume_at: 0,
            delivered_halt: false,
            emu_done: false,
            emu_error: None,
            total_fetched: 0,
            inst_size: program.inst_size(),
        }
    }

    /// Creates a front end resuming mid-program from a restored
    /// emulator (checkpoint restore). The emulator must sit exactly at
    /// an instruction boundary; `emulator.instructions()` becomes the
    /// next sequence number, so dynamic numbering continues exactly
    /// where the monolithic run would be. Unlike
    /// [`FetchUnit::fast_forward`], this needs no functional replay.
    pub fn from_restored(emulator: Emulator, predictor: PredictorConfig) -> FetchUnit {
        let emu_done = emulator.exit_code().is_some();
        FetchUnit {
            base_seq: emulator.instructions(),
            branch: BranchUnit::new(predictor),
            inst_size: emulator.inst_size(),
            emulator,
            buffer: VecDeque::new(),
            cursor: 0,
            blocked_on: None,
            resume_at: 0,
            delivered_halt: false,
            emu_done,
            emu_error: None,
            total_fetched: 0,
        }
    }

    /// Overwrites the branch unit's dynamic state (checkpoint warm-up).
    pub fn import_branch_state(&mut self, snap: &reese_bpred::BranchSnapshot) {
        self.branch.import_state(snap);
    }

    /// Sequence number of the next instruction to deliver.
    pub fn next_seq(&self) -> Seq {
        self.base_seq + self.cursor as Seq
    }

    /// Whether fetch is stalled on an unresolved misprediction.
    pub fn is_blocked(&self) -> bool {
        self.blocked_on.is_some()
    }

    /// Whether the front end can never deliver another instruction
    /// (halt delivered, or emulator finished/errored with the window
    /// drained).
    pub fn exhausted(&self) -> bool {
        self.delivered_halt || (self.emu_done && self.cursor == self.buffer.len())
    }

    /// Earliest cycle at or after `now` when fetch could deliver an
    /// instruction, or `None` if it cannot run until some pipeline event
    /// unblocks it (stalled on a misprediction, or out of instructions).
    ///
    /// `Some(now)` means fetch is active *this* cycle; the event-driven
    /// loop uses this to decide whether the clock may jump ahead, and if
    /// so, how far.
    pub fn next_fetch_cycle(&self, now: u64) -> Option<u64> {
        if self.blocked_on.is_some() || self.exhausted() {
            None
        } else {
            Some(self.resume_at.max(now))
        }
    }

    /// The emulator error that terminated instruction supply, if any.
    pub fn error(&self) -> Option<&EmuError> {
        self.emu_error.as_ref()
    }

    /// Total instructions delivered (replays count again).
    pub fn total_fetched(&self) -> u64 {
        self.total_fetched
    }

    /// Branch predictor statistics.
    pub fn branch_stats(&self) -> BranchStats {
        self.branch.stats()
    }

    /// Final register-state digest (valid once the program has halted).
    pub fn state_digest(&self) -> u64 {
        self.emulator.state().digest()
    }

    /// Read-only access to the architectural memory (for tests).
    pub fn memory(&self) -> &reese_mem::Memory {
        self.emulator.memory()
    }

    fn ensure_buffered(&mut self) -> bool {
        if self.cursor < self.buffer.len() {
            return true;
        }
        if self.emu_done {
            return false;
        }
        match self.emulator.step() {
            Ok(info) => {
                if info.halted {
                    self.emu_done = true;
                }
                self.buffer.push_back(info);
                true
            }
            Err(e) => {
                self.emu_error = Some(e);
                self.emu_done = true;
                false
            }
        }
    }

    /// Runs one fetch cycle: delivers up to `min(width, queue_space)`
    /// instructions, consulting the instruction cache and the branch
    /// predictor.
    pub fn fetch_cycle(
        &mut self,
        cycle: u64,
        width: usize,
        queue_space: usize,
        hierarchy: &mut MemHierarchy,
    ) -> Vec<Fetched> {
        let mut out = Vec::new();
        if self.blocked_on.is_some() || self.delivered_halt || cycle < self.resume_at {
            return out;
        }
        let l1i_hit = 2; // accounted inside the fetch pipeline depth
        while out.len() < width.min(queue_space) {
            if !self.ensure_buffered() {
                break;
            }
            let info = self.buffer[self.cursor];
            let latency = hierarchy.access_inst(info.pc);
            if latency > l1i_hit {
                // Instruction-cache miss: stall; the retry will hit.
                self.resume_at = cycle + u64::from(latency);
                break;
            }
            let seq = self.next_seq();
            let (pred, end_group) = self.predict(&info);
            self.cursor += 1;
            self.total_fetched += 1;
            if info.halted {
                self.delivered_halt = true;
            }
            out.push(Fetched { seq, info, pred });
            if pred.mispredicted {
                self.blocked_on = Some(seq);
                break;
            }
            if self.delivered_halt || end_group {
                break;
            }
        }
        out
    }

    /// Consults the predictors for a control instruction; returns the
    /// bookkeeping and whether the fetch group must end (taken control
    /// flow redirects fetch to a new address next cycle).
    fn predict(&mut self, info: &StepInfo) -> (PredictionInfo, bool) {
        let mut pred = PredictionInfo::default();
        let instr: &Instr = &info.instr;
        match instr.op.kind() {
            OpKind::Branch => {
                let predicted = self.branch.predict_branch(info.pc);
                pred.predicted_taken = Some(predicted);
                if predicted != info.taken {
                    pred.mispredicted = true;
                }
                (pred, info.taken)
            }
            OpKind::Jump => {
                if instr.op == Opcode::Jal {
                    if instr.rd == Reg::RA {
                        self.branch.push_return(info.pc + self.inst_size);
                    }
                    // Direct target: computed in decode, one-cycle redirect.
                    (pred, true)
                } else {
                    let is_return = instr.rd.is_zero() && instr.rs1 == Reg::RA;
                    let predicted = if is_return {
                        self.branch.pop_return()
                    } else {
                        self.branch.predict_indirect(info.pc)
                    };
                    pred.predicted_target = Some(predicted);
                    if instr.rd == Reg::RA {
                        self.branch.push_return(info.pc + self.inst_size);
                    }
                    if predicted != Some(info.next_pc) {
                        pred.mispredicted = true;
                    }
                    (pred, true)
                }
            }
            _ => (pred, false),
        }
    }

    /// Called at writeback when a control instruction resolves: trains
    /// the predictors and, if fetch was stalled on it, schedules the
    /// redirect.
    pub fn resolve_control(&mut self, fetched: &Fetched, cycle: u64, mispredict_penalty: u32) {
        let info = &fetched.info;
        if let Some(predicted) = fetched.pred.predicted_taken {
            self.branch.resolve_branch(info.pc, predicted, info.taken);
        }
        if let Some(predicted) = fetched.pred.predicted_target {
            self.branch
                .resolve_indirect(info.pc, predicted, info.next_pc);
        }
        if self.blocked_on == Some(fetched.seq) {
            self.blocked_on = None;
            self.resume_at = cycle + 1 + u64::from(mispredict_penalty);
        }
    }

    /// Notifies that the oldest `n` instructions committed, shrinking
    /// the replay window.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the delivered-but-uncommitted count.
    pub fn on_commit(&mut self, n: usize) {
        assert!(
            n <= self.cursor,
            "committing instructions that were never delivered"
        );
        self.buffer.drain(..n);
        self.base_seq += n as Seq;
        self.cursor -= n;
    }

    /// Fast-forwards the machine functionally by up to `n` instructions
    /// (SimpleScalar's `-fastfwd`): architectural state advances, but no
    /// timing structures see the skipped instructions. Returns how many
    /// instructions were actually skipped (fewer if the program halts
    /// first — the halt itself is left for the timed region).
    ///
    /// # Panics
    ///
    /// Panics if any instruction has already been fetched.
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        assert!(
            self.base_seq == 0 && self.cursor == 0 && self.buffer.is_empty(),
            "fast-forward must precede fetch"
        );
        let mut skipped = 0;
        while skipped < n {
            if !self.ensure_buffered() {
                break;
            }
            if self.buffer[0].halted {
                break; // leave the halt to be fetched, timed, committed
            }
            self.buffer.clear();
            self.base_seq += 1;
            skipped += 1;
        }
        skipped
    }

    /// Rewinds fetch to `seq` (a REESE detection flush): every delivered
    /// instruction at or after `seq` will be delivered again. Fetch
    /// resumes at `resume_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is outside the replay window.
    pub fn flush_to(&mut self, seq: Seq, resume_cycle: u64) {
        assert!(
            seq >= self.base_seq && seq <= self.next_seq(),
            "flush target {seq} outside replay window [{}, {}]",
            self.base_seq,
            self.next_seq()
        );
        self.cursor = (seq - self.base_seq) as usize;
        self.blocked_on = None;
        self.delivered_halt = false;
        self.resume_at = resume_cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;
    use reese_mem::HierarchyConfig;

    fn hier() -> MemHierarchy {
        MemHierarchy::new(HierarchyConfig::paper())
    }

    fn unit(src: &str) -> FetchUnit {
        FetchUnit::new(&assemble(src).unwrap(), PredictorConfig::paper())
    }

    /// Drains the front end completely, resolving all control.
    fn drain(f: &mut FetchUnit, h: &mut MemHierarchy) -> Vec<Fetched> {
        let mut all = Vec::new();
        for cycle in 1..10_000 {
            let batch = f.fetch_cycle(cycle, 8, 64, h);
            for fi in &batch {
                if fi.info.instr.op.is_control() {
                    f.resolve_control(fi, cycle, 3);
                }
            }
            all.extend(batch);
            if f.exhausted() {
                break;
            }
        }
        all
    }

    #[test]
    fn straight_line_fetch() {
        let mut f = unit("  li t0, 1\n  li t1, 2\n  add t2, t0, t1\n  halt\n");
        let mut h = hier();
        let all = drain(&mut f, &mut h);
        assert_eq!(all.len(), 4);
        assert_eq!(all.last().unwrap().info.instr.op, Opcode::Halt);
        assert!(f.exhausted());
        // Sequence numbers are consecutive from zero.
        let seqs: Vec<Seq> = all.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn taken_branch_ends_fetch_group() {
        // A tight countdown loop: the backward branch is taken 4 times.
        let mut f = unit("  li t0, 5\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n");
        let mut h = hier();
        let all = drain(&mut f, &mut h);
        // 1 li + 5*(addi,bne) + halt = 12 dynamic instructions.
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn misprediction_blocks_until_resolved() {
        let mut f = unit("  li t0, 1\n  beqz t0, skip\n  nop\nskip: halt\n");
        let mut h = hier();
        // beqz is not taken (t0 = 1); a cold gshare predicts not-taken,
        // so this particular branch is *correctly* predicted. Train the
        // opposite first via a taken loop to force a mispredict instead:
        let mut got = Vec::new();
        let mut cycle = 0;
        while !f.exhausted() && cycle < 1000 {
            cycle += 1;
            let batch = f.fetch_cycle(cycle, 8, 64, &mut h);
            if let Some(last) = batch.last() {
                if last.pred.mispredicted {
                    assert!(f.is_blocked());
                    let before = f.fetch_cycle(cycle + 1, 8, 64, &mut h);
                    assert!(before.is_empty(), "no fetch while blocked");
                    f.resolve_control(last, cycle + 1, 3);
                    assert!(!f.is_blocked());
                    // Redirect penalty: nothing until cycle + 1 + 1 + 3.
                    assert!(f.fetch_cycle(cycle + 2, 8, 64, &mut h).is_empty());
                }
            }
            for fi in &batch {
                if fi.info.instr.op.is_control() && !fi.pred.mispredicted {
                    f.resolve_control(fi, cycle, 3);
                }
            }
            got.extend(batch);
        }
        assert!(f.exhausted());
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn replay_window_and_flush() {
        let mut f = unit("  li t0, 1\n  li t1, 2\n  li t2, 3\n  halt\n");
        let mut h = hier();
        let all = drain(&mut f, &mut h);
        assert_eq!(all.len(), 4);
        // Nothing committed yet; rewind to seq 1 and refetch.
        f.flush_to(1, 0);
        assert!(!f.exhausted());
        let replay = drain(&mut f, &mut h);
        assert_eq!(replay.len(), 3);
        assert_eq!(replay[0].seq, 1);
        assert_eq!(replay[0].info.instr.op, Opcode::Li);
        // Functional record identical on replay.
        assert_eq!(replay[0].info, all[1].info);
    }

    #[test]
    fn commit_shrinks_replay_window() {
        let mut f = unit("  li t0, 1\n  li t1, 2\n  halt\n");
        let mut h = hier();
        drain(&mut f, &mut h);
        f.on_commit(2);
        // Flushing to a committed seq is now impossible.
        f.flush_to(2, 0); // seq 2 (halt) still uncommitted: fine
        assert!(!f.exhausted());
    }

    #[test]
    #[should_panic(expected = "outside replay window")]
    fn flush_before_window_panics() {
        let mut f = unit("  li t0, 1\n  li t1, 2\n  halt\n");
        let mut h = hier();
        drain(&mut f, &mut h);
        f.on_commit(2);
        f.flush_to(0, 0);
    }

    #[test]
    fn next_fetch_cycle_tracks_stall_state() {
        let mut f = unit("  li t0, 1\n  li t1, 2\n  halt\n");
        let mut h = hier();
        assert_eq!(f.next_fetch_cycle(1), Some(1));
        drain(&mut f, &mut h);
        // Exhausted: no future cycle will deliver anything.
        assert_eq!(f.next_fetch_cycle(5), None);
        // A flush re-arms fetch at its resume cycle.
        f.flush_to(1, 9);
        assert_eq!(f.next_fetch_cycle(5), Some(9));
        assert_eq!(f.next_fetch_cycle(12), Some(12));
    }

    #[test]
    fn queue_space_respected() {
        let mut f = unit("  li t0, 1\n  li t1, 2\n  li t2, 3\n  halt\n");
        let mut h = hier();
        let got = f.fetch_cycle(1, 8, 2, &mut h);
        assert!(got.len() <= 2);
    }

    #[test]
    fn wild_jump_surfaces_emulator_error() {
        let mut f = unit("  li t0, 0x900000\n  jalr x0, 0(t0)\n  halt\n");
        let mut h = hier();
        let mut all = Vec::new();
        for cycle in 1..100 {
            let batch = f.fetch_cycle(cycle, 8, 64, &mut h);
            for fi in &batch {
                if fi.info.instr.op.is_control() {
                    f.resolve_control(fi, cycle, 3);
                }
            }
            all.extend(batch);
            if f.exhausted() {
                break;
            }
        }
        assert!(f.error().is_some());
        assert_eq!(
            all.len(),
            2,
            "li and jalr only; the wild target is unfetchable"
        );
    }

    #[test]
    fn call_return_uses_ras() {
        let mut f = unit(
            "        .entry main\n\
             f:      ret\n\
             main:   call f\n\
                     halt\n",
        );
        let mut h = hier();
        let all = drain(&mut f, &mut h);
        assert_eq!(all.len(), 3);
        // The `ret` should have been RAS-predicted, not a mispredict.
        let ret = all
            .iter()
            .find(|x| x.info.instr.op == Opcode::Jalr)
            .unwrap();
        assert!(!ret.pred.mispredicted, "RAS must predict the return");
    }
}
