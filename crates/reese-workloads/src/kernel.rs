//! The kernel catalogue and dynamic-length calibration.

use crate::kernels;
use reese_cpu::Emulator;
use reese_isa::Program;
use std::fmt;

/// The six SPEC95-integer-like kernels (Table 2 of the paper).
///
/// Each kernel is a synthetic program whose *microarchitectural
/// signature* — instruction mix, branch behaviour, memory footprint,
/// ILP — mirrors the corresponding SPEC95 integer benchmark. See the
/// module docs of each kernel for what is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    /// gcc-like: branchy expression-node dispatch.
    Compiler,
    /// go-like: board evaluation with unpredictable branches.
    Gameplay,
    /// ijpeg-like: unrolled integer DCT with high ILP.
    Imaging,
    /// li-like: cons-cell pointer chasing.
    Lisp,
    /// perl-like: byte scanning and hashing.
    Strings,
    /// vortex-like: indexed record lookups and copies.
    Database,
}

impl Kernel {
    /// All kernels, in Table 2 order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Compiler,
        Kernel::Gameplay,
        Kernel::Imaging,
        Kernel::Lisp,
        Kernel::Strings,
        Kernel::Database,
    ];

    /// Short name used in tables and harness output.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Compiler => "compiler",
            Kernel::Gameplay => "gameplay",
            Kernel::Imaging => "imaging",
            Kernel::Lisp => "lisp",
            Kernel::Strings => "strings",
            Kernel::Database => "database",
        }
    }

    /// The SPEC95 benchmark this kernel stands in for.
    pub fn paper_benchmark(self) -> &'static str {
        match self {
            Kernel::Compiler => "gcc",
            Kernel::Gameplay => "go",
            Kernel::Imaging => "ijpeg",
            Kernel::Lisp => "li",
            Kernel::Strings => "perl",
            Kernel::Database => "vortex",
        }
    }

    /// The input the paper fed that benchmark (Table 2).
    pub fn paper_input(self) -> &'static str {
        match self {
            Kernel::Compiler => "stmt-protoize.i",
            Kernel::Gameplay => "train",
            Kernel::Imaging => "train",
            Kernel::Lisp => "train",
            Kernel::Strings => "scrabbl.pl",
            Kernel::Database => "train",
        }
    }

    /// Builds the kernel at an explicit scale (passes/iteration units).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn build(self, scale: u32) -> Program {
        assert!(scale > 0, "scale must be positive");
        match self {
            Kernel::Compiler => kernels::compiler::build(scale),
            Kernel::Gameplay => kernels::gameplay::build(scale),
            Kernel::Imaging => kernels::imaging::build(scale),
            Kernel::Lisp => kernels::lisp::build(scale),
            Kernel::Strings => kernels::strings::build(scale),
            Kernel::Database => kernels::database::build(scale),
        }
    }

    /// Builds the kernel scaled so its dynamic instruction count is at
    /// least `target_instructions` (and within about one pass of it).
    ///
    /// Calibration probes the kernel functionally at two small scales
    /// to learn its per-pass cost, then solves for the right scale —
    /// the moral equivalent of the paper picking "100 million
    /// instructions" per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if a probe run fails (a kernel bug, not an input error).
    pub fn build_for(self, target_instructions: u64) -> Program {
        let probe = |scale: u32| -> u64 {
            Emulator::new(&self.build(scale))
                .run(u64::MAX)
                .expect("kernel probe must halt")
                .instructions
        };
        let at1 = probe(1);
        let at3 = probe(3);
        let per_pass = (at3 - at1) / 2;
        let fixed = at1.saturating_sub(per_pass);
        if target_instructions <= at1 {
            return self.build(1);
        }
        let need = target_instructions - fixed;
        let scale = need.div_ceil(per_pass.max(1)).max(1);
        self.build(u32::try_from(scale).unwrap_or(u32::MAX))
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build_and_halt() {
        for k in Kernel::ALL {
            let prog = k.build(1);
            let r = Emulator::new(&prog).run(5_000_000).unwrap();
            assert!(r.halted(), "{k} must halt");
            assert!(!r.output.is_empty(), "{k} must print a checksum");
        }
    }

    #[test]
    fn names_and_paper_mapping_unique() {
        let names: std::collections::HashSet<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 6);
        let bench: std::collections::HashSet<_> =
            Kernel::ALL.iter().map(|k| k.paper_benchmark()).collect();
        assert_eq!(bench.len(), 6);
        for k in Kernel::ALL {
            assert!(!k.paper_input().is_empty());
        }
    }

    #[test]
    fn build_for_hits_target() {
        for k in [Kernel::Compiler, Kernel::Lisp] {
            let target = 120_000;
            let prog = k.build_for(target);
            let n = Emulator::new(&prog).run(u64::MAX).unwrap().instructions;
            assert!(n >= target, "{k}: {n} < {target}");
            assert!(n < target * 3, "{k}: overshoot {n}");
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        Kernel::Compiler.build(0);
    }
}
