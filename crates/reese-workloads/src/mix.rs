//! Instruction-mix measurement, for validating that each kernel's
//! microarchitectural signature resembles its SPEC95 counterpart.

use reese_cpu::Emulator;
use reese_isa::{OpKind, Opcode, Program};
use std::fmt;

/// Dynamic instruction mix of a program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixReport {
    /// Total dynamic instructions.
    pub total: u64,
    /// Plain integer ALU operations.
    pub int_alu: u64,
    /// Integer multiplies/divides.
    pub int_muldiv: u64,
    /// Floating-point operations.
    pub fp: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub branches_taken: u64,
    /// Unconditional jumps.
    pub jumps: u64,
}

impl MixReport {
    /// Fraction of loads + stores.
    pub fn mem_fraction(&self) -> f64 {
        self.frac(self.loads + self.stores)
    }

    /// Fraction of conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        self.frac(self.branches)
    }

    /// Fraction of integer multiplies/divides.
    pub fn muldiv_fraction(&self) -> f64 {
        self.frac(self.int_muldiv)
    }

    /// Fraction of taken branches among conditional branches.
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branches_taken as f64 / self.branches as f64
        }
    }

    fn frac(&self, n: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }
}

impl fmt::Display for MixReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insns: {:.1}% mem ({:.1}% ld / {:.1}% st), {:.1}% branch ({:.0}% taken), {:.1}% mul/div, {:.1}% fp",
            self.total,
            self.mem_fraction() * 100.0,
            self.frac(self.loads) * 100.0,
            self.frac(self.stores) * 100.0,
            self.branch_fraction() * 100.0,
            self.taken_rate() * 100.0,
            self.muldiv_fraction() * 100.0,
            self.frac(self.fp) * 100.0,
        )
    }
}

/// Measures the dynamic instruction mix of `program` by functional
/// execution (up to `max_instructions`).
///
/// # Example
///
/// ```
/// let prog = reese_isa::assemble("  li t0, 4\nloop: addi t0, t0, -1\n  bnez t0, loop\n  halt\n")?;
/// let mix = reese_workloads::measure_mix(&prog, 1_000);
/// assert_eq!(mix.total, 10);
/// assert_eq!(mix.branches, 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn measure_mix(program: &Program, max_instructions: u64) -> MixReport {
    let mut emu = Emulator::new(program);
    let mut mix = MixReport::default();
    for _ in 0..max_instructions {
        let Ok(info) = emu.step() else { break };
        mix.total += 1;
        let op = info.instr.op;
        match op.kind() {
            OpKind::Load => mix.loads += 1,
            OpKind::Store => mix.stores += 1,
            OpKind::Branch => {
                mix.branches += 1;
                if info.taken {
                    mix.branches_taken += 1;
                }
            }
            OpKind::Jump => mix.jumps += 1,
            OpKind::Alu | OpKind::System => match op.fu_class() {
                reese_isa::FuClass::IntMulDiv => mix.int_muldiv += 1,
                reese_isa::FuClass::FpAlu | reese_isa::FuClass::FpMulDiv => mix.fp += 1,
                _ => mix.int_alu += 1,
            },
        }
        if op == Opcode::Halt {
            break;
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_isa::assemble;

    #[test]
    fn counts_kinds() {
        let prog = assemble(
            "  li t0, 2\n  sd t0, -8(sp)\n  ld t1, -8(sp)\n  mul t2, t1, t1\n  beqz x0, next\nnext: halt\n",
        )
        .unwrap();
        let m = measure_mix(&prog, 100);
        assert_eq!(m.total, 6);
        assert_eq!(m.loads, 1);
        assert_eq!(m.stores, 1);
        assert_eq!(m.int_muldiv, 1);
        assert_eq!(m.branches, 1);
        assert_eq!(m.branches_taken, 1);
        assert!((m.mem_fraction() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn limit_respected() {
        let prog = assemble("loop: j loop\n  halt\n").unwrap();
        let m = measure_mix(&prog, 25);
        assert_eq!(m.total, 25);
        assert_eq!(m.jumps, 25);
    }

    #[test]
    fn display_nonempty() {
        let m = MixReport {
            total: 10,
            loads: 3,
            ..Default::default()
        };
        assert!(m.to_string().contains("30.0% ld"));
    }
}
