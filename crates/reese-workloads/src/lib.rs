//! SPEC95-integer-like workloads for the REESE reproduction.
//!
//! The paper evaluates on six SPEC95 integer benchmarks (Table 2). SPEC
//! binaries and inputs are proprietary and the original runs went
//! through a PISA cross-compiler, so this crate substitutes six
//! hand-crafted kernels — written in the mini ISA via
//! [`reese_isa::ProgramBuilder`] — whose *microarchitectural signatures*
//! (instruction mix, branch predictability, memory behaviour, ILP)
//! mirror the corresponding benchmark. REESE's results depend only on
//! those signatures, not on program semantics, so the substitution
//! preserves what the evaluation measures.
//!
//! [`measure_mix`] quantifies each kernel's signature; the kernel unit
//! tests pin the signatures down. [`SyntheticSpec`] additionally
//! generates random programs with dialled-in mixes for ablations.
//!
//! # Example
//!
//! ```
//! use reese_workloads::{Kernel, measure_mix};
//!
//! let prog = Kernel::Lisp.build(1);
//! let mix = measure_mix(&prog, 100_000);
//! assert!(mix.mem_fraction() > 0.35); // pointer chasing is memory-bound
//! ```

mod kernel;
pub(crate) mod kernels;
mod mix;
pub mod rv32;
mod suite;
mod synthetic;

pub use kernel::Kernel;
pub use mix::{measure_mix, MixReport};
pub use suite::{Suite, Workload};
pub use synthetic::SyntheticSpec;

/// Extra workloads outside the paper's Table 2 suite.
pub mod extras {
    /// Floating-point stencil kernel (the paper studied integer
    /// benchmarks only; this exercises the FP pipeline paths).
    pub use crate::kernels::floatmath::build as floatmath;
    /// Iterative quicksort with an explicit stack: deep data-dependent
    /// control flow and heavy store-to-load forwarding.
    pub use crate::kernels::sorting::build as sorting;
}
