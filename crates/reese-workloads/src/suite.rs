//! The benchmark suite: all six kernels, calibrated to a common length.

use crate::Kernel;
use reese_isa::Program;

/// One calibrated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which kernel this is.
    pub kernel: Kernel,
    /// The built program.
    pub program: Program,
}

/// The full SPEC95-integer-like suite, each kernel calibrated to at
/// least a target dynamic instruction count — the analogue of the
/// paper's "100 million instructions in each benchmark program".
///
/// # Example
///
/// ```
/// use reese_workloads::Suite;
///
/// let suite = Suite::spec95_like(50_000);
/// assert_eq!(suite.len(), 6);
/// assert_eq!(suite.workloads()[0].kernel.paper_benchmark(), "gcc");
/// ```
#[derive(Debug, Clone)]
pub struct Suite {
    workloads: Vec<Workload>,
}

impl Suite {
    /// Builds all six kernels, each with at least `target_instructions`
    /// dynamic instructions.
    pub fn spec95_like(target_instructions: u64) -> Suite {
        let workloads = Kernel::ALL
            .iter()
            .map(|&kernel| Workload {
                kernel,
                program: kernel.build_for(target_instructions),
            })
            .collect();
        Suite { workloads }
    }

    /// A fast suite for tests and smoke runs (one pass of everything).
    pub fn smoke() -> Suite {
        let workloads = Kernel::ALL
            .iter()
            .map(|&kernel| Workload {
                kernel,
                program: kernel.build(1),
            })
            .collect();
        Suite { workloads }
    }

    /// The calibrated workloads, in Table 2 order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Number of workloads (always 6 today).
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the suite is empty (never, today).
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// Iterates (kernel, program) pairs.
    pub fn iter(&self) -> impl Iterator<Item = &Workload> {
        self.workloads.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn smoke_suite_runs_everywhere() {
        let suite = Suite::smoke();
        assert_eq!(suite.len(), 6);
        assert!(!suite.is_empty());
        for w in suite.iter() {
            let r = Emulator::new(&w.program).run(5_000_000).unwrap();
            assert!(r.halted(), "{} halts", w.kernel);
        }
    }

    #[test]
    fn calibrated_suite_meets_target() {
        let target = 60_000;
        let suite = Suite::spec95_like(target);
        for w in suite.iter() {
            let n = Emulator::new(&w.program)
                .run(u64::MAX)
                .unwrap()
                .instructions;
            assert!(n >= target, "{}: {n}", w.kernel);
        }
    }
}
