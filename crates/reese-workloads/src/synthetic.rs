//! Statistical workload generation.
//!
//! Besides the six hand-crafted kernels, the harness sometimes needs a
//! workload with a *dialled-in* signature — "35% memory operations,
//! hard branches, tiny working set" — to isolate one effect (for the
//! ablation benches, and for stress-testing the simulators with
//! programs no human wrote). [`SyntheticSpec`] generates a random but
//! deterministic loop with the requested mix.

use reese_isa::{abi::*, Program, ProgramBuilder, Reg};
use reese_stats::SplitMix64;

/// Specification of a synthetic loop workload.
///
/// The per-instruction weights need not sum to anything in particular;
/// they are relative. The generated program runs `iterations` passes of
/// a `body_len`-operation loop over a `working_set` byte buffer and
/// halts, printing a checksum.
///
/// # Example
///
/// ```
/// use reese_workloads::SyntheticSpec;
///
/// let prog = SyntheticSpec::default().seed(7).build();
/// let mix = reese_workloads::measure_mix(&prog, 100_000);
/// assert!(mix.total > 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Relative weight of plain ALU operations.
    pub alu_weight: u32,
    /// Relative weight of multiplies.
    pub mul_weight: u32,
    /// Relative weight of loads.
    pub load_weight: u32,
    /// Relative weight of stores.
    pub store_weight: u32,
    /// Relative weight of (data-dependent) conditional branches that
    /// skip one instruction.
    pub branch_weight: u32,
    /// Operations per loop body.
    pub body_len: usize,
    /// Loop iterations.
    pub iterations: u32,
    /// Working-set size in bytes (power of two).
    pub working_set: u64,
    /// Generator seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A balanced integer mix over a 4 KiB working set.
    pub fn balanced() -> SyntheticSpec {
        SyntheticSpec {
            alu_weight: 5,
            mul_weight: 0,
            load_weight: 2,
            store_weight: 1,
            branch_weight: 1,
            body_len: 64,
            iterations: 200,
            working_set: 4096,
            seed: 1,
        }
    }

    /// A memory-pounding mix (for the Figure 5 port ablation).
    pub fn memory_heavy() -> SyntheticSpec {
        SyntheticSpec {
            load_weight: 5,
            store_weight: 3,
            alu_weight: 3,
            ..SyntheticSpec::balanced()
        }
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> SyntheticSpec {
        self.seed = seed;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(mut self, n: u32) -> SyntheticSpec {
        self.iterations = n;
        self
    }

    /// Generates the program.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero, `body_len` or `iterations` is
    /// zero, or `working_set` is not a power of two.
    pub fn build(&self) -> Program {
        let total_weight = self.alu_weight
            + self.mul_weight
            + self.load_weight
            + self.store_weight
            + self.branch_weight;
        assert!(
            total_weight > 0,
            "at least one operation class must be weighted"
        );
        assert!(self.body_len > 0, "body must be non-empty");
        assert!(self.iterations > 0, "need at least one iteration");
        assert!(
            self.working_set.is_power_of_two(),
            "working set must be a power of two"
        );

        let mut rng = SplitMix64::new(self.seed);
        let mut b = ProgramBuilder::new();
        let buf = b.data_label("buf");
        for _ in 0..self.working_set / 8 {
            b.dword(rng.next_u64() >> 32);
        }

        // t0-t6 hold live values the generated ops shuffle between.
        let pool: [Reg; 7] = [T0, T1, T2, T3, T4, T5, T6];
        let pick = |rng: &mut SplitMix64| pool[rng.index(pool.len())];

        let top = b.label("top");
        b.la(A0, buf);
        b.li(S0, i64::from(self.iterations));
        for (i, &r) in pool.iter().enumerate() {
            b.li(r, i as i64 + 1);
        }
        b.bind(top);
        for i in 0..self.body_len {
            let mut w = rng.range_u64(0, u64::from(total_weight)) as u32;
            let (rd, r1, r2) = (pick(&mut rng), pick(&mut rng), pick(&mut rng));
            if w < self.alu_weight {
                match rng.index(4) {
                    0 => b.add(rd, r1, r2),
                    1 => b.sub(rd, r1, r2),
                    2 => b.xor(rd, r1, r2),
                    _ => b.addi(rd, r1, rng.range_u64(1, 64) as i64),
                };
                continue;
            }
            w -= self.alu_weight;
            if w < self.mul_weight {
                b.mul(rd, r1, r2);
                continue;
            }
            w -= self.mul_weight;
            if w < self.load_weight + self.store_weight {
                // Half the memory ops use a static (generation-time
                // random) offset — dense port pressure; the other half
                // compute a data-dependent address — real disambiguation
                // work for the LSQ.
                if rng.chance(0.5) {
                    let off = (rng.range_u64(0, self.working_set / 8) * 8) as i64;
                    if w < self.load_weight {
                        b.ld(rd, off, A0);
                    } else {
                        b.sd(r2, off, A0);
                    }
                } else {
                    b.andi(S2, r1, (self.working_set - 1) as i64 & !7);
                    b.add(S2, A0, S2);
                    if w < self.load_weight {
                        b.ld(rd, 0, S2);
                    } else {
                        b.sd(r2, 0, S2);
                    }
                }
                continue;
            }
            // Data-dependent forward branch over one filler op.
            let skip = b.label(&format!("skip{i}"));
            b.andi(S2, r1, 1);
            b.beqz(S2, skip);
            b.addi(rd, rd, 3);
            b.bind(skip);
        }
        b.addi(S0, S0, -1);
        b.bnez(S0, top);
        // Checksum: fold the value pool.
        b.li(S4, 0);
        for &r in &pool {
            b.add(S4, S4, r);
        }
        b.print(S4);
        b.li(A0, 0);
        b.halt();
        b.build().expect("synthetic program assembles")
    }
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_mix;
    use reese_cpu::Emulator;

    #[test]
    fn builds_and_halts() {
        let prog = SyntheticSpec::balanced().build();
        let r = Emulator::new(&prog).run(1_000_000).unwrap();
        assert!(r.halted());
        assert_eq!(r.output.len(), 1);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = SyntheticSpec::balanced().seed(5).build();
        let b = SyntheticSpec::balanced().seed(5).build();
        let c = SyntheticSpec::balanced().seed(6).build();
        assert_eq!(a.text(), b.text());
        assert_ne!(a.text(), c.text());
    }

    #[test]
    fn memory_heavy_actually_is() {
        let light = measure_mix(&SyntheticSpec::balanced().build(), 200_000);
        let heavy = measure_mix(&SyntheticSpec::memory_heavy().build(), 200_000);
        assert!(heavy.mem_fraction() > light.mem_fraction());
        assert!(heavy.mem_fraction() > 0.3, "{heavy}");
    }

    #[test]
    fn weights_steer_the_mix() {
        let muls = SyntheticSpec {
            mul_weight: 5,
            alu_weight: 1,
            ..SyntheticSpec::balanced()
        };
        let m = measure_mix(&muls.build(), 200_000);
        assert!(m.muldiv_fraction() > 0.2, "{m}");
    }

    #[test]
    #[should_panic(expected = "at least one operation class")]
    fn zero_weights_rejected() {
        SyntheticSpec {
            alu_weight: 0,
            mul_weight: 0,
            load_weight: 0,
            store_weight: 0,
            branch_weight: 0,
            ..SyntheticSpec::balanced()
        }
        .build();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_working_set_rejected() {
        SyntheticSpec {
            working_set: 1000,
            ..SyntheticSpec::balanced()
        }
        .build();
    }
}
