//! RV32I ports of the kernel suite, plus a differential harness.
//!
//! Three kernels from the Table-2 catalogue are ported to RV32I
//! assembler source — the same microarchitectural signatures (byte
//! hashing, pointer chasing, unrolled integer arithmetic), expressed in
//! the base RISC-V integer ISA with the M-subset multiply/divide the
//! frontend accepts. They print a checksum with `ecall` (a7 = 1) and
//! exit with `ecall` (a7 = 93), so the same sources run unchanged under
//! every detection scheme, including the SWIFT software transform.
//!
//! [`differential_check`] is the correctness anchor for the whole RV32I
//! frontend: it runs a program in lockstep on the project emulator
//! ([`reese_cpu::Emulator`] via the decoded [`Program`]) and on
//! [`RefCpu`], a from-the-spec interpreter over the **raw u32 words**
//! of the binary image that shares no decode or execute code with
//! `reese-isa`/`reese-cpu`. Any disagreement in pc, register file,
//! output, or exit code — at any step — is reported with the step
//! index, so an encode, decode, or semantics bug in either stack cannot
//! hide behind a matching final checksum.

use reese_cpu::Emulator;
use reese_isa::{IsaId, Program, STACK_TOP};
use std::collections::BTreeMap;
use std::fmt;

/// The RV32I kernel ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rv32Kernel {
    /// ijpeg-like: unrolled integer arithmetic with multiplies.
    Imaging,
    /// li-like: cons-cell pointer chasing through `.word`-linked cells.
    Lisp,
    /// perl-like: byte scanning and a rolling ×33 hash.
    Strings,
}

impl Rv32Kernel {
    /// All ports, in catalogue order.
    pub const ALL: [Rv32Kernel; 3] = [Rv32Kernel::Imaging, Rv32Kernel::Lisp, Rv32Kernel::Strings];

    /// Short name used in tables and harness output.
    pub fn name(self) -> &'static str {
        match self {
            Rv32Kernel::Imaging => "imaging",
            Rv32Kernel::Lisp => "lisp",
            Rv32Kernel::Strings => "strings",
        }
    }

    /// One-line description for `reese kernels`.
    pub fn description(self) -> &'static str {
        match self {
            Rv32Kernel::Imaging => "unrolled integer arithmetic with multiplies (ijpeg-like)",
            Rv32Kernel::Lisp => "cons-cell pointer chasing over .word-linked cells (li-like)",
            Rv32Kernel::Strings => "byte scanning with a rolling x33 hash (perl-like)",
        }
    }

    /// The RV32I assembler source at an explicit scale (outer passes).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn source(self, scale: u32) -> String {
        assert!(scale > 0, "scale must be positive");
        match self {
            Rv32Kernel::Imaging => format!(
                "\
        .entry main
main:   li s2, 0
        li t6, {scale}
pass:   li t0, 3
        li t1, 5
        li t2, 7
        li t3, 11
        mul t4, t0, t1
        mul t5, t2, t3
        add t4, t4, t5
        slli t5, t4, 3
        sub t5, t5, t4
        xor s2, s2, t5
        add s2, s2, t0
        srai t4, s2, 2
        add s2, s2, t4
        addi t6, t6, -1
        bnez t6, pass
        slli a0, s2, 1
        srli a0, a0, 1
        li a7, 1
        ecall
        li a7, 93
        li a0, 0
        ecall
"
            ),
            Rv32Kernel::Lisp => format!(
                "\
        .entry main
main:   li s2, 0
        li t6, {scale}
pass:   la t0, cell0
chase:  beqz t0, next
        lw t1, 0(t0)
        add s2, s2, t1
        lw t0, 4(t0)
        j chase
next:   addi t6, t6, -1
        bnez t6, pass
        mv a0, s2
        li a7, 1
        ecall
        li a7, 93
        li a0, 0
        ecall

        .data
cell0:  .word 7, cell3
cell1:  .word 11, 0
cell2:  .word 13, cell1
cell3:  .word 5, cell2
"
            ),
            Rv32Kernel::Strings => format!(
                "\
        .entry main
main:   li s2, 0
        li t6, {scale}
outer:  la t0, text
        li t1, 43
scan:   lbu t2, 0(t0)
        slli t3, s2, 5
        add t3, t3, s2
        add s2, t3, t2
        addi t0, t0, 1
        addi t1, t1, -1
        bnez t1, scan
        addi t6, t6, -1
        bnez t6, outer
        slli a0, s2, 1
        srli a0, a0, 1
        li a7, 1
        ecall
        li a7, 93
        li a0, 0
        ecall

        .data
text:   .asciz \"the quick brown fox jumps over the lazy dog\"
"
            ),
        }
    }

    /// Assembles the kernel into an [`IsaId::Rv32i`]-stamped program.
    ///
    /// # Panics
    ///
    /// Panics if the source fails to assemble (a kernel bug).
    pub fn build(self, scale: u32) -> Program {
        IsaId::Rv32i
            .frontend()
            .assemble(&self.source(scale))
            .unwrap_or_else(|e| panic!("rv32i kernel {self} must assemble: {e}"))
    }
}

impl fmt::Display for Rv32Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A from-the-spec RV32I reference interpreter over raw instruction
/// words. It decodes the 32-bit encodings directly — no `reese-isa`
/// decode, no [`reese_cpu::step_rv32`] — so a lockstep run against the
/// project emulator cross-checks both stacks against the architecture
/// manual rather than against each other's source.
pub struct RefCpu {
    regs: [u32; 32],
    pc: u32,
    mem: BTreeMap<u32, u8>,
    words: Vec<u32>,
    text_base: u32,
    output: Vec<i64>,
    exit: Option<u32>,
}

fn sext32(v: u32) -> u64 {
    v as i32 as i64 as u64
}

impl RefCpu {
    /// Loads the program's binary image.
    ///
    /// # Errors
    ///
    /// Returns an error if the program is not RV32I-stamped or its text
    /// fails to encode.
    pub fn new(program: &Program) -> Result<RefCpu, String> {
        if program.isa() != IsaId::Rv32i {
            return Err(format!(
                "reference interpreter needs an rv32i program, got {}",
                program.isa().name()
            ));
        }
        let image = program
            .text_image()
            .map_err(|(i, e)| format!("text word {i}: {e}"))?;
        let words = image
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        let mut mem = BTreeMap::new();
        for (i, &byte) in program.data().iter().enumerate() {
            if byte != 0 {
                mem.insert(program.data_base() as u32 + i as u32, byte);
            }
        }
        for (i, &byte) in image.iter().enumerate() {
            if byte != 0 {
                mem.insert(program.text_base() as u32 + i as u32, byte);
            }
        }
        let mut regs = [0u32; 32];
        regs[2] = STACK_TOP as u32; // sp
        Ok(RefCpu {
            regs,
            pc: program.entry() as u32,
            mem,
            words,
            text_base: program.text_base() as u32,
            output: Vec::new(),
            exit: None,
        })
    }

    /// Architectural registers, sign-extended to the 64-bit cells the
    /// project emulator uses (for lockstep comparison).
    pub fn reg64(&self, i: usize) -> u64 {
        sext32(self.regs[i])
    }

    /// Current pc, widened the same way.
    pub fn pc64(&self) -> u64 {
        sext32(self.pc)
    }

    /// Values printed so far.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Exit code, once an exit `ecall` has executed.
    pub fn exit_code(&self) -> Option<u32> {
        self.exit
    }

    fn read_u8(&self, addr: u32) -> u8 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    fn read(&self, addr: u32, bytes: u32) -> u32 {
        let mut v = 0u32;
        for i in 0..bytes {
            v |= u32::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    fn write(&mut self, addr: u32, bytes: u32, value: u32) {
        for i in 0..bytes {
            self.mem
                .insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    fn set(&mut self, rd: u32, value: u32) {
        if rd != 0 {
            self.regs[rd as usize] = value;
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an error if the pc leaves the text segment or the word
    /// is not a recognised RV32I encoding.
    pub fn step(&mut self) -> Result<(), String> {
        if self.exit.is_some() {
            return Ok(());
        }
        let off = self.pc.wrapping_sub(self.text_base);
        if !off.is_multiple_of(4) || (off / 4) as usize >= self.words.len() {
            return Err(format!("reference pc {:#x} left text", self.pc));
        }
        let w = self.words[(off / 4) as usize];
        let opc = w & 0x7F;
        let rd = (w >> 7) & 0x1F;
        let f3 = (w >> 12) & 0x7;
        let rs1 = ((w >> 15) & 0x1F) as usize;
        let rs2 = ((w >> 20) & 0x1F) as usize;
        let f7 = w >> 25;
        let a = self.regs[rs1];
        let b = self.regs[rs2];
        let i_imm = (w as i32 >> 20) as u32;
        let s_imm = (((w as i32 >> 25) << 5) | ((w as i32 >> 7) & 0x1F)) as u32;
        let b_imm = (((w as i32 >> 31) << 12)
            | (((w as i32 >> 7) & 1) << 11)
            | (((w as i32 >> 25) & 0x3F) << 5)
            | (((w as i32 >> 8) & 0xF) << 1)) as u32;
        let j_imm = (((w as i32 >> 31) << 20)
            | (((w as i32 >> 12) & 0xFF) << 12)
            | (((w as i32 >> 20) & 1) << 11)
            | (((w as i32 >> 21) & 0x3FF) << 1)) as u32;
        let mut next = self.pc.wrapping_add(4);
        match opc {
            0x37 => self.set(rd, w & 0xFFFF_F000),
            0x17 => self.set(rd, self.pc.wrapping_add(w & 0xFFFF_F000)),
            0x6F => {
                self.set(rd, next);
                next = self.pc.wrapping_add(j_imm);
            }
            0x67 if f3 == 0 => {
                let target = a.wrapping_add(i_imm) & !1;
                self.set(rd, next);
                next = target;
            }
            0x63 => {
                let taken = match f3 {
                    0 => a == b,
                    1 => a != b,
                    4 => (a as i32) < (b as i32),
                    5 => (a as i32) >= (b as i32),
                    6 => a < b,
                    7 => a >= b,
                    _ => return Err(format!("branch funct3 {f3}")),
                };
                if taken {
                    next = self.pc.wrapping_add(b_imm);
                }
            }
            0x03 => {
                let addr = a.wrapping_add(i_imm);
                let v = match f3 {
                    0 => self.read(addr, 1) as i8 as i32 as u32,
                    1 => self.read(addr, 2) as i16 as i32 as u32,
                    2 => self.read(addr, 4),
                    4 => self.read(addr, 1),
                    5 => self.read(addr, 2),
                    _ => return Err(format!("load funct3 {f3}")),
                };
                self.set(rd, v);
            }
            0x23 => {
                let addr = a.wrapping_add(s_imm);
                match f3 {
                    0 => self.write(addr, 1, b),
                    1 => self.write(addr, 2, b),
                    2 => self.write(addr, 4, b),
                    _ => return Err(format!("store funct3 {f3}")),
                }
            }
            0x13 => {
                let shamt = (w >> 20) & 0x1F;
                let v = match (f3, f7) {
                    (0, _) => a.wrapping_add(i_imm),
                    (2, _) => u32::from((a as i32) < (i_imm as i32)),
                    (3, _) => u32::from(a < i_imm),
                    (4, _) => a ^ i_imm,
                    (6, _) => a | i_imm,
                    (7, _) => a & i_imm,
                    (1, 0) => a << shamt,
                    (5, 0) => a >> shamt,
                    (5, 0x20) => ((a as i32) >> shamt) as u32,
                    _ => return Err(format!("imm-alu funct3 {f3} funct7 {f7:#x}")),
                };
                self.set(rd, v);
            }
            0x33 => {
                let v = match (f7, f3) {
                    (0, 0) => a.wrapping_add(b),
                    (0x20, 0) => a.wrapping_sub(b),
                    (0, 1) => a << (b & 31),
                    (0, 2) => u32::from((a as i32) < (b as i32)),
                    (0, 3) => u32::from(a < b),
                    (0, 4) => a ^ b,
                    (0, 5) => a >> (b & 31),
                    (0x20, 5) => ((a as i32) >> (b & 31)) as u32,
                    (0, 6) => a | b,
                    (0, 7) => a & b,
                    (1, 0) => a.wrapping_mul(b),
                    (1, 4) => {
                        if b == 0 {
                            u32::MAX
                        } else {
                            (a as i32).wrapping_div(b as i32) as u32
                        }
                    }
                    (1, 5) => a.checked_div(b).unwrap_or(u32::MAX),
                    (1, 6) => {
                        if b == 0 {
                            a
                        } else {
                            (a as i32).wrapping_rem(b as i32) as u32
                        }
                    }
                    (1, 7) => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                    _ => return Err(format!("alu funct7 {f7:#x} funct3 {f3}")),
                };
                self.set(rd, v);
            }
            0x0F => {}
            0x73 if w == 0x0000_0073 => {
                let a7 = self.regs[17];
                let a0 = self.regs[10];
                match a7 {
                    1 => self.output.push(a0 as i32 as i64),
                    93 => {
                        self.exit = Some(a0);
                        return Ok(());
                    }
                    _ => {
                        self.exit = Some(a7);
                        return Ok(());
                    }
                }
            }
            0x73 if w == 0x0010_0073 => {
                self.exit = Some(0);
                return Ok(());
            }
            _ => return Err(format!("unrecognised word {w:#010x} at {:#x}", self.pc)),
        }
        self.pc = next;
        Ok(())
    }
}

/// Runs an RV32I program in lockstep on the project emulator and on
/// [`RefCpu`], comparing pc and the full integer register file after
/// every instruction, and output plus exit code at the end. Returns the
/// number of instructions executed.
///
/// # Errors
///
/// Reports the first divergence with its step index, or failure to halt
/// within `max_steps`.
pub fn differential_check(program: &Program, max_steps: u64) -> Result<u64, String> {
    let mut reference = RefCpu::new(program)?;
    let mut emu = Emulator::new(program);
    for step in 0..max_steps {
        if let Some(code) = reference.exit_code() {
            let emu_code = emu
                .exit_code()
                .ok_or_else(|| format!("step {step}: reference exited, emulator did not"))?;
            if emu_code != u64::from(code) {
                return Err(format!(
                    "exit code mismatch: emulator {emu_code}, reference {code}"
                ));
            }
            if emu.output() != reference.output() {
                return Err(format!(
                    "output mismatch: emulator {:?}, reference {:?}",
                    emu.output(),
                    reference.output()
                ));
            }
            return Ok(step);
        }
        if emu.exit_code().is_some() {
            return Err(format!("step {step}: emulator exited, reference did not"));
        }
        let epc = emu.state().pc;
        if epc != reference.pc64() {
            return Err(format!(
                "step {step}: pc mismatch: emulator {epc:#x}, reference {:#x}",
                reference.pc64()
            ));
        }
        for r in 0..32 {
            let ev = emu.state().read(reese_isa::Reg::x(r as u8));
            if ev != reference.reg64(r) {
                return Err(format!(
                    "step {step} (pc {epc:#x}): x{r} mismatch: emulator {ev:#x}, reference {:#x}",
                    reference.reg64(r)
                ));
            }
        }
        emu.step().map_err(|e| format!("step {step}: {e}"))?;
        reference.step().map_err(|e| format!("step {step}: {e}"))?;
    }
    Err(format!("no halt within {max_steps} steps"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rv32_kernels_pass_the_differential_harness() {
        for k in Rv32Kernel::ALL {
            let prog = k.build(3);
            assert_eq!(prog.isa(), IsaId::Rv32i);
            let steps = differential_check(&prog, 1_000_000)
                .unwrap_or_else(|e| panic!("{k}: differential harness failed: {e}"));
            assert!(steps > 10, "{k}: suspiciously short run ({steps} steps)");
        }
    }

    #[test]
    fn kernels_halt_cleanly_and_print_a_checksum() {
        for k in Rv32Kernel::ALL {
            let prog = k.build(2);
            let r = Emulator::new(&prog).run(1_000_000).unwrap();
            assert!(r.halted(), "{k} must halt");
            assert_eq!(r.output.len(), 1, "{k} prints exactly one checksum");
            assert!(r.output[0] >= 0, "{k}: checksum is masked non-negative");
        }
    }

    #[test]
    fn kernel_scale_changes_dynamic_length_not_shape() {
        for k in Rv32Kernel::ALL {
            let short = Emulator::new(&k.build(1)).run(1_000_000).unwrap();
            let long = Emulator::new(&k.build(4)).run(1_000_000).unwrap();
            assert!(
                long.instructions > short.instructions,
                "{k}: scale must add dynamic instructions"
            );
        }
    }

    #[test]
    fn lisp_cells_resolve_forward_word_labels() {
        // cell0 links forward to cell3: the `.word` label fixups must
        // produce a chain summing 7 + 5 + 13 + 11 = 36 per pass.
        let prog = Rv32Kernel::Lisp.build(1);
        let r = Emulator::new(&prog).run(100_000).unwrap();
        assert_eq!(r.output, vec![36]);
    }

    #[test]
    fn reference_interpreter_rejects_native_programs() {
        let prog = reese_isa::assemble("  halt\n").unwrap();
        assert!(RefCpu::new(&prog).is_err());
    }

    #[test]
    fn differential_harness_catches_a_semantics_divergence() {
        // Hand-build a reference CPU, corrupt one register mid-run, and
        // the harness-style comparison must notice. (Drives the error
        // path the kernel tests never take.)
        let prog = Rv32Kernel::Imaging.build(1);
        let mut reference = RefCpu::new(&prog).unwrap();
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        reference.step().unwrap();
        reference.regs[8] ^= 1; // s0
        let mismatch =
            (0..32).any(|r| emu.state().read(reese_isa::Reg::x(r as u8)) != reference.reg64(r));
        assert!(mismatch, "corruption must be visible to the comparison");
    }
}
