//! `database` — the vortex-like kernel.
//!
//! Models an object database's query loop: pseudo-random keys are
//! looked up through an index probe, each hit's 64-byte record is
//! copied into a result buffer, and a short range scan walks the
//! following index keys — vortex's signature: memory-port-heavy (bursts
//! of back-to-back loads and stores), working sets that spill out of
//! L1, and plentiful but mostly predictable branches.

use reese_isa::{abi::*, Program, ProgramBuilder};
use reese_stats::SplitMix64;

/// Number of records (and index entries).
const RECORDS: u64 = 1024;
/// Bytes per record: key + seven payload dwords.
const RECORD_BYTES: u64 = 64;

/// Builds the kernel; `scale` is the number of queries issued, in units
/// of 64 (roughly 7k dynamic instructions per unit).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0xD8_AB4);

    // -- data ------------------------------------------------------------
    // Sorted keys with random gaps, so search outcomes are data-driven.
    let mut keys = Vec::with_capacity(RECORDS as usize);
    let mut k = 0u64;
    for _ in 0..RECORDS {
        k += 1 + rng.range_u64(0, 7);
        keys.push(k);
    }
    let index = b.data_label("index");
    for &key in &keys {
        b.dword(key);
    }
    let records = b.data_label("records");
    for &key in &keys {
        b.dword(key);
        for _ in 0..7 {
            b.dword(rng.next_u64() % 1_000_000);
        }
    }
    let out = b.data_label("out");
    b.space(RECORD_BYTES as usize);
    let max_key = *keys.last().expect("records exist") as i64;

    // -- code -----------------------------------------------------------------
    let outer = b.label("outer");
    let probe = b.label("probe");
    let found = b.label("found");

    b.la(A0, index);
    b.la(A1, records);
    b.la(A2, out);
    b.li(S0, i64::from(scale) * 64); // queries
    b.li(S2, 0x2545_F491); // LCG state
    b.li(S3, 0x0019_660D); // LCG multiplier
    b.li(S4, 0); // checksum
    b.li(S7, max_key + 1); // (kept for the checksum fold below)
    b.bind(outer);
    // Draw a pseudo-random record id, then the key it should hold.
    b.mul(S2, S2, S3);
    b.addi(S2, S2, 0x3C6F);
    b.srli(T0, S2, 32);
    b.andi(S6, T0, RECORDS as i64 - 1); // slot to start probing at
    b.slli(T1, S6, 3);
    b.add(T1, A0, T1);
    b.ld(S5, 0, T1); // the key we are "looking up"
                     // Linear probe through the index until the key matches — the match
                     // is immediate by construction, so the exit branch is predictable,
                     // but the wrap guard and compare are real work per probe.
    b.li(S8, 0); // probes taken
    b.bind(probe);
    b.add(T2, S6, S8);
    b.andi(T2, T2, RECORDS as i64 - 1);
    b.slli(T3, T2, 3);
    b.add(T3, A0, T3);
    b.ld(T1, 0, T3); // index[slot]
    b.beq(T1, S5, found);
    b.addi(S8, S8, 1);
    b.j(probe);
    b.bind(found);
    b.add(S6, S6, S8);
    b.andi(S6, S6, RECORDS as i64 - 1);
    // Copy the found record's header half into the result buffer — a
    // back-to-back load/store burst, interleaved with field validation
    // arithmetic the way vortex checks object attributes.
    b.slli(T4, S6, 6);
    b.add(T4, A1, T4);
    b.ld(T0, 0, T4);
    b.ld(T1, 8, T4);
    b.ld(T2, 16, T4);
    b.ld(T3, 24, T4);
    b.sd(T0, 0, A2);
    b.add(S4, S4, T1);
    b.sd(T1, 8, A2);
    b.xor(S4, S4, T0);
    b.sd(T2, 16, A2);
    b.add(T0, T2, T3);
    b.sd(T3, 24, A2);
    b.srli(T0, T0, 2);
    b.add(S4, S4, T0);
    // Range scan: count how many of the next four index keys exceed the
    // probe key. Keys are sorted, so the compares are biased (vortex's
    // branches are mostly predictable) but still data-driven at the
    // wrap-around.
    let scan = b.label("scan");
    let no_inc = b.label("no_inc");
    b.li(S9, 4);
    b.mv(T5, S6);
    b.bind(scan);
    b.addi(T5, T5, 1);
    b.andi(T5, T5, RECORDS as i64 - 1);
    b.slli(T6, T5, 3);
    b.add(T6, A0, T6);
    b.ld(T6, 0, T6);
    b.ble(T6, S5, no_inc);
    b.addi(S4, S4, 1);
    b.bind(no_inc);
    b.addi(S9, S9, -1);
    b.bnez(S9, scan);
    b.addi(S0, S0, -1);
    b.bnez(S0, outer);
    b.print(S4);
    b.li(A0, 0);
    b.halt();
    b.build().expect("database kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn runs_and_prints_checksum() {
        let r = Emulator::new(&build(1)).run(600_000).unwrap();
        assert!(r.halted());
        assert_eq!(r.output.len(), 1);
    }

    #[test]
    fn deterministic() {
        let a = Emulator::new(&build(1)).run(600_000).unwrap();
        let b = Emulator::new(&build(1)).run(600_000).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn vortex_like_mix() {
        let m = crate::measure_mix(&build(1), 600_000);
        assert!(m.mem_fraction() > 0.18, "index probes + record copies: {m}");
        assert!(m.branch_fraction() > 0.08, "probe exits + range scan: {m}");
        // Sorted keys bias the scan compares; taken rate sits mid-high.
        assert!(
            (0.4..0.98).contains(&m.taken_rate()),
            "taken rate {}",
            m.taken_rate()
        );
    }

    #[test]
    fn scale_is_linear_in_queries() {
        let one = Emulator::new(&build(1))
            .run(2_000_000)
            .unwrap()
            .instructions;
        let two = Emulator::new(&build(2))
            .run(2_000_000)
            .unwrap()
            .instructions;
        let ratio = two as f64 / one as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}
