//! `imaging` — the ijpeg-like kernel.
//!
//! Models JPEG's integer transform stage: stream over an image buffer in
//! 8-sample blocks, run a fully unrolled butterfly/multiply network (a
//! 1-D integer DCT skeleton) over each block, quantise by shifting, and
//! write the block back — ijpeg's signature: high ILP straight-line
//! code, multiply-heavy, streaming memory, and almost perfectly
//! predictable loop branches.

use reese_isa::{abi::*, Program, ProgramBuilder, Reg};
use reese_stats::SplitMix64;

/// Image size in bytes (one "scanline pass" worth of samples).
const IMAGE_BYTES: i64 = 4096;
/// Samples per transform block.
const BLOCK: i64 = 8;

/// Builds the kernel; `scale` is the number of passes over the image
/// (roughly 26k dynamic instructions per pass).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0x1_4A6E);

    // -- data: the image and the coefficient output plane ---------------
    let image = b.data_label("image");
    for _ in 0..IMAGE_BYTES {
        b.byte(rng.next_u32() as u8);
    }
    let coeffs = b.data_label("coeffs");
    b.space(IMAGE_BYTES as usize);

    // -- code -------------------------------------------------------------
    let outer = b.label("outer");
    let inner = b.label("inner");

    // Sample registers for the unrolled block: t0-t6 plus s6.
    let x: [Reg; 8] = [T0, T1, T2, T3, T4, T5, T6, S6];

    b.la(A0, image);
    b.la(A1, coeffs);
    b.li(S0, i64::from(scale));
    b.li(S4, 0); // checksum
    b.li(S5, 0); // entropy-coder state
    b.li(S7, 23170); // cos(pi/4) << 15, the DCT constant
    b.li(S8, 12540); // sin(3pi/8) << 15
    b.bind(outer);
    b.li(S1, 0); // byte offset
    b.bind(inner);
    b.add(S2, A0, S1);
    // Load the block (independent byte loads → memory-level parallelism).
    for (i, &r) in x.iter().enumerate() {
        b.lbu(r, i as i64, S2);
    }
    // Stage 1 butterflies: sums into x[0..4], diffs into x[4..8].
    for i in 0..4 {
        b.add(S9, x[i], x[7 - i]); // s9/s10 as butterfly temps
        b.sub(S10, x[i], x[7 - i]);
        b.mv(x[i], S9);
        b.mv(x[7 - i], S10);
    }
    // Stage 2: rotate the odd half by the DCT constants (the multiplies).
    b.mul(S9, x[4], S7);
    b.mul(S10, x[5], S8);
    b.add(x[4], S9, S10);
    b.mul(S9, x[6], S8);
    b.mul(S10, x[7], S7);
    b.sub(x[6], S9, S10);
    // Stage 3 butterflies on the even half.
    b.add(S9, x[0], x[2]);
    b.sub(S10, x[0], x[2]);
    b.mv(x[0], S9);
    b.mv(x[2], S10);
    b.add(S9, x[1], x[3]);
    b.sub(S10, x[1], x[3]);
    b.mv(x[1], S9);
    b.mv(x[3], S10);
    // Quantise: arithmetic shift back to byte range and accumulate.
    for &r in &x {
        b.srai(r, r, 9);
        b.andi(r, r, 0xFF);
        b.add(S4, S4, r);
    }
    // Entropy-code the block: fold every coefficient through a serial
    // shift-xor chain, the way Huffman coding serialises real ijpeg —
    // this is what keeps the benchmark's ILP finite.
    for &r in &x {
        b.add(S5, S5, r); // run-length state update
        b.slli(S5, S5, 3); // code-word shift
        b.xor(S5, S5, r); // symbol merge
        b.srai(S5, S5, 1); // range normalisation
        b.addi(S5, S5, 3); // bit-count bookkeeping
    }
    b.add(S4, S4, S5);
    // Keep the checksum in 32 bits (the immediate field cannot hold a
    // 32-bit all-ones mask, so mask via a shift pair).
    b.slli(S4, S4, 32);
    b.srli(S4, S4, 32);
    // Store the transformed block back and mirror it into the
    // coefficient plane (JPEG keeps both the working row and the output).
    for (i, &r) in x.iter().enumerate() {
        b.sb(r, i as i64, S2);
    }
    b.add(S3, A1, S1);
    for (i, &r) in x.iter().enumerate() {
        b.sb(r, i as i64, S3);
    }
    b.addi(S1, S1, BLOCK);
    b.li(S9, IMAGE_BYTES);
    b.blt(S1, S9, inner);
    b.addi(S0, S0, -1);
    b.bnez(S0, outer);
    b.print(S4);
    b.li(A0, 0);
    b.halt();
    b.build().expect("imaging kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn runs_and_prints_checksum() {
        let r = Emulator::new(&build(1)).run(200_000).unwrap();
        assert!(r.halted());
        assert_eq!(r.output.len(), 1);
        assert!(r.output[0] > 0);
    }

    #[test]
    fn deterministic() {
        let a = Emulator::new(&build(2)).run(400_000).unwrap();
        let b = Emulator::new(&build(2)).run(400_000).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn ijpeg_like_mix() {
        let m = crate::measure_mix(&build(1), 200_000);
        assert!(m.muldiv_fraction() > 0.03, "DCT multiplies: {m}");
        assert!(m.mem_fraction() > 0.15, "streaming image traffic: {m}");
        assert!(
            m.branch_fraction() < 0.06,
            "unrolled blocks, few branches: {m}"
        );
        // Loop branches are near-perfectly taken → highly predictable.
        assert!(m.taken_rate() > 0.95, "taken rate {}", m.taken_rate());
    }

    #[test]
    fn transform_mutates_image_in_place() {
        // Second pass over the same buffer sees transformed data, so the
        // two passes' checksums differ — printed sum is pass-cumulative,
        // so compare scale=1 against scale=2 minus scale=1.
        let one = Emulator::new(&build(1)).run(400_000).unwrap().output[0];
        let two = Emulator::new(&build(2)).run(400_000).unwrap().output[0];
        assert_ne!(two - one, one, "second pass transforms different bytes");
    }
}
