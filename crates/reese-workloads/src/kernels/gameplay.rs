//! `gameplay` — the go-like kernel.
//!
//! Models a Go-playing program's board evaluation: sweep a 32×32 board
//! of stones, score each point from its four neighbours with
//! colour-dependent control flow, and mutate random points between
//! visits so the branches never settle into a predictable pattern —
//! go's signature: very hard-to-predict branches, byte-granularity
//! loads, a pinch of integer division from the mutation rule.

use reese_isa::{abi::*, Program, ProgramBuilder};
use reese_stats::SplitMix64;

/// Board edge length (bytes per row).
const EDGE: i64 = 32;
/// First interior cell (row 1, col 1) and one-past-last interior cell.
const FIRST: i64 = EDGE + 1;
const LAST: i64 = EDGE * (EDGE - 1) - 1;

/// Builds the kernel; `scale` is the number of full-board evaluation
/// passes (roughly 23k dynamic instructions per pass).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0x60_BA17);

    // -- data: the board, stones in {0 = empty, 1 = black, 2 = white} --
    let board = b.data_label("board");
    for _ in 0..EDGE * EDGE {
        b.byte((rng.next_u64() % 3) as u8);
    }
    // Influence map: the evaluator's per-point output, re-read next pass.
    let influence = b.data_label("influence");
    b.space((EDGE * EDGE) as usize);

    // -- code -----------------------------------------------------------
    let outer = b.label("outer");
    let inner = b.label("inner");
    let black = b.label("black");
    let empty = b.label("empty");
    let next = b.label("next");
    let skip_mut = b.label("skip_mut");

    b.la(A0, board);
    b.la(A1, influence);
    b.li(S0, i64::from(scale));
    b.li(S2, 0x9E37_79B9); // LCG state
    b.li(S3, 0x0019_660D); // LCG multiplier
    b.li(S4, 0); // score
    b.bind(outer);
    b.li(S1, FIRST);
    b.bind(inner);
    b.add(T0, A0, S1);
    b.lbu(T1, 0, T0); // the stone
    b.lbu(T2, -1, T0); // west
    b.lbu(T3, 1, T0); // east
    b.lbu(T4, -EDGE, T0); // north
    b.lbu(T5, EDGE, T0); // south
    b.add(T6, T2, T3);
    b.add(T6, T6, T4);
    b.add(T6, T6, T5); // neighbour influence
                       // Colour-dependent scoring: empirically ~1/3 each way, never learnable.
    b.beqz(T1, empty);
    b.li(T2, 1);
    b.beq(T1, T2, black);
    b.sub(S4, S4, T6); // white stone: influence counts against
    b.j(next);
    b.bind(black);
    b.add(S4, S4, T6);
    b.j(next);
    b.bind(empty);
    b.addi(S4, S4, 1); // territory guess
    b.bind(next);
    // Blend this point's influence with last pass's value and store it
    // back into the influence map (the evaluator's memoisation).
    b.add(T2, A1, S1);
    b.lbu(T3, 0, T2); // previous influence
    b.add(T3, T3, T6);
    b.srli(T3, T3, 1); // decayed average
    b.sb(T3, 0, T2);
    // Advance the LCG; on a 1-in-16 draw, mutate a random point so the
    // next pass sees a different position (self-play churn).
    b.mul(S2, S2, S3);
    b.addi(S2, S2, 12345);
    b.srli(T2, S2, 60);
    b.bnez(T2, skip_mut);
    b.andi(T3, S2, EDGE * EDGE - 1);
    b.add(T3, A0, T3);
    b.lbu(T4, 0, T3);
    b.addi(T4, T4, 1);
    b.li(T5, 3);
    b.remu(T4, T4, T5); // cycle empty → black → white → empty
    b.sb(T4, 0, T3);
    b.bind(skip_mut);
    b.addi(S1, S1, 1);
    b.li(T2, LAST);
    b.blt(S1, T2, inner);
    b.addi(S0, S0, -1);
    b.bnez(S0, outer);
    b.print(S4);
    b.li(A0, 0);
    b.halt();
    b.build().expect("gameplay kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn runs_and_prints_score() {
        let r = Emulator::new(&build(2)).run(200_000).unwrap();
        assert!(r.halted());
        assert_eq!(r.output.len(), 1);
    }

    #[test]
    fn deterministic() {
        let a = Emulator::new(&build(2)).run(200_000).unwrap();
        let b = Emulator::new(&build(2)).run(200_000).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn go_like_mix_and_unpredictable_branches() {
        let prog = build(3);
        let m = crate::measure_mix(&prog, 200_000);
        assert!(m.branch_fraction() > 0.12, "go is branchy: {m}");
        assert!(m.mem_fraction() > 0.18, "neighbour loads: {m}");
        assert!(m.muldiv_fraction() > 0.01, "LCG + mutation rule: {m}");
        // The colour branches should be genuinely mixed: taken rate well
        // away from both 0 and 1.
        assert!(
            (0.25..0.95).contains(&m.taken_rate()),
            "taken rate {}",
            m.taken_rate()
        );
    }

    #[test]
    fn board_actually_mutates() {
        // The mutation path must execute (stores beyond the scoreboard).
        let m = crate::measure_mix(&build(2), 200_000);
        assert!(m.stores > 10, "mutations happen: {m}");
    }
}
