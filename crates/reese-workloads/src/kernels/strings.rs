//! `strings` — the perl-like kernel.
//!
//! Models a script interpreter's text processing: scan a buffer of
//! pseudo-prose byte by byte, classify characters (separator / digit /
//! letter) with data-dependent branches, fold words into a rolling
//! hash, and count them in a power-of-two hash table — perl's
//! signature: byte loads, irregular character-class branches, hash
//! arithmetic via shifts rather than multiplies.

use reese_isa::{abi::*, Program, ProgramBuilder};
use reese_stats::SplitMix64;

/// Text buffer length in bytes.
const TEXT_BYTES: i64 = 8192;
/// Hash table buckets (power of two).
const BUCKETS: i64 = 256;

/// Builds the kernel; `scale` is the number of scans over the text
/// (roughly 71k dynamic instructions per pass).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0x5C4A_881E);

    // -- data: pseudo-prose with realistic word structure ----------------
    let text = b.data_label("text");
    let mut emitted: i64 = 0;
    while emitted < TEXT_BYTES {
        let word_len = 1 + rng.index(9) as i64;
        for _ in 0..word_len.min(TEXT_BYTES - emitted) {
            let c = if rng.chance(0.2) {
                b'0' + rng.index(10) as u8
            } else {
                b'a' + rng.index(26) as u8
            };
            b.byte(c);
        }
        emitted += word_len;
        if emitted < TEXT_BYTES {
            b.byte(b' ');
            emitted += 1;
        }
    }
    b.align(8);
    let table = b.data_label("table");
    b.space((BUCKETS * 8) as usize);
    let out = b.data_label("out");
    b.space(TEXT_BYTES as usize);
    // Per-character class weights, looked up like a locale table.
    let classes = b.data_label("classes");
    for c in 0u16..256 {
        let weight = match c as u8 {
            b'0'..=b'9' => 2,
            b'a'..=b'z' | b'A'..=b'Z' => 1,
            _ => 0,
        };
        b.byte(weight);
    }

    // -- code -------------------------------------------------------------
    let outer = b.label("outer");
    let scan = b.label("scan");
    let is_sep = b.label("is_sep");
    let is_digit = b.label("is_digit");
    let advance = b.label("advance");
    let end_scan = b.label("end_scan");

    b.la(A0, text);
    b.la(A1, table);
    b.la(A2, out);
    b.la(A3, classes);
    b.li(S0, i64::from(scale));
    b.li(S4, 0); // word counter / checksum
    b.li(S5, b' ' as i64); // class constants stay in registers,
    b.li(S6, b'9' as i64 + 1); // like a compiled scanner would keep them
    b.li(S7, TEXT_BYTES);
    b.bind(outer);
    b.li(S1, 0); // byte index
    b.li(S2, 0); // rolling hash
    b.bind(scan);
    b.add(T0, A0, S1);
    b.lbu(T1, 0, T0); // the character
                      // Case-flip the character into the output copy (perl's tr///) and
                      // fetch its class weight from the locale table.
    b.add(T5, A2, S1);
    b.xori(T6, T1, 0x20);
    b.sb(T6, 0, T5);
    b.add(T2, A3, T1);
    b.lbu(T2, 0, T2); // class weight
    b.add(S4, S4, T2);
    // Character classification: space ends a word, digits weight double.
    b.beq(T1, S5, is_sep);
    b.blt(T1, S6, is_digit);
    // Letter: hash = hash*33 + c, via shift-add (perl's actual trick).
    b.slli(T3, S2, 5);
    b.add(S2, T3, S2);
    b.add(S2, S2, T1);
    b.j(advance);
    b.bind(is_digit);
    b.slli(T3, S2, 5);
    b.add(S2, T3, S2);
    b.slli(T4, T1, 1); // digits weigh double
    b.add(S2, S2, T4);
    b.j(advance);
    b.bind(is_sep);
    // Word boundary: bump the word's bucket and reset the hash.
    b.andi(T3, S2, BUCKETS - 1);
    b.slli(T3, T3, 3);
    b.add(T3, A1, T3);
    b.ld(T4, 0, T3);
    b.addi(T4, T4, 1);
    b.sd(T4, 0, T3);
    b.add(S4, S4, T4); // checksum over bucket depths
    b.li(S2, 0);
    b.bind(advance);
    b.addi(S1, S1, 1);
    b.blt(S1, S7, scan);
    b.bind(end_scan);
    b.addi(S0, S0, -1);
    b.bnez(S0, outer);
    b.print(S4);
    b.li(A0, 0);
    b.halt();
    b.build().expect("strings kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn runs_and_counts_words() {
        let r = Emulator::new(&build(1)).run(300_000).unwrap();
        assert!(r.halted());
        assert!(r.output[0] > 0, "words were hashed");
    }

    #[test]
    fn deterministic() {
        let a = Emulator::new(&build(1)).run(300_000).unwrap();
        let b = Emulator::new(&build(1)).run(300_000).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn buckets_accumulate_across_passes() {
        let one = Emulator::new(&build(1)).run(600_000).unwrap().output[0];
        let two = Emulator::new(&build(2)).run(600_000).unwrap().output[0];
        assert!(two > 2 * one, "second pass sees deeper buckets");
    }

    #[test]
    fn perl_like_mix() {
        let m = crate::measure_mix(&build(1), 300_000);
        assert!(m.branch_fraction() > 0.15, "char-class branches: {m}");
        assert!(m.mem_fraction() > 0.15, "byte loads, copies, buckets: {m}");
        assert!(m.muldiv_fraction() < 0.01, "shift-add hashing, no mul: {m}");
        // Character classes are irregular: the class branches go both ways.
        assert!(
            (0.30..0.98).contains(&m.taken_rate()),
            "taken rate {}",
            m.taken_rate()
        );
    }
}
