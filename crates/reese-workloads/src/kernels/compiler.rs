//! `compiler` — the gcc-like kernel.
//!
//! Models a compiler's constant-folding pass: a flat array of expression
//! nodes `(kind, lhs, rhs, result)` is repeatedly evaluated through a
//! big dispatch (an 8-way compare-and-branch switch, the shape of gcc's
//! tree-code switches). Node kinds are pseudo-random, so the dispatch
//! branches are data-dependent and frequently mispredicted — gcc's
//! signature: branchy, moderate memory traffic, almost no multiply.

use reese_isa::{abi::*, Program, ProgramBuilder};
use reese_stats::SplitMix64;

/// Number of expression nodes in the workload.
const NODES: i64 = 512;

// (node stride is 32 bytes; the code uses `slli …, 5` directly)

/// Builds the kernel; `scale` is the number of evaluation passes over
/// the node array (roughly 11k dynamic instructions per pass).
///
/// # Panics
///
/// Panics only on internal label errors (a bug, not an input condition).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0xC0_11E6E);

    // -- data: the expression nodes ------------------------------------
    // Node kinds follow a Markov chain (70% repeat the previous kind):
    // real syntax trees arrive in runs — a block of additions, a block
    // of comparisons — so the dispatch branches are hard but not
    // hopeless, like gcc's (~90% prediction on big switches).
    let nodes = b.data_label("nodes");
    let mut kind = 0u64;
    for _ in 0..NODES {
        if !rng.chance(0.70) {
            kind = rng.range_u64(0, 8);
        }
        let lhs = rng.next_u32() as i32 as i64 as u64;
        let rhs = (rng.next_u32() as i32 as i64 as u64) | 1; // avoid /0 paths
        b.dword(kind);
        b.dword(lhs);
        b.dword(rhs);
        b.dword(0); // result slot
    }
    // Evaluation log: the pass appends every folded result here, the way
    // a compiler pass materialises its work list (spill-like stores).
    let log = b.data_label("log");
    b.space((NODES * 8) as usize);

    // -- code ---------------------------------------------------------------
    let outer = b.label("outer");
    let inner = b.label("inner");
    let done = b.label("done");
    let cases: Vec<_> = (0..8).map(|k| b.label(&format!("k{k}"))).collect();

    b.la(A0, nodes);
    b.la(A1, log);
    b.li(S0, i64::from(scale));
    b.li(S5, 0); // checksum
    b.bind(outer);
    b.li(S1, 0); // node index
    b.bind(inner);
    b.slli(T0, S1, 5);
    b.add(T1, A0, T0);
    b.ld(T2, 0, T1); // kind
    b.ld(T3, 8, T1); // lhs
    b.ld(T4, 16, T1); // rhs
                      // 8-way switch: compare-and-branch chain, gcc-style dispatch.
    for (k, case) in cases.iter().enumerate().skip(1) {
        b.li(T5, k as i64);
        b.beq(T2, T5, *case);
    }
    b.bind(cases[0]);
    b.add(T6, T3, T4);
    b.j(done);
    b.bind(cases[1]);
    b.sub(T6, T3, T4);
    b.j(done);
    b.bind(cases[2]);
    b.xor(T6, T3, T4);
    b.j(done);
    b.bind(cases[3]);
    b.and(T6, T3, T4);
    b.j(done);
    b.bind(cases[4]);
    b.or(T6, T3, T4);
    b.j(done);
    b.bind(cases[5]);
    b.slt(T6, T3, T4);
    b.j(done);
    b.bind(cases[6]);
    b.srai(T6, T3, 2);
    b.j(done);
    b.bind(cases[7]);
    b.mul(T6, T3, T4); // the rare multiply in compiler code
    b.bind(done);
    b.sd(T6, 24, T1); // fold the result back into the node
                      // Cross-reference the previous node's folded result (a compiler's
                      // use-def chain walk) and append this one to the evaluation log.
    b.ld(T3, -8, T1); // nodes[i-1].result (node 0 reads its own kind slot)
    b.xor(S5, S5, T3);
    b.slli(T4, S1, 3);
    b.add(T4, A1, T4);
    b.sd(T6, 0, T4);
    b.add(S5, S5, T6); // running checksum
    b.addi(S1, S1, 1);
    b.li(T5, NODES);
    b.bne(S1, T5, inner);
    b.addi(S0, S0, -1);
    b.bnez(S0, outer);
    b.print(S5);
    b.li(A0, 0);
    b.halt();
    b.build().expect("compiler kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn runs_to_halt_and_prints_checksum() {
        let prog = build(2);
        let r = Emulator::new(&prog).run(100_000).unwrap();
        assert!(r.halted());
        assert_eq!(r.output.len(), 1);
        assert_ne!(r.output[0], 0);
    }

    #[test]
    fn deterministic_checksum() {
        let a = Emulator::new(&build(2)).run(100_000).unwrap();
        let b = Emulator::new(&build(2)).run(100_000).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn scale_controls_length() {
        let one = Emulator::new(&build(1))
            .run(1_000_000)
            .unwrap()
            .instructions;
        let three = Emulator::new(&build(3))
            .run(1_000_000)
            .unwrap()
            .instructions;
        assert!(three > 2 * one, "dynamic length must grow with scale");
    }

    #[test]
    fn gcc_like_mix() {
        let m = crate::measure_mix(&build(2), 100_000);
        assert!(m.branch_fraction() > 0.15, "gcc is branchy: {m}");
        assert!(
            m.mem_fraction() > 0.15 && m.mem_fraction() < 0.40,
            "moderate memory: {m}"
        );
        assert!(m.muldiv_fraction() < 0.02, "compilers barely multiply: {m}");
        assert_eq!(m.fp, 0);
    }
}
