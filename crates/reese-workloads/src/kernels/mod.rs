//! The six kernel implementations. See each module's docs for the
//! SPEC95 benchmark it models and how.

pub mod compiler;
pub mod database;
pub mod floatmath;
pub mod gameplay;
pub mod imaging;
pub mod lisp;
pub mod sorting;
pub mod strings;
