//! `lisp` — the li-like kernel.
//!
//! Models a Lisp interpreter's heap behaviour: cons cells scattered
//! through memory are chased `car`/`cdr` style, the list is summed,
//! destructively reversed (pointer stores), and its cars are aged in
//! place — li's signature: serialized load-to-load dependence chains,
//! poor spatial locality, and loop branches that are easy to predict
//! but cannot hide the pointer-chasing latency.

use reese_isa::{abi::*, Program, ProgramBuilder};
use reese_stats::SplitMix64;

/// Number of cons cells in the heap.
const CELLS: u64 = 2048;
/// Bytes per cell: car (dword) + cdr pointer (dword).
const CELL_BYTES: u64 = 16;

/// Builds the kernel; `scale` is the number of interpreter passes
/// (roughly 21k dynamic instructions per pass).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0x115B);

    // -- data: a heap of cons cells forming one long list in shuffled
    //    memory order, so `cdr` chasing hops across cache lines --------
    let heap_base = reese_isa::DATA_BASE; // cells start at the data base
    let mut order: Vec<u64> = (0..CELLS).collect();
    // Fisher-Yates shuffle for a memory-disordered list.
    for i in (1..CELLS as usize).rev() {
        let j = rng.index(i + 1);
        order.swap(i, j);
    }
    let addr_of = |cell: u64| heap_base + cell * CELL_BYTES;
    // cell order[k] links to order[k+1].
    let mut cdr = vec![0u64; CELLS as usize];
    for k in 0..CELLS as usize - 1 {
        cdr[order[k] as usize] = addr_of(order[k + 1]);
    }
    cdr[order[CELLS as usize - 1] as usize] = 0; // nil
    let _heap = b.data_label("heap");
    for cell in 0..CELLS {
        b.dword(rng.range_u64(1, 1000)); // car
        b.dword(cdr[cell as usize]); // cdr
    }
    b.align(8);
    let head_slot = b.data_label("head");
    b.dword(addr_of(order[0]));

    // -- code ---------------------------------------------------------------
    let outer = b.label("outer");
    let sum_loop = b.label("sum_loop");
    let rev_loop = b.label("rev_loop");
    let age_loop = b.label("age_loop");

    b.la(A1, head_slot);
    b.li(S0, i64::from(scale));
    b.li(S4, 0); // checksum
    b.bind(outer);

    // Pass 1: fold the cars down the cdr chain (pointer chase with a
    // little evaluator work per cell, as an interpreter would do).
    b.ld(S1, 0, A1);
    b.li(S5, 0); // secondary hash accumulator
    b.bind(sum_loop);
    b.ld(T0, 0, S1); // car
    b.add(S4, S4, T0);
    b.slli(T1, T0, 3); // tag-style arithmetic on the value
    b.xor(S5, S5, T1);
    b.andi(T2, T0, 7);
    b.add(S5, S5, T2);
    b.ld(S1, 8, S1); // cdr — the serialized load
    b.bnez(S1, sum_loop);

    // Pass 2: destructive reverse (load next, store back-pointer).
    b.ld(S1, 0, A1);
    b.li(S2, 0); // prev = nil
    b.bind(rev_loop);
    b.ld(T0, 8, S1); // next
    b.sd(S2, 8, S1); // cdr := prev
    b.mv(S2, S1);
    b.mv(S1, T0);
    b.bnez(S1, rev_loop);
    b.sd(S2, 0, A1); // new head

    // Pass 3: age every car in place (read-modify-write chase).
    b.ld(S1, 0, A1);
    b.bind(age_loop);
    b.ld(T0, 0, S1);
    b.addi(T0, T0, 1);
    b.sd(T0, 0, S1);
    b.ld(S1, 8, S1);
    b.bnez(S1, age_loop);

    b.addi(S0, S0, -1);
    b.bnez(S0, outer);
    b.print(S4);
    b.li(A0, 0);
    b.halt();
    b.build().expect("lisp kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn runs_and_sums_the_list() {
        let r = Emulator::new(&build(1)).run(200_000).unwrap();
        assert!(r.halted());
        assert_eq!(r.output.len(), 1);
        // 2048 cars each in [1, 1000): the sum is in a sane range.
        assert!(r.output[0] > 2048);
    }

    #[test]
    fn aging_changes_the_sum_per_pass() {
        let one = Emulator::new(&build(1)).run(400_000).unwrap().output[0];
        let two = Emulator::new(&build(2)).run(400_000).unwrap().output[0];
        // Second pass sums cars aged by +1 each: delta = first sum + CELLS.
        assert_eq!(two - one, one + CELLS as i64);
    }

    #[test]
    fn li_like_mix() {
        let m = crate::measure_mix(&build(2), 200_000);
        assert!(m.mem_fraction() > 0.35, "lisp is memory-dominated: {m}");
        assert!(
            m.muldiv_fraction() < 0.01,
            "no multiplies in list walking: {m}"
        );
        assert!(m.taken_rate() > 0.95, "chase loops are long: {m}");
    }

    #[test]
    fn reverse_preserves_membership() {
        // After an even number of reversals the list is back in its
        // original order; sums must stay consistent either way.
        let a = Emulator::new(&build(2)).run(400_000).unwrap();
        let b = Emulator::new(&build(2)).run(400_000).unwrap();
        assert_eq!(a.output, b.output);
    }
}
