//! `floatmath` — a floating-point stencil kernel.
//!
//! Not part of the paper's Table 2 ("We did not study floating point
//! programs"), but included so the FP adders and multiplier/dividers —
//! which Table 1 configures and REESE schedules like any other unit —
//! are exercised end to end: a 1-D heat-diffusion stencil with a
//! Newton–Raphson normalisation step (FP add/sub/mul/div/sqrt, FP
//! loads/stores, int↔FP conversions).

use reese_isa::{abi::*, Program, ProgramBuilder};
use reese_stats::SplitMix64;

/// Number of grid cells.
const CELLS: i64 = 512;

/// Builds the kernel; `scale` is the number of stencil sweeps
/// (roughly 10k dynamic instructions per pass).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0xF10A7);

    // -- data: the grid, as f64 bit patterns -----------------------------
    let grid = b.data_label("grid");
    for _ in 0..CELLS {
        b.dword((1.0 + rng.f64()).to_bits());
    }

    // -- code -----------------------------------------------------------
    let outer = b.label("outer");
    let sweep = b.label("sweep");

    b.la(A0, grid);
    b.li(S0, i64::from(scale));
    // FP constants, materialised through integer registers.
    b.li(T0, 0.25f64.to_bits() as i64);
    b.emit(reese_isa::Instr::rrr(reese_isa::Opcode::Fmvif, F6, T0, ZERO).canonical());
    b.li(T0, 0.5f64.to_bits() as i64);
    b.emit(reese_isa::Instr::rrr(reese_isa::Opcode::Fmvif, F7, T0, ZERO).canonical());
    b.bind(outer);
    b.li(S1, 1); // cell index (interior only)
    b.bind(sweep);
    b.slli(T1, S1, 3);
    b.add(T2, A0, T1);
    b.fld(F0, -8, T2); // west
    b.fld(F1, 0, T2); // centre
    b.fld(F2, 8, T2); // east
                      // new = centre/2 + (west + east)/4
    b.fadd(F3, F0, F2);
    b.fmul(F3, F3, F6);
    b.fmul(F4, F1, F7);
    b.fadd(F3, F3, F4);
    // Normalise by sqrt(1 + new*new) — divider and square-root traffic.
    b.fmul(F4, F3, F3);
    b.li(T0, 1.0f64.to_bits() as i64);
    b.emit(reese_isa::Instr::rrr(reese_isa::Opcode::Fmvif, F5, T0, ZERO).canonical());
    b.fadd(F4, F4, F5);
    b.emit(reese_isa::Instr::rrr(reese_isa::Opcode::Fsqrt, F4, F4, ZERO).canonical());
    b.fdiv(F3, F3, F4);
    b.fadd(F3, F3, F5); // keep values in a stable positive range
    b.fsd(F3, 0, T2);
    b.addi(S1, S1, 1);
    b.li(T3, CELLS - 1);
    b.blt(S1, T3, sweep);
    b.addi(S0, S0, -1);
    b.bnez(S0, outer);
    // Checksum: the integer part of 1000 * grid[CELLS/2].
    b.fld(F0, (CELLS / 2) * 8, A0);
    b.li(T0, 1000.0f64.to_bits() as i64);
    b.emit(reese_isa::Instr::rrr(reese_isa::Opcode::Fmvif, F1, T0, ZERO).canonical());
    b.fmul(F0, F0, F1);
    b.fcvtfi(A1, F0);
    b.print(A1);
    b.li(A0, 0);
    b.halt();
    b.build().expect("floatmath kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn runs_and_prints_a_finite_checksum() {
        let r = Emulator::new(&build(1)).run(200_000).unwrap();
        assert!(r.halted());
        assert_eq!(r.output.len(), 1);
        // Values stay in (1, 3): 1000x the midpoint is in (1000, 3000).
        assert!(
            (1000..3000).contains(&r.output[0]),
            "checksum {}",
            r.output[0]
        );
    }

    #[test]
    fn deterministic() {
        let a = Emulator::new(&build(2)).run(400_000).unwrap();
        let b = Emulator::new(&build(2)).run(400_000).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn fp_heavy_mix() {
        let m = crate::measure_mix(&build(1), 200_000);
        assert!(m.fp > m.total / 4, "FP ops dominate: {m}");
        assert!(m.mem_fraction() > 0.15, "stencil loads/stores: {m}");
        assert_eq!(m.int_muldiv, 0);
    }

    #[test]
    fn diffusion_converges_across_passes() {
        // More sweeps smooth the grid; checksums differ between 1 and 3
        // passes but both remain in range.
        let one = Emulator::new(&build(1)).run(400_000).unwrap().output[0];
        let three = Emulator::new(&build(3)).run(400_000).unwrap().output[0];
        assert_ne!(one, three);
    }
}
