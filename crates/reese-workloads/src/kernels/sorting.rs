//! `sorting` — an extra kernel: iterative quicksort with an explicit
//! stack.
//!
//! Not one of the paper's Table 2 programs, but a classic integer
//! workload that stresses exactly the structures the other kernels
//! don't: deep data-dependent control flow, a software stack (stores
//! and loads through `sp`-style pointers with heavy store-to-load
//! forwarding), and partition loops whose branches are ~50/50 on random
//! data.

use reese_isa::{abi::*, Program, ProgramBuilder};
use reese_stats::SplitMix64;

/// Number of 64-bit elements to sort.
const ELEMENTS: i64 = 256;

/// Builds the kernel; `scale` is the number of shuffle-and-sort rounds
/// (roughly 38k dynamic instructions per round).
pub fn build(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = SplitMix64::new(0x50_47);

    // -- data --------------------------------------------------------------
    let array = b.data_label("array");
    for _ in 0..ELEMENTS {
        b.dword(rng.range_u64(0, 1_000_000));
    }
    b.align(8);
    let stack = b.data_label("stack"); // (lo, hi) pair stack
    b.space(64 * 16);

    // Register roles:
    //   a0 array base, a1 range-stack base, s1 stack depth (pairs)
    //   s2 lo, s3 hi, s4 checksum, s5 LCG state for the reshuffle
    let round = b.label("round");
    let pop = b.label("pop");
    let done_sort = b.label("done_sort");
    let partition = b.label("partition");
    let part_loop = b.label("part_loop");
    let no_swap = b.label("no_swap");
    let part_end = b.label("part_end");
    let push_right = b.label("push_right");
    let no_push_right = b.label("no_push_right");
    let verify = b.label("verify");
    let verify_loop = b.label("verify_loop");
    let not_sorted = b.label("not_sorted");
    let shuffle = b.label("shuffle");
    let shuffle_loop = b.label("shuffle_loop");
    let next_round = b.label("next_round");

    b.la(A0, array);
    b.la(A1, stack);
    b.li(S0, i64::from(scale));
    b.li(S4, 0); // checksum
    b.li(S5, 0x1234_5678);
    b.bind(round);

    // Push the full range (0, ELEMENTS-1).
    b.li(T0, 0);
    b.sd(T0, 0, A1);
    b.li(T0, ELEMENTS - 1);
    b.sd(T0, 8, A1);
    b.li(S1, 1);

    // Main sort loop: pop a range, partition, push sub-ranges.
    b.bind(pop);
    b.beqz(S1, verify);
    b.addi(S1, S1, -1);
    b.slli(T0, S1, 4);
    b.add(T0, A1, T0);
    b.ld(S2, 0, T0); // lo
    b.ld(S3, 8, T0); // hi
    b.bge(S2, S3, pop); // empty or single-element range
    b.j(partition);

    // Lomuto partition with array[hi] as pivot.
    b.bind(partition);
    b.slli(T0, S3, 3);
    b.add(T0, A0, T0);
    b.ld(T1, 0, T0); // pivot value
    b.mv(T2, S2); // i = lo (store index)
    b.mv(T3, S2); // j = lo (scan index)
    b.bind(part_loop);
    b.bge(T3, S3, part_end);
    b.slli(T4, T3, 3);
    b.add(T4, A0, T4);
    b.ld(T5, 0, T4); // array[j]
    b.bge(T5, T1, no_swap); // the ~50/50 comparison on random data
                            // swap array[i], array[j]
    b.slli(T6, T2, 3);
    b.add(T6, A0, T6);
    b.ld(S6, 0, T6);
    b.sd(T5, 0, T6);
    b.sd(S6, 0, T4);
    b.addi(T2, T2, 1);
    b.bind(no_swap);
    b.addi(T3, T3, 1);
    b.j(part_loop);
    b.bind(part_end);
    // swap array[i], array[hi] (pivot into place)
    b.slli(T6, T2, 3);
    b.add(T6, A0, T6);
    b.ld(S6, 0, T6);
    b.sd(T1, 0, T6);
    b.sd(S6, 0, T0);
    // Push (lo, i-1) if non-trivial.
    b.addi(T4, T2, -1);
    b.ble(T4, S2, push_right);
    b.slli(T5, S1, 4);
    b.add(T5, A1, T5);
    b.sd(S2, 0, T5);
    b.sd(T4, 8, T5);
    b.addi(S1, S1, 1);
    b.bind(push_right);
    // Push (i+1, hi) if non-trivial.
    b.addi(T4, T2, 1);
    b.bge(T4, S3, no_push_right);
    b.slli(T5, S1, 4);
    b.add(T5, A1, T5);
    b.sd(T4, 0, T5);
    b.sd(S3, 8, T5);
    b.addi(S1, S1, 1);
    b.bind(no_push_right);
    b.j(pop);

    // Verify sortedness and fold the array into the checksum.
    b.bind(verify);
    b.li(T0, 1);
    b.li(T3, 1); // sorted flag
    b.bind(verify_loop);
    b.slli(T1, T0, 3);
    b.add(T1, A0, T1);
    b.ld(T2, 0, T1);
    b.ld(T4, -8, T1);
    b.bge(T2, T4, not_sorted);
    b.li(T3, 0); // inversion found — must never happen
    b.bind(not_sorted);
    b.add(S4, S4, T2);
    b.addi(T0, T0, 1);
    b.li(T5, ELEMENTS);
    b.blt(T0, T5, verify_loop);
    b.beqz(T3, done_sort); // a zero flag would print a bad checksum
    b.addi(S4, S4, 1); // count one successfully sorted round
    b.bind(done_sort);

    // Reshuffle for the next round with the LCG (Fisher-Yates-ish swap
    // walk) so every round sorts fresh data.
    b.j(shuffle);
    b.bind(shuffle);
    b.li(T0, 0);
    b.bind(shuffle_loop);
    b.li(T6, 0x0001_9660);
    b.mul(S5, S5, T6);
    b.addi(S5, S5, 0x3C6F);
    b.srli(T1, S5, 16);
    b.andi(T1, T1, ELEMENTS - 1); // partner index
    b.slli(T2, T0, 3);
    b.add(T2, A0, T2);
    b.slli(T3, T1, 3);
    b.add(T3, A0, T3);
    b.ld(T4, 0, T2);
    b.ld(T5, 0, T3);
    b.sd(T5, 0, T2);
    b.sd(T4, 0, T3);
    b.addi(T0, T0, 1);
    b.li(T6, ELEMENTS);
    b.blt(T0, T6, shuffle_loop);
    b.j(next_round);
    b.bind(next_round);
    b.addi(S0, S0, -1);
    b.bnez(S0, round);
    b.print(S4);
    b.li(A0, 0);
    b.halt();
    b.build().expect("sorting kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reese_cpu::Emulator;

    #[test]
    fn sorts_correctly_every_round() {
        // The checksum gets +1 per round only when the verify pass finds
        // zero inversions; sums of elements are round-invariant modulo
        // the excluded array[0].
        let prog = build(3);
        let mut emu = Emulator::new(&prog);
        let r = emu.run(2_000_000).unwrap();
        assert!(r.halted());
        // Confirm actual sortedness of the final array in memory.
        let base = prog.symbol("array").unwrap();
        let mut prev = 0u64;
        let mut sorted_after_shuffle = 0;
        for i in 0..ELEMENTS as u64 {
            let v = emu.memory().read_u64(base + i * 8);
            if v < prev {
                sorted_after_shuffle += 1; // final shuffle disorders it again
            }
            prev = v;
        }
        assert!(
            sorted_after_shuffle > 0,
            "the final reshuffle must leave it unsorted"
        );
    }

    #[test]
    fn verify_pass_reports_success() {
        // checksum = 3 rounds * (sum of 255 sorted elements + 1 success
        // marker); across rounds the multiset of elements is constant,
        // but array[0] differs per round. Just pin determinism + the
        // success marker by diffing against a 1-round run.
        let three = Emulator::new(&build(3)).run(2_000_000).unwrap().output[0];
        let one = Emulator::new(&build(1)).run(2_000_000).unwrap().output[0];
        assert!(three > one, "rounds accumulate");
    }

    #[test]
    fn deterministic() {
        let a = Emulator::new(&build(2)).run(2_000_000).unwrap();
        let b = Emulator::new(&build(2)).run(2_000_000).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn branchy_and_memory_heavy() {
        let m = crate::measure_mix(&build(1), 300_000);
        assert!(m.branch_fraction() > 0.12, "partition compares: {m}");
        assert!(m.mem_fraction() > 0.25, "array + range stack traffic: {m}");
        // Partition branches on random data sit near 50/50 taken.
        assert!(
            (0.3..0.9).contains(&m.taken_rate()),
            "taken rate {}",
            m.taken_rate()
        );
    }
}
