//! One Criterion bench per paper figure: each runs a reduced-scale
//! version of the corresponding experiment end to end (the full-scale
//! numbers come from the `fig*` binaries).

use reese_bench::{paper_machines, Experiment, Variant};
use reese_pipeline::{FuCounts, PipelineConfig};
use reese_stats::bench::Criterion;
use reese_stats::{criterion_group, criterion_main};
use reese_workloads::Suite;
use std::hint::black_box;

const QUICK: &[Variant] = &[
    Variant::Baseline,
    Variant::Reese {
        spare_alus: 2,
        spare_muls: 0,
    },
];

fn suite() -> Suite {
    Suite::smoke()
}

fn bench_figures(c: &mut Criterion) {
    let suite = suite();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_starting_config", |b| {
        let e = Experiment::new("fig2", PipelineConfig::starting()).variants(QUICK);
        b.iter(|| black_box(e.run_on(&suite)));
    });
    g.bench_function("fig3_ruu32_lsq16", |b| {
        let e = Experiment::new("fig3", PipelineConfig::starting().with_ruu(32).with_lsq(16))
            .variants(QUICK);
        b.iter(|| black_box(e.run_on(&suite)));
    });
    g.bench_function("fig4_wide16", |b| {
        let e = Experiment::new(
            "fig4",
            PipelineConfig::starting()
                .with_ruu(32)
                .with_lsq(16)
                .with_width(16),
        )
        .variants(QUICK);
        b.iter(|| black_box(e.run_on(&suite)));
    });
    g.bench_function("fig5_ports4", |b| {
        let e = Experiment::new(
            "fig5",
            PipelineConfig::starting()
                .with_ruu(32)
                .with_lsq(16)
                .with_width(16)
                .with_mem_ports(4),
        )
        .variants(QUICK);
        b.iter(|| black_box(e.run_on(&suite)));
    });
    g.bench_function("fig6_summary_grid", |b| {
        b.iter(|| {
            for (name, cfg) in paper_machines() {
                let e = Experiment::new(name, cfg).variants(&[Variant::Baseline]);
                black_box(e.run_on(&suite));
            }
        });
    });
    g.bench_function("fig7_big_machines", |b| {
        let more_fus = FuCounts {
            int_alu: 8,
            int_muldiv: 4,
            fp_alu: 8,
            fp_muldiv: 4,
            mem_ports: 2,
        };
        let e = Experiment::new(
            "fig7",
            PipelineConfig::starting()
                .with_ruu(256)
                .with_lsq(128)
                .with_fu(more_fus),
        )
        .variants(QUICK);
        b.iter(|| black_box(e.run_on(&suite)));
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
