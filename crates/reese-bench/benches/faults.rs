//! Fault-injection campaign benches: the detection-coverage experiment
//! at reduced trial counts.

use reese_core::{InjectedFault, ReeseConfig, ReeseSim};
use reese_faults::{Campaign, FaultMix};
use reese_stats::bench::Criterion;
use reese_stats::{criterion_group, criterion_main};
use reese_workloads::Kernel;
use std::hint::black_box;

fn bench_faults(c: &mut Criterion) {
    let prog = Kernel::Compiler.build(1);
    let mut g = c.benchmark_group("faults");
    g.sample_size(10);
    g.bench_function("campaign_result_errors_10_trials", |b| {
        let campaign =
            Campaign::new(ReeseConfig::starting(), FaultMix::result_errors_only()).trials(10);
        b.iter(|| black_box(campaign.run(&prog).expect("campaign runs")));
    });
    g.bench_function("single_detection_and_recovery", |b| {
        let sim = ReeseSim::new(ReeseConfig::starting());
        let faults = [InjectedFault::primary(500, 7)];
        b.iter(|| black_box(sim.run_with_faults(&prog, &faults, u64::MAX).expect("runs")));
    });
    g.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
