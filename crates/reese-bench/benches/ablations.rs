//! Ablation benches for the design choices DESIGN.md calls out:
//! early RUU removal (§4.3's optimisation), R-queue sizing, partial
//! duplication, and the branch predictor choice.

use reese_bpred::PredictorKind;
use reese_core::{ReeseConfig, ReeseSim};
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::bench::Criterion;
use reese_stats::{criterion_group, criterion_main};
use reese_workloads::Kernel;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let prog = Kernel::Database.build(1);
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    for (name, early) in [("held_ruu", false), ("early_removal", true)] {
        g.bench_function(format!("ruu_policy_{name}"), |b| {
            let sim = ReeseSim::new(ReeseConfig::starting().with_early_removal(early));
            b.iter(|| black_box(sim.run(&prog).expect("runs")));
        });
    }
    for size in [8usize, 32, 128] {
        g.bench_function(format!("rqueue_size_{size}"), |b| {
            let sim = ReeseSim::new(ReeseConfig::starting().with_rqueue_size(size));
            b.iter(|| black_box(sim.run(&prog).expect("runs")));
        });
    }
    for period in [1u64, 2, 8] {
        g.bench_function(format!("duplication_1_in_{period}"), |b| {
            let sim = ReeseSim::new(ReeseConfig::starting().with_duplication_period(period));
            b.iter(|| black_box(sim.run(&prog).expect("runs")));
        });
    }
    for kind in [
        PredictorKind::AlwaysTaken,
        PredictorKind::Bimodal,
        PredictorKind::Gshare,
    ] {
        g.bench_function(format!("predictor_{kind:?}"), |b| {
            let mut cfg = PipelineConfig::starting();
            cfg.predictor = cfg.predictor.with_kind(kind);
            let sim = PipelineSim::new(cfg);
            b.iter(|| black_box(sim.run(&prog).expect("runs")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
