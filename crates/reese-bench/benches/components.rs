//! Microbenchmarks of the simulator substrates: emulator, caches,
//! predictors, and the two timing simulators.

use reese_bpred::{BranchUnit, PredictorConfig};
use reese_core::{ReeseConfig, ReeseSim};
use reese_cpu::Emulator;
use reese_mem::{AccessKind, Cache, CacheConfig};
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::bench::{Criterion, Throughput};
use reese_stats::{criterion_group, criterion_main};
use reese_workloads::Kernel;
use std::hint::black_box;

fn bench_components(c: &mut Criterion) {
    let prog = Kernel::Imaging.build(1);
    let dynlen = Emulator::new(&prog)
        .run(u64::MAX)
        .expect("halts")
        .instructions;

    let mut g = c.benchmark_group("components");
    g.sample_size(10);
    g.throughput(Throughput::Elements(dynlen));
    g.bench_function("emulator_instructions", |b| {
        b.iter(|| black_box(Emulator::new(&prog).run(u64::MAX).expect("halts")));
    });
    g.bench_function("baseline_pipeline_instructions", |b| {
        let sim = PipelineSim::new(PipelineConfig::starting());
        b.iter(|| black_box(sim.run(&prog).expect("runs")));
    });
    g.bench_function("reese_pipeline_instructions", |b| {
        let sim = ReeseSim::new(ReeseConfig::starting());
        b.iter(|| black_box(sim.run(&prog).expect("runs")));
    });
    g.finish();

    let mut g = c.benchmark_group("micro");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("cache_100k_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::new("l1d", 32 * 1024, 32, 2, 2));
            for i in 0..100_000u64 {
                black_box(cache.access(i.wrapping_mul(64) & 0xF_FFFF, AccessKind::Read));
            }
            black_box(cache.stats())
        });
    });
    g.bench_function("gshare_100k_predictions", |b| {
        b.iter(|| {
            let mut bu = BranchUnit::new(PredictorConfig::paper());
            for i in 0..100_000u64 {
                let pc = 0x1000 + (i % 64) * 8;
                let p = bu.predict_branch(pc);
                bu.resolve_branch(pc, p, i % 3 == 0);
            }
            black_box(bu.stats())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
