//! Experiment harness regenerating the REESE paper's tables and figures.
//!
//! Every figure in the paper is an IPC bar chart over the six benchmarks
//! plus their average, with five machine variants: the baseline
//! processor and REESE with 0, +1 ALU, +2 ALU, and +2 ALU +1 Mul/Div
//! spare elements. This crate encodes that grid once ([`Experiment`])
//! and each `src/bin/fig*.rs` binary instantiates it with the figure's
//! machine configuration. Criterion benches in `benches/` run reduced
//! versions of the same code.

use reese_core::{ReeseConfig, ReeseSim};
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::{mean, par_map_indexed, percent_delta, ParallelStats, Table};
use reese_workloads::{Suite, Workload};
use std::fmt;

/// One machine variant in a figure's bar group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The unmodified baseline processor.
    Baseline,
    /// REESE with `spare_alus` extra integer ALUs and `spare_muls`
    /// extra integer multiplier/dividers.
    Reese {
        /// Spare integer ALUs.
        spare_alus: u32,
        /// Spare integer multiplier/dividers.
        spare_muls: u32,
    },
}

impl Variant {
    /// The five variants of Figures 2–4 (Figure 5 drops the last).
    pub const PAPER: [Variant; 5] = [
        Variant::Baseline,
        Variant::Reese {
            spare_alus: 0,
            spare_muls: 0,
        },
        Variant::Reese {
            spare_alus: 1,
            spare_muls: 0,
        },
        Variant::Reese {
            spare_alus: 2,
            spare_muls: 0,
        },
        Variant::Reese {
            spare_alus: 2,
            spare_muls: 1,
        },
    ];

    /// Column label used in the tables.
    pub fn label(&self) -> String {
        match self {
            Variant::Baseline => "baseline".to_string(),
            Variant::Reese {
                spare_alus: 0,
                spare_muls: 0,
            } => "REESE".to_string(),
            Variant::Reese {
                spare_alus,
                spare_muls: 0,
            } => format!("R+{spare_alus}ALU"),
            Variant::Reese {
                spare_alus,
                spare_muls,
            } => {
                format!("R+{spare_alus}ALU+{spare_muls}Mul")
            }
        }
    }
}

/// Results of one experiment: IPC per (kernel, variant).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment title.
    pub title: String,
    /// Variant labels, column order.
    pub variants: Vec<String>,
    /// Kernel names, row order.
    pub kernels: Vec<String>,
    /// `ipc[row][col]`.
    pub ipc: Vec<Vec<f64>>,
    /// Wall-clock/throughput observability for the sweep (one item per
    /// kernel×variant cell). The IPC grid is bit-identical for any
    /// worker count; this records only how fast it was computed.
    pub throughput: Option<ParallelStats>,
}

impl ExperimentResult {
    /// Column-wise average IPC (the paper's "AV." bars).
    pub fn averages(&self) -> Vec<f64> {
        (0..self.variants.len())
            .map(|c| mean(&self.ipc.iter().map(|row| row[c]).collect::<Vec<_>>()))
            .collect()
    }

    /// Percentage gap of column `col` versus the baseline column 0,
    /// computed on averages (negative = slower than baseline).
    pub fn average_gap(&self, col: usize) -> f64 {
        let avgs = self.averages();
        percent_delta(avgs[0], avgs[col])
    }

    /// Renders the paper-style table: one row per kernel plus "AV.".
    pub fn table(&self) -> Table {
        let mut header = vec!["bench".to_string()];
        header.extend(self.variants.iter().cloned());
        let mut t = Table::new(header);
        for (name, row) in self.kernels.iter().zip(&self.ipc) {
            t.row_f64(name, row, 3);
        }
        t.row_f64("AV.", &self.averages(), 3);
        t
    }

    /// Renders the grid as CSV (kernel rows + the AV. row).
    pub fn csv(&self) -> String {
        self.table().to_csv()
    }

    /// Renders the REESE-vs-baseline gap line printed under each figure.
    pub fn gap_summary(&self) -> String {
        let mut parts = Vec::new();
        for (c, label) in self.variants.iter().enumerate().skip(1) {
            parts.push(format!("{label}: {:+.1}%", self.average_gap(c)));
        }
        parts.join("  ")
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        write!(f, "{}", self.table())?;
        writeln!(f, "gap vs baseline (on AV.): {}", self.gap_summary())?;
        if let Some(t) = &self.throughput {
            writeln!(f, "sweep throughput: {t}")?;
        }
        Ok(())
    }
}

/// A paper experiment: a base machine, a set of variants, and the suite.
#[derive(Debug, Clone)]
pub struct Experiment {
    title: String,
    base: PipelineConfig,
    variants: Vec<Variant>,
    target_instructions: u64,
    jobs: usize,
}

impl Experiment {
    /// Creates an experiment over a base machine with the standard
    /// five-variant group. Cells run on [`default_jobs`] workers.
    pub fn new(title: &str, base: PipelineConfig) -> Experiment {
        Experiment {
            title: title.to_string(),
            base,
            variants: Variant::PAPER.to_vec(),
            target_instructions: default_target(),
            jobs: default_jobs(),
        }
    }

    /// Overrides the variant set (Figure 5 drops `R+2ALU+1Mul`).
    pub fn variants(mut self, variants: &[Variant]) -> Experiment {
        self.variants = variants.to_vec();
        self
    }

    /// Overrides the per-kernel dynamic-instruction target.
    pub fn target_instructions(mut self, n: u64) -> Experiment {
        self.target_instructions = n;
        self
    }

    /// Overrides the worker count (1 forces the serial path). The IPC
    /// grid is identical for every value; 0 is treated as 1.
    pub fn jobs(mut self, n: usize) -> Experiment {
        self.jobs = n.max(1);
        self
    }

    /// Runs the experiment over the calibrated suite.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails — the kernels are known-good, so
    /// a failure is a harness bug worth crashing on.
    pub fn run(&self) -> ExperimentResult {
        let suite = Suite::spec95_like(self.target_instructions);
        self.run_on(&suite)
    }

    /// Runs the experiment on a pre-built suite (reuse across figures).
    ///
    /// The kernel×variant matrix is flattened into independent cells
    /// and fanned out over the configured worker count; each cell is a
    /// full simulator run, and the reassembled grid is identical to the
    /// serial row-major sweep.
    ///
    /// # Panics
    ///
    /// See [`Experiment::run`].
    pub fn run_on(&self, suite: &Suite) -> ExperimentResult {
        let workloads: Vec<&Workload> = suite.iter().collect();
        let cells: Vec<(usize, usize)> = workloads
            .iter()
            .enumerate()
            .flat_map(|(wi, _)| (0..self.variants.len()).map(move |vi| (wi, vi)))
            .collect();
        let (values, throughput) = par_map_indexed(self.jobs, &cells, |_, &(wi, vi)| {
            self.run_cell(workloads[wi], &self.variants[vi])
        });
        let ipc: Vec<Vec<f64>> = values
            .chunks(self.variants.len().max(1))
            .map(<[f64]>::to_vec)
            .collect();
        ExperimentResult {
            title: self.title.clone(),
            variants: self.variants.iter().map(Variant::label).collect(),
            kernels: workloads
                .iter()
                .map(|w| w.kernel.paper_benchmark().to_string())
                .collect(),
            ipc,
            throughput: Some(throughput),
        }
    }

    /// Simulates one kernel on one machine variant and returns its IPC.
    fn run_cell(&self, w: &Workload, v: &Variant) -> f64 {
        match v {
            Variant::Baseline => PipelineSim::new(self.base.clone())
                .run(&w.program)
                .unwrap_or_else(|e| panic!("baseline {} failed: {e}", w.kernel))
                .ipc(),
            Variant::Reese {
                spare_alus,
                spare_muls,
            } => {
                let cfg = ReeseConfig::over(self.base.clone())
                    .with_spare_int_alus(*spare_alus)
                    .with_spare_int_muldivs(*spare_muls);
                ReeseSim::new(cfg)
                    .run(&w.program)
                    .unwrap_or_else(|e| panic!("REESE {} failed: {e}", w.kernel))
                    .ipc()
            }
        }
    }
}

/// Default per-kernel dynamic-instruction budget; override with the
/// `REESE_TARGET_INSNS` environment variable (the paper used 100M per
/// benchmark, which works here too but takes a while).
pub fn default_target() -> u64 {
    std::env::var("REESE_TARGET_INSNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000)
}

/// Default worker count for sweeps: the `REESE_JOBS` environment
/// variable when set (0 or unparsable falls through), otherwise the
/// machine's available parallelism.
pub fn default_jobs() -> usize {
    std::env::var("REESE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(reese_stats::available_jobs)
}

/// Prints an experiment result honouring the `REESE_FORMAT` environment
/// variable: `csv` emits machine-readable CSV, anything else (or unset)
/// the human-readable table plus the gap summary.
pub fn emit(result: &ExperimentResult) {
    match std::env::var("REESE_FORMAT").as_deref() {
        Ok("csv") => print!("{}", result.csv()),
        _ => println!("{result}"),
    }
}

/// The four base machines of Figures 2–5, shared by `fig6`.
pub fn paper_machines() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        ("None (Table 1 starting config)", PipelineConfig::starting()),
        (
            "RUU,LSQ 2X (RUU=32, LSQ=16)",
            PipelineConfig::starting().with_ruu(32).with_lsq(16),
        ),
        (
            "Ex. Q 2X (16-wide datapath)",
            PipelineConfig::starting()
                .with_ruu(32)
                .with_lsq(16)
                .with_width(16),
        ),
        (
            "MemPorts (4 memory ports)",
            PipelineConfig::starting()
                .with_ruu(32)
                .with_lsq(16)
                .with_width(16)
                .with_mem_ports(4),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        let labels: Vec<String> = Variant::PAPER.iter().map(Variant::label).collect();
        assert_eq!(
            labels,
            vec!["baseline", "REESE", "R+1ALU", "R+2ALU", "R+2ALU+1Mul"]
        );
    }

    #[test]
    fn experiment_smoke() {
        let suite = Suite::smoke();
        let r = Experiment::new("smoke", PipelineConfig::starting())
            .variants(&[
                Variant::Baseline,
                Variant::Reese {
                    spare_alus: 2,
                    spare_muls: 0,
                },
            ])
            .run_on(&suite);
        assert_eq!(r.kernels.len(), 6);
        assert_eq!(r.variants.len(), 2);
        for row in &r.ipc {
            for &v in row {
                assert!(v > 0.0, "IPC must be positive");
            }
        }
        assert_eq!(r.averages().len(), 2);
        let t = r.table();
        assert_eq!(t.len(), 7, "6 kernels + AV.");
        assert!(r.to_string().contains("AV."));
    }

    #[test]
    fn paper_machines_are_valid() {
        for (name, cfg) in paper_machines() {
            cfg.validate();
            assert!(!name.is_empty());
        }
    }
}
