//! Figure 3: REESE vs baseline with the RUU and LSQ doubled
//! (RUU = 32, LSQ = 16).

use reese_bench::Experiment;
use reese_pipeline::PipelineConfig;

fn main() {
    let r = Experiment::new(
        "Figure 3 — Comparing REESE and baseline: RUU size = 32 and LSQ size = 16",
        PipelineConfig::starting().with_ruu(32).with_lsq(16),
    )
    .run();
    reese_bench::emit(&r);
}
