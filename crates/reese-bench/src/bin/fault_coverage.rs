//! Detection-coverage experiment (extension): measures what the paper
//! argues analytically in §4.2 — result errors in either stream are
//! detected by the P/R comparison; post-compare, cache-cell, and
//! pipeline-control upsets are not.

use reese_core::ReeseConfig;
use reese_faults::{Campaign, FaultClass, FaultMix};
use reese_stats::Table;
use reese_workloads::Kernel;

fn main() {
    let trials: usize = std::env::var("REESE_FAULT_TRIALS").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let mut t = Table::new(vec![
        "kernel", "coverage", "p-result", "r-result", "uncovered classes", "latency (cyc)", "recovery (cyc)",
    ]);
    for k in Kernel::ALL {
        let prog = k.build(1);
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(trials)
            .seed(0xC0FE + k as u64)
            .run(&prog)
            .expect("campaign runs");
        let (pd, pt) = report.by_class(FaultClass::PrimaryResult);
        let (rd, rt) = report.by_class(FaultClass::RedundantResult);
        let uncovered: u64 = [FaultClass::PostCompare, FaultClass::CacheCell, FaultClass::PipelineControl]
            .iter()
            .map(|&c| report.by_class(c).1)
            .sum();
        t.row(vec![
            k.name().to_string(),
            format!("{:.1}%", report.coverage() * 100.0),
            format!("{pd}/{pt}"),
            format!("{rd}/{rt}"),
            format!("0/{uncovered}"),
            format!("{:.1}", report.mean_detection_latency()),
            format!("{:.1}", report.mean_recovery_cycles()),
        ]);
        assert!(report.all_states_clean(), "recovery must preserve architectural state");
    }
    println!("Fault-injection coverage (broad mix: result errors + uncovered classes), {trials} trials/kernel");
    println!("{t}");
    println!("expected: 100% of result errors detected; post-compare/cache/control classes undetected by design (§4.2)");
}
