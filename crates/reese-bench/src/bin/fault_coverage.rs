//! Detection-coverage experiment (extension): measures what the paper
//! argues analytically in §4.2 — result errors in either stream are
//! detected by the P/R comparison; post-compare, cache-cell, and
//! pipeline-control upsets are not.

use reese_bench::default_jobs;
use reese_core::ReeseConfig;
use reese_faults::{Campaign, FaultClass, FaultMix};
use reese_stats::Table;
use reese_workloads::Kernel;
use std::time::Instant;

fn main() {
    let trials: usize = std::env::var("REESE_FAULT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let jobs = default_jobs();
    let mut t = Table::new(vec![
        "kernel",
        "coverage",
        "p-result",
        "r-result",
        "uncovered classes",
        "latency (cyc)",
        "recovery (cyc)",
        "trials/s",
    ]);
    let wall = Instant::now();
    let mut total_trials = 0u64;
    for k in Kernel::ALL {
        let prog = k.build(1);
        let report = Campaign::new(ReeseConfig::starting(), FaultMix::broad())
            .trials(trials)
            .seed(0xC0FE + k as u64)
            .jobs(jobs)
            .run(&prog)
            .expect("campaign runs");
        let (pd, pt) = report.by_class(FaultClass::PrimaryResult);
        let (rd, rt) = report.by_class(FaultClass::RedundantResult);
        let uncovered: u64 = [
            FaultClass::PostCompare,
            FaultClass::CacheCell,
            FaultClass::PipelineControl,
        ]
        .iter()
        .map(|&c| report.by_class(c).1)
        .sum();
        let tput = report
            .throughput
            .as_ref()
            .map_or(0.0, |s| s.items_per_sec());
        total_trials += report.trials() as u64;
        t.row(vec![
            k.name().to_string(),
            format!("{:.1}%", report.coverage() * 100.0),
            format!("{pd}/{pt}"),
            format!("{rd}/{rt}"),
            format!("0/{uncovered}"),
            format!("{:.1}", report.mean_detection_latency()),
            format!("{:.1}", report.mean_recovery_cycles()),
            format!("{tput:.0}"),
        ]);
        assert!(
            report.all_states_clean(),
            "recovery must preserve architectural state"
        );
    }
    let elapsed = wall.elapsed();
    println!(
        "Fault-injection coverage (broad mix: result errors + uncovered classes), {trials} trials/kernel"
    );
    println!("{t}");
    println!(
        "expected: 100% of result errors detected; post-compare/cache/control classes undetected by design (§4.2)"
    );
    println!(
        "{total_trials} trials on {jobs} worker(s) in {:.2}s ({:.0} trials/s overall)",
        elapsed.as_secs_f64(),
        total_trials as f64 / elapsed.as_secs_f64().max(1e-9),
    );
}
