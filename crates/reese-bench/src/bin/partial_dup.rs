//! Partial duplication (the paper's §7 future work): re-execute one in
//! k instructions, trading coverage for time.

use reese_bench::default_target;
use reese_core::{ReeseConfig, ReeseSim};
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::{mean, Table};
use reese_workloads::Suite;

fn main() {
    let suite = Suite::spec95_like(default_target());
    let base = PipelineConfig::starting();
    let baseline = mean(
        &suite
            .iter()
            .map(|w| {
                PipelineSim::new(base.clone())
                    .run(&w.program)
                    .unwrap()
                    .ipc()
            })
            .collect::<Vec<_>>(),
    );
    let mut t = Table::new(vec![
        "duplication",
        "avg IPC",
        "gap vs baseline",
        "coverage bound",
    ]);
    t.row(vec![
        "baseline (none)".into(),
        format!("{baseline:.3}"),
        "+0.0%".into(),
        "0%".into(),
    ]);
    for k in [1u64, 2, 4, 8] {
        let ipc = mean(
            &suite
                .iter()
                .map(|w| {
                    ReeseSim::new(ReeseConfig::over(base.clone()).with_duplication_period(k))
                        .run(&w.program)
                        .unwrap()
                        .ipc()
                })
                .collect::<Vec<_>>(),
        );
        t.row(vec![
            format!("1 in {k}"),
            format!("{ipc:.3}"),
            format!("{:+.1}%", (ipc / baseline - 1.0) * 100.0),
            format!("{:.0}%", 100.0 / k as f64),
        ]);
    }
    println!("Partial duplication (§7 future work): re-execute 1 of every k instructions");
    println!("{t}");
}
