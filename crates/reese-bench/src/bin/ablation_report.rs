//! Ablation report: IPC impact of every REESE design choice DESIGN.md
//! calls out, on the RUU=32 machine over the full suite.

use reese_bench::default_target;
use reese_core::{ReeseConfig, ReeseSim};
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::{mean, Table};
use reese_workloads::Suite;

fn avg(suite: &Suite, cfg: &ReeseConfig) -> f64 {
    mean(
        &suite
            .iter()
            .map(|w| {
                ReeseSim::new(cfg.clone())
                    .run(&w.program)
                    .expect("runs")
                    .ipc()
            })
            .collect::<Vec<_>>(),
    )
}

fn main() {
    let suite = Suite::spec95_like(default_target());
    let base_cfg = PipelineConfig::starting().with_ruu(32).with_lsq(16);
    let baseline = mean(
        &suite
            .iter()
            .map(|w| {
                PipelineSim::new(base_cfg.clone())
                    .run(&w.program)
                    .expect("runs")
                    .ipc()
            })
            .collect::<Vec<_>>(),
    );
    let reference = ReeseConfig::over(base_cfg.clone());
    let ref_ipc = avg(&suite, &reference);

    let mut t = Table::new(vec![
        "ablation",
        "avg IPC",
        "vs baseline",
        "vs REESE default",
    ]);
    let mut row = |name: &str, ipc: f64| {
        t.row(vec![
            name.to_string(),
            format!("{ipc:.3}"),
            format!("{:+.1}%", (ipc / baseline - 1.0) * 100.0),
            format!("{:+.1}%", (ipc / ref_ipc - 1.0) * 100.0),
        ]);
    };
    row("baseline (no redundancy)", baseline);
    row("REESE default (held RUU, queue 32, lookahead 8)", ref_ipc);
    row(
        "early RUU removal (§4.3)",
        avg(&suite, &reference.clone().with_early_removal(true)),
    );
    for size in [8usize, 16, 64, 128] {
        row(
            &format!("R-queue size {size}"),
            avg(&suite, &reference.clone().with_rqueue_size(size)),
        );
    }
    for lookahead in [1usize, 2, 16] {
        let mut cfg = reference.clone();
        cfg.r_issue_lookahead = lookahead;
        row(&format!("R-issue lookahead {lookahead}"), avg(&suite, &cfg));
    }
    for hw in [8usize, 16, 31] {
        let mut cfg = reference.clone();
        cfg.high_water = hw;
        row(&format!("high-water mark {hw}"), avg(&suite, &cfg));
    }
    for period in [2u64, 4] {
        row(
            &format!("partial duplication 1-in-{period}"),
            avg(&suite, &reference.clone().with_duplication_period(period)),
        );
    }
    // Next-line prefetching (off in the paper's Table 1): helps both
    // machines; REESE gains slightly more since its R stream rides the
    // warmed lines.
    let mut pf_cfg = base_cfg.clone();
    pf_cfg.hierarchy = pf_cfg.hierarchy.with_next_line_prefetch();
    row(
        "REESE + L1D next-line prefetch",
        avg(&suite, &ReeseConfig::over(pf_cfg)),
    );
    println!("REESE design-choice ablations (RUU=32/LSQ=16 machine, suite averages)");
    println!("{t}");
}
