//! The §2 time-separation experiment (extension): sweep the fault
//! duration Δt and measure how often a disturbance that corrupts
//! results escapes the P/R comparison because *both* executions fell
//! inside the window.
//!
//! The paper argues: "detection of the soft error is only guaranteed if
//! the P-stream and R-stream executions are separated by a time greater
//! than Δt". This binary measures the P→R separation distribution of
//! the actual machine and confirms that silent escapes appear exactly
//! when Δt crosses into it.

use reese_core::{DurationFault, ReeseConfig, ReeseSim};
use reese_isa::FuClass;
use reese_stats::{SplitMix64, Table};
use reese_workloads::Kernel;

fn main() {
    let trials: u64 = std::env::var("REESE_FAULT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let prog = Kernel::Compiler.build(1);
    let sim = ReeseSim::new(ReeseConfig::starting());

    // Measure the machine's own P→R separation distribution first.
    let clean = sim.run(&prog).expect("clean run");
    let sep = &clean.stats.pr_separation;
    println!(
        "P→R completion separation on this machine: mean {:.1} cycles, max {} (n = {})",
        sep.mean(),
        sep.max(),
        sep.samples()
    );

    let total_cycles = clean.cycles();
    let mut t = Table::new(vec![
        "Δt (cycles)",
        "affected runs",
        "corruptions (P/R)",
        "detected",
        "silent escapes",
        "escape rate",
    ]);
    for dt in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        let mut rng = SplitMix64::new(0x5E9A + dt);
        let (mut affected, mut p_c, mut r_c, mut detected, mut silent) = (0u64, 0, 0, 0u64, 0);
        for _ in 0..trials {
            let start = rng.range_u64(total_cycles / 10, total_cycles * 9 / 10);
            let fault = DurationFault {
                start_cycle: start,
                duration: dt,
                class: FuClass::IntAlu,
                bit: 9,
            };
            match sim.run_with_duration_fault(&prog, fault, u64::MAX) {
                Ok((r, report)) => {
                    if report.affected() {
                        affected += 1;
                    }
                    p_c += report.p_corrupted;
                    r_c += report.r_corrupted;
                    detected += r.stats.detections;
                    silent += report.silent_both;
                }
                Err(_) => {
                    // The disturbance outlasted the retry: reported as a
                    // permanent fault. Count it as detected (the machine
                    // stopped and notified).
                    affected += 1;
                    detected += 1;
                }
            }
        }
        let corruptions = p_c + r_c;
        t.row(vec![
            dt.to_string(),
            format!("{affected}/{trials}"),
            format!("{p_c}/{r_c}"),
            detected.to_string(),
            silent.to_string(),
            if corruptions == 0 {
                "-".into()
            } else {
                format!("{:.0}%", 100.0 * silent as f64 * 2.0 / corruptions as f64)
            },
        ]);
    }
    println!(
        "\nDuration-fault sweep ({} trials per Δt, random window placement):",
        trials
    );
    println!("{t}");
    println!(
        "expected: short disturbances (Δt ≪ P→R separation) are always caught; escapes grow once Δt \
         reaches the separation distribution — §2's guarantee, measured"
    );
}
