//! Figure 5: IPC with additional memory ports (4 instead of 2).
//!
//! The paper drops the "+2 ALU +1 Mult" variant here because its data
//! matched "+2 ALU"; we keep the same variant list.

use reese_bench::{Experiment, Variant};
use reese_pipeline::PipelineConfig;

fn main() {
    let r = Experiment::new(
        "Figure 5 — IPC for additional memory ports (4 ports, 16-wide, RUU=32/LSQ=16)",
        PipelineConfig::starting()
            .with_ruu(32)
            .with_lsq(16)
            .with_width(16)
            .with_mem_ports(4),
    )
    .variants(&[
        Variant::Baseline,
        Variant::Reese {
            spare_alus: 0,
            spare_muls: 0,
        },
        Variant::Reese {
            spare_alus: 1,
            spare_muls: 0,
        },
        Variant::Reese {
            spare_alus: 2,
            spare_muls: 0,
        },
    ])
    .run();
    reese_bench::emit(&r);
}
