//! Scheme comparison (the paper's §3 argument): plain baseline,
//! Franklin-style dispatch duplication, and REESE with and without
//! spare elements, on the same machine.

use reese_bench::default_target;
use reese_core::{DuplexSim, ReeseConfig, ReeseSim};
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::{mean, Table};
use reese_workloads::Suite;

fn main() {
    let suite = Suite::spec95_like(default_target());
    let base_cfg = PipelineConfig::starting().with_ruu(32).with_lsq(16);
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("baseline (no redundancy)", Vec::new()),
        ("dispatch duplication (Franklin [24])", Vec::new()),
        ("REESE", Vec::new()),
        ("REESE + 2 spare ALUs", Vec::new()),
        ("REESE + early RUU removal + 2 ALUs", Vec::new()),
    ];
    for w in suite.iter() {
        rows[0].1.push(
            PipelineSim::new(base_cfg.clone())
                .run(&w.program)
                .unwrap()
                .ipc(),
        );
        rows[1].1.push(
            DuplexSim::new(base_cfg.clone())
                .run(&w.program)
                .unwrap()
                .ipc(),
        );
        rows[2].1.push(
            ReeseSim::new(ReeseConfig::over(base_cfg.clone()))
                .run(&w.program)
                .unwrap()
                .ipc(),
        );
        rows[3].1.push(
            ReeseSim::new(ReeseConfig::over(base_cfg.clone()).with_spare_int_alus(2))
                .run(&w.program)
                .unwrap()
                .ipc(),
        );
        rows[4].1.push(
            ReeseSim::new(
                ReeseConfig::over(base_cfg.clone())
                    .with_spare_int_alus(2)
                    .with_early_removal(true),
            )
            .run(&w.program)
            .unwrap()
            .ipc(),
        );
    }
    let baseline_avg = mean(&rows[0].1);
    let mut t = Table::new(vec![
        "scheme",
        "avg IPC",
        "vs baseline",
        "detects soft errors",
    ]);
    for (i, (name, ipcs)) in rows.iter().enumerate() {
        let avg = mean(ipcs);
        t.row(vec![
            name.to_string(),
            format!("{avg:.3}"),
            format!("{:+.1}%", (avg / baseline_avg - 1.0) * 100.0),
            if i == 0 {
                "no".into()
            } else {
                "yes (result errors)".into()
            },
        ]);
    }
    println!(
        "Redundancy schemes on the RUU=32 machine (paper §3: REESE vs. scheduler duplication)"
    );
    println!("{t}");
}
