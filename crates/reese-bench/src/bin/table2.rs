//! Table 2: benchmark programs and inputs, with the kernels standing in.

use reese_stats::Table;
use reese_workloads::{measure_mix, Kernel};

fn main() {
    let mut t = Table::new(vec![
        "benchmark",
        "paper input",
        "our kernel",
        "dynamic mix (at scale 2)",
    ]);
    for k in Kernel::ALL {
        let mix = measure_mix(&k.build(2), 400_000);
        t.row(vec![
            k.paper_benchmark().to_string(),
            k.paper_input().to_string(),
            k.name().to_string(),
            format!(
                "{:.0}% mem, {:.0}% branch, {:.1}% mul/div",
                mix.mem_fraction() * 100.0,
                mix.branch_fraction() * 100.0,
                mix.muldiv_fraction() * 100.0
            ),
        ]);
    }
    println!("Table 2 — Benchmark programs and inputs (SPEC95 integer → synthetic kernels)");
    println!("{t}");
}
