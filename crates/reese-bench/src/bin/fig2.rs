//! Figure 2: initial comparison between REESE and baseline on the
//! Table 1 starting configuration.

use reese_bench::Experiment;
use reese_pipeline::PipelineConfig;

fn main() {
    let r = Experiment::new(
        "Figure 2 — Initial comparison between REESE and baseline (Table 1 starting config)",
        PipelineConfig::starting(),
    )
    .run();
    reese_bench::emit(&r);
}
