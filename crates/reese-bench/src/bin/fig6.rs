//! Figure 6: summary of results — the average IPC of every variant on
//! each of the four machines of Figures 2–5, and the REESE-vs-baseline
//! gap per machine.

use reese_bench::{paper_machines, Experiment, Variant};
use reese_stats::Table;
use reese_workloads::Suite;

fn main() {
    let suite = Suite::spec95_like(reese_bench::default_target());
    let variants = [
        Variant::Baseline,
        Variant::Reese {
            spare_alus: 0,
            spare_muls: 0,
        },
        Variant::Reese {
            spare_alus: 2,
            spare_muls: 0,
        },
    ];
    let mut t = Table::new(vec!["config", "baseline", "REESE", "gap", "R+2ALU", "gap"]);
    let mut gaps = Vec::new();
    let mut gaps_spare = Vec::new();
    for (name, cfg) in paper_machines() {
        let r = Experiment::new(name, cfg)
            .variants(&variants)
            .run_on(&suite);
        let a = r.averages();
        gaps.push(r.average_gap(1));
        gaps_spare.push(r.average_gap(2));
        t.row(vec![
            name.to_string(),
            format!("{:.3}", a[0]),
            format!("{:.3}", a[1]),
            format!("{:+.1}%", r.average_gap(1)),
            format!("{:.3}", a[2]),
            format!("{:+.1}%", r.average_gap(2)),
        ]);
    }
    println!("Figure 6 — Summary of results (average IPC across the six benchmarks)");
    println!("{t}");
    println!(
        "average REESE gap across configs: {:+.1}% (paper: -14.0%), with +2 spare ALUs: {:+.1}% (paper: -8.0%)",
        reese_stats::mean(&gaps),
        reese_stats::mean(&gaps_spare),
    );
}
