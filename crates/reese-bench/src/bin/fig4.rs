//! Figure 4: IPC for the 16-wide datapath (RUU = 32, LSQ = 16 kept).

use reese_bench::Experiment;
use reese_pipeline::PipelineConfig;

fn main() {
    let r = Experiment::new(
        "Figure 4 — IPC for 16-wide datapath",
        PipelineConfig::starting()
            .with_ruu(32)
            .with_lsq(16)
            .with_width(16),
    )
    .run();
    reese_bench::emit(&r);
}
