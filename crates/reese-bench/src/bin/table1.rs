//! Table 1: the simulator's starting configuration.

use reese_pipeline::PipelineConfig;
use reese_stats::Table;

fn main() {
    let c = PipelineConfig::starting();
    let h = &c.hierarchy;
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Fetch Queue Size", c.fetch_queue_size.to_string()),
        ("Max IPC for Other Pipeline Stages", c.width.to_string()),
        ("RUU Size", c.ruu_size.to_string()),
        ("LSQ Size", c.lsq_size.to_string()),
        ("Registers", "32 GP, 32 FP".to_string()),
        (
            "Functional Units",
            format!(
                "{} IntAdd, {} IntM/D, {} FpAdd, {} FpM/D",
                c.fu.int_alu, c.fu.int_muldiv, c.fu.fp_alu, c.fu.fp_muldiv
            ),
        ),
        ("Memory Ports", c.fu.mem_ports.to_string()),
        (
            "L1 Data Cache",
            format!(
                "{} KB, {}-way, {}-cycle hit time",
                h.l1d.size_bytes / 1024,
                h.l1d.assoc,
                h.l1d.hit_latency
            ),
        ),
        (
            "L2 Data Cache",
            format!(
                "{} KB, {}-way, {}-cycle hit time",
                h.l2.size_bytes / 1024,
                h.l2.assoc,
                h.l2.hit_latency
            ),
        ),
        (
            "L1 Inst. Cache",
            format!(
                "{} KB, {}-way, {}-cycle hit time",
                h.l1i.size_bytes / 1024,
                h.l1i.assoc,
                h.l1i.hit_latency
            ),
        ),
        ("L2 Inst. Cache", "Shared w/ D-cache".to_string()),
        (
            "Branch Predictor",
            "gshare, from [26] (McFarling)".to_string(),
        ),
        ("Main Memory Latency", format!("{} cycles", h.mem_latency)),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    println!("Table 1 — General simulator options (the starting configuration)");
    println!("{t}");
}
