//! Figure 7: REESE vs baseline for even more hardware.
//!
//! Series order matches the paper: RUU=64, RUU=64 + extra FUs, RUU=256,
//! RUU=256 + extra FUs; lines are baseline, REESE, REESE+2 ALU. "Extra
//! FUs" doubles every functional-unit class (8 IntALU, 4 IntM/D, …).

use reese_bench::{Experiment, Variant};
use reese_pipeline::{FuCounts, PipelineConfig};
use reese_stats::Table;
use reese_workloads::Suite;

fn main() {
    let suite = Suite::spec95_like(reese_bench::default_target());
    let more_fus = FuCounts {
        int_alu: 8,
        int_muldiv: 4,
        fp_alu: 8,
        fp_muldiv: 4,
        mem_ports: 2,
    };
    let machines = [
        (
            "RUU=64",
            PipelineConfig::starting().with_ruu(64).with_lsq(32),
        ),
        (
            "RUU=64 + extra FUs",
            PipelineConfig::starting()
                .with_ruu(64)
                .with_lsq(32)
                .with_fu(more_fus),
        ),
        (
            "RUU=256",
            PipelineConfig::starting().with_ruu(256).with_lsq(128),
        ),
        (
            "RUU=256 + extra FUs",
            PipelineConfig::starting()
                .with_ruu(256)
                .with_lsq(128)
                .with_fu(more_fus),
        ),
    ];
    let variants = [
        Variant::Baseline,
        Variant::Reese {
            spare_alus: 0,
            spare_muls: 0,
        },
        Variant::Reese {
            spare_alus: 2,
            spare_muls: 0,
        },
    ];
    let mut t = Table::new(vec![
        "config",
        "baseline",
        "REESE",
        "gap",
        "REESE+2ALU",
        "gap",
    ]);
    for (name, cfg) in machines {
        let r = Experiment::new(name, cfg)
            .variants(&variants)
            .run_on(&suite);
        let a = r.averages();
        t.row(vec![
            name.to_string(),
            format!("{:.3}", a[0]),
            format!("{:.3}", a[1]),
            format!("{:+.1}%", r.average_gap(1)),
            format!("{:.3}", a[2]),
            format!("{:+.1}%", r.average_gap(2)),
        ]);
    }
    println!("Figure 7 — REESE vs. baseline for even more hardware");
    println!("{t}");
    println!("paper: the gap stays ~15% when only the RUU grows, and drops to ~1.5% once extra FUs are present");
}
