//! Campaign-throughput benchmark: checkpoint-anchored replay vs the
//! from-scratch oracle arm.
//!
//! Runs the same seeded Monte-Carlo injection campaign (default trial
//! count, broad fault mix) on every standard kernel under both
//! [`TrialEngine`] arms. The arms share the anchored-window trial
//! semantics, so their reports must be byte-identical — this binary
//! asserts that on every kernel before timing anything, making a perf
//! run double as the replay-exactness oracle. The paired timings then
//! price what the reuse machinery buys: `Full` re-derives each trial's
//! anchor state from instruction 0 and re-runs its clean window;
//! `Replay` restores from the once-per-campaign checkpoint sweep,
//! shares clean-window baselines, and memoizes duplicate fault keys.
//!
//! Results are printed and written to `BENCH_campaign.json` (override
//! with `--out FILE`; `--samples N` adjusts the timed sample count;
//! `--guard` fails the run if the median replay/full speedup across
//! the kernels drops below the 5x acceptance floor, or any kernel
//! regresses against its recorded seed value).

use reese_core::ReeseConfig;
use reese_faults::{Campaign, FaultMix, TrialEngine};
use reese_stats::bench::{Criterion, PairMeasurement};
use reese_workloads::Kernel;
use std::hint::black_box;

/// Dynamic instructions per kernel: long enough that a fault's anchor
/// sits deep in the stream, where replay's suffix-only cost separates
/// from the from-scratch arm's whole-prefix cost.
const TARGET_INSTRUCTIONS: u64 = 2_000_000;

/// Injection trials per campaign — the CLI default.
const TRIALS: usize = 200;

/// Replay/full campaign speedups measured when this benchmark was
/// seeded, keyed by kernel. Kept in the report so `BENCH_campaign.json`
/// records the before/after of later engine work without digging
/// through git history.
const SPEEDUP_SEED: &[(&str, f64)] = &[
    ("compiler", 6.63),
    ("database", 6.33),
    ("gameplay", 5.10),
    ("imaging", 5.66),
    ("lisp", 8.00),
    ("strings", 5.90),
];

/// `--guard` tolerance: a live per-kernel speedup may sit this
/// fraction below its recorded seed before the run fails. The ratio is
/// host-independent; 15% is far above run-to-run noise.
const GUARD_TOLERANCE: f64 = 0.85;

/// The acceptance floor: the median replay/full speedup across the
/// standard kernels must stay at or above this factor at default
/// trial counts.
const GUARD_FLOOR: f64 = 5.0;

/// `--guard` ceiling on the telemetry-on / telemetry-off time ratio.
/// The journal writes sit around the simulation phases, never inside a
/// trial, so attaching one must be free; 1.10 is far above noise.
const TELEMETRY_CEILING: f64 = 1.10;

struct Cell {
    kernel: &'static str,
    pair: PairMeasurement,
    coverage: f64,
    detected: u64,
}

impl Cell {
    fn full_trials_per_s(&self) -> f64 {
        TRIALS as f64 / self.pair.a.min.as_secs_f64()
    }

    fn replay_trials_per_s(&self) -> f64 {
        TRIALS as f64 / self.pair.b.min.as_secs_f64()
    }

    fn speedup(&self) -> f64 {
        self.pair.speedup
    }

    fn speedup_seed(&self) -> Option<f64> {
        SPEEDUP_SEED
            .iter()
            .find(|(k, _)| *k == self.kernel)
            .map(|&(_, v)| v)
    }
}

fn main() {
    let mut out_path = String::from("BENCH_campaign.json");
    let mut samples = 3usize;
    let mut guard = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out_path = argv.next().expect("--out needs a path"),
            "--samples" => {
                samples = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a number")
            }
            "--guard" => guard = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let mut cells = Vec::new();
    let mut c = Criterion::default();
    for kernel in Kernel::ALL {
        let program = kernel.build_for(TARGET_INSTRUCTIONS);
        let campaign = |engine: TrialEngine| {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(TRIALS)
                .engine(engine)
        };

        // Oracle first: the two arms must agree byte-for-byte before
        // their relative speed means anything.
        let full = campaign(TrialEngine::Full)
            .run(&program)
            .expect("campaign runs");
        let replay = campaign(TrialEngine::Replay)
            .run(&program)
            .expect("campaign runs");
        assert_eq!(replay, full, "{}: replay diverged from full", kernel.name());
        assert_eq!(
            replay.to_json(),
            full.to_json(),
            "{}: reports must serialise identically",
            kernel.name()
        );

        let mut g = c.benchmark_group(kernel.name());
        g.sample_size(samples);
        let pair = g.bench_pair(
            "campaign/full",
            "campaign/replay",
            || {
                black_box(
                    campaign(TrialEngine::Full)
                        .run(&program)
                        .expect("campaign runs"),
                )
            },
            || {
                black_box(
                    campaign(TrialEngine::Replay)
                        .run(&program)
                        .expect("campaign runs"),
                )
            },
        );
        g.finish();
        cells.push(Cell {
            kernel: kernel.name(),
            pair,
            coverage: full.coverage(),
            detected: full.detected,
        });
    }

    // Telemetry must be free: the journal is written around the
    // phases, not inside trials, so a campaign with `--telemetry-out`
    // attached may not cost measurable throughput. One kernel suffices
    // — every campaign shares the phase structure.
    let tele_pair = {
        let kernel = Kernel::Lisp;
        let program = kernel.build_for(TARGET_INSTRUCTIONS);
        let journal = std::env::temp_dir().join(format!("bench-tele-{}.jsonl", std::process::id()));
        let campaign = || {
            Campaign::new(ReeseConfig::starting(), FaultMix::broad())
                .trials(TRIALS)
                .engine(TrialEngine::Replay)
        };
        let mut g = c.benchmark_group("telemetry");
        g.sample_size(samples);
        let pair = g.bench_pair(
            "campaign/telemetry-on",
            "campaign/telemetry-off",
            || {
                black_box(
                    campaign()
                        .telemetry_out(&journal)
                        .run(&program)
                        .expect("campaign runs"),
                )
            },
            || black_box(campaign().run(&program).expect("campaign runs")),
        );
        g.finish();
        let _ = std::fs::remove_file(&journal);
        pair
    };

    println!();
    println!(
        "{:<10} {:>8} {:>14} {:>16} {:>8} {:>8}",
        "kernel", "trials", "full trials/s", "replay trials/s", "seed", "speedup"
    );
    for cell in &cells {
        println!(
            "{:<10} {:>8} {:>14.1} {:>16.1} {:>7.2}x {:>7.2}x",
            cell.kernel,
            TRIALS,
            cell.full_trials_per_s(),
            cell.replay_trials_per_s(),
            cell.speedup_seed().unwrap_or(f64::NAN),
            cell.speedup()
        );
    }
    let mut sorted: Vec<f64> = cells.iter().map(Cell::speedup).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    let median = if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    };
    println!("median speedup across kernels: {median:.2}x");
    println!(
        "telemetry journal cost: on/off time ratio {:.3} (ceiling {TELEMETRY_CEILING})",
        tele_pair.speedup
    );
    if guard {
        assert!(
            tele_pair.speedup <= TELEMETRY_CEILING,
            "guard: telemetry-on/telemetry-off time ratio {:.3} exceeds the \
             {TELEMETRY_CEILING} ceiling — the journal leaked into the trial path",
            tele_pair.speedup
        );
        assert!(
            median >= GUARD_FLOOR,
            "guard: median replay/full campaign speedup {median:.3} fell below the \
             {GUARD_FLOOR}x acceptance floor"
        );
        for cell in &cells {
            let seed = cell.speedup_seed().expect("seed row exists");
            let floor = seed * GUARD_TOLERANCE;
            assert!(
                cell.speedup() >= floor,
                "guard: {} replay/full campaign speedup {:.3} fell below {:.3} \
                 (seed {:.3} x tolerance {GUARD_TOLERANCE})",
                cell.kernel,
                cell.speedup(),
                floor,
                seed,
            );
        }
        println!(
            "guard: median holds the {GUARD_FLOOR}x floor and every kernel holds its seed ratio"
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"campaign\",\n");
    json.push_str(&format!(
        "  \"target_instructions\": {TARGET_INSTRUCTIONS},\n"
    ));
    json.push_str(&format!("  \"trials\": {TRIALS},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"median_speedup\": {median:.3},\n"));
    json.push_str(&format!("  \"median_floor\": {GUARD_FLOOR:.1},\n"));
    json.push_str(&format!(
        "  \"telemetry_on_off_ratio\": {:.3},\n",
        tele_pair.speedup
    ));
    json.push_str(&format!(
        "  \"telemetry_ceiling\": {TELEMETRY_CEILING:.2},\n"
    ));
    json.push_str("  \"cells\": [\n");
    let rows: Vec<String> = cells
        .iter()
        .map(|cell| {
            format!(
                "    {{\"kernel\": \"{}\", \"trials\": {TRIALS}, \
                 \"full_min_s\": {:.6}, \"replay_min_s\": {:.6}, \
                 \"full_trials_per_s\": {:.1}, \"replay_trials_per_s\": {:.1}, \
                 \"speedup_seed\": {:.3}, \"speedup\": {:.3}, \
                 \"coverage\": {:.6}, \"detected\": {}, \"byte_identical\": true}}",
                cell.kernel,
                cell.pair.a.min.as_secs_f64(),
                cell.pair.b.min.as_secs_f64(),
                cell.full_trials_per_s(),
                cell.replay_trials_per_s(),
                cell.speedup_seed().unwrap_or(f64::NAN),
                cell.speedup(),
                cell.coverage,
                cell.detected,
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench report");
    println!("\nwritten to {out_path}");
}
