//! Scan vs event-driven scheduler micro-benchmark.
//!
//! Times all three machine models (baseline pipeline, REESE, duplex)
//! on a long-running kernel under both [`SchedulerMode`]s, on the
//! Table 1 starting configuration and on a large-window machine
//! (RUU=256, LSQ=128) where the per-cycle scans are most expensive.
//! Results — simulated cycles per wall-clock second and the
//! event-driven/scan speedup — are printed and written to
//! `BENCH_pipeline.json` (override with `--out FILE`; `--samples N`
//! adjusts the timed sample count).
//!
//! The two modes must also produce bit-identical results; this binary
//! asserts that on every cell, so a perf run doubles as an
//! equivalence check.

use reese_core::{DuplexSim, ReeseConfig, ReeseSim, SchedulerMode};
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::bench::{Criterion, Measurement};
use reese_workloads::Kernel;
use std::hint::black_box;

/// Dynamic instructions per benchmark run: long enough that the cycle
/// loop dominates and the idle/scan cost difference is visible.
const TARGET_INSTRUCTIONS: u64 = 120_000;

struct Cell {
    machine: &'static str,
    sim: &'static str,
    cycles: u64,
    scan: Measurement,
    event: Measurement,
}

impl Cell {
    fn scan_cps(&self) -> f64 {
        self.cycles as f64 / self.scan.min.as_secs_f64()
    }

    fn event_cps(&self) -> f64 {
        self.cycles as f64 / self.event.min.as_secs_f64()
    }

    fn speedup(&self) -> f64 {
        self.scan.min.as_secs_f64() / self.event.min.as_secs_f64()
    }
}

fn machines() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        ("starting (RUU=16, LSQ=8)", PipelineConfig::starting()),
        (
            "large (RUU=256, LSQ=128)",
            PipelineConfig::starting().with_ruu(256).with_lsq(128),
        ),
        (
            "huge (RUU=512, LSQ=256, width 16)",
            PipelineConfig::starting()
                .with_ruu(512)
                .with_lsq(256)
                .with_width(16),
        ),
    ]
}

fn main() {
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut samples = 7usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out_path = argv.next().expect("--out needs a path"),
            "--samples" => {
                samples = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a number")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let kernel = Kernel::Lisp;
    let program = kernel.build_for(TARGET_INSTRUCTIONS);
    let mut cells = Vec::new();
    let mut c = Criterion::default();

    for (machine, base) in machines() {
        let mut g = c.benchmark_group(machine);
        g.sample_size(samples);

        // Baseline out-of-order pipeline.
        let run_pipe = |mode| {
            PipelineSim::new(base.clone().with_scheduler(mode))
                .run(&program)
                .expect("kernel runs")
        };
        let reference = run_pipe(SchedulerMode::Scan);
        assert_eq!(
            reference,
            run_pipe(SchedulerMode::EventDriven),
            "baseline modes diverged"
        );
        let scan = g.bench_measured("baseline/scan", |b| {
            b.iter(|| black_box(run_pipe(SchedulerMode::Scan)))
        });
        let event = g.bench_measured("baseline/event", |b| {
            b.iter(|| black_box(run_pipe(SchedulerMode::EventDriven)))
        });
        cells.push(Cell {
            machine,
            sim: "baseline",
            cycles: reference.stats.cycles,
            scan,
            event,
        });

        // REESE with full re-execution.
        let reese_cfg = |mode| {
            let mut cfg = ReeseConfig::starting().with_scheduler(mode);
            cfg.pipeline = base.clone().with_scheduler(mode);
            cfg
        };
        let run_reese = |mode| {
            ReeseSim::new(reese_cfg(mode))
                .run(&program)
                .expect("kernel runs")
        };
        let reference = run_reese(SchedulerMode::Scan);
        assert_eq!(
            reference,
            run_reese(SchedulerMode::EventDriven),
            "REESE modes diverged"
        );
        let scan = g.bench_measured("reese/scan", |b| {
            b.iter(|| black_box(run_reese(SchedulerMode::Scan)))
        });
        let event = g.bench_measured("reese/event", |b| {
            b.iter(|| black_box(run_reese(SchedulerMode::EventDriven)))
        });
        cells.push(Cell {
            machine,
            sim: "reese",
            cycles: reference.stats.pipeline.cycles,
            scan,
            event,
        });

        // Time-shared duplex comparison machine.
        let run_duplex = |mode| {
            DuplexSim::new(base.clone().with_scheduler(mode))
                .run(&program)
                .expect("kernel runs")
        };
        let reference = run_duplex(SchedulerMode::Scan);
        assert_eq!(
            reference,
            run_duplex(SchedulerMode::EventDriven),
            "duplex modes diverged"
        );
        let scan = g.bench_measured("duplex/scan", |b| {
            b.iter(|| black_box(run_duplex(SchedulerMode::Scan)))
        });
        let event = g.bench_measured("duplex/event", |b| {
            b.iter(|| black_box(run_duplex(SchedulerMode::EventDriven)))
        });
        cells.push(Cell {
            machine,
            sim: "duplex",
            cycles: reference.stats.pipeline.cycles,
            scan,
            event,
        });
        g.finish();
    }

    println!();
    println!(
        "{:<26} {:<9} {:>14} {:>14} {:>8}",
        "machine", "sim", "scan cyc/s", "event cyc/s", "speedup"
    );
    for cell in &cells {
        println!(
            "{:<26} {:<9} {:>14.0} {:>14.0} {:>7.2}x",
            cell.machine,
            cell.sim,
            cell.scan_cps(),
            cell.event_cps(),
            cell.speedup()
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"scheduler\",\n");
    json.push_str(&format!("  \"kernel\": \"{}\",\n", kernel.name()));
    json.push_str(&format!(
        "  \"target_instructions\": {TARGET_INSTRUCTIONS},\n"
    ));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"cells\": [\n");
    let rows: Vec<String> = cells
        .iter()
        .map(|cell| {
            format!(
                "    {{\"machine\": \"{}\", \"sim\": \"{}\", \"cycles\": {}, \
                 \"scan_min_s\": {:.6}, \"event_min_s\": {:.6}, \
                 \"scan_cycles_per_s\": {:.0}, \"event_cycles_per_s\": {:.0}, \
                 \"speedup\": {:.3}}}",
                cell.machine,
                cell.sim,
                cell.cycles,
                cell.scan.min.as_secs_f64(),
                cell.event.min.as_secs_f64(),
                cell.scan_cps(),
                cell.event_cps(),
                cell.speedup()
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench report");
    println!("\nwritten to {out_path}");
}
