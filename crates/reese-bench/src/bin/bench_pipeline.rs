//! Scan vs event-driven scheduler micro-benchmark, plus the
//! sharded-vs-monolithic comparison for the checkpoint subsystem.
//!
//! Times all three machine models (baseline pipeline, REESE, duplex)
//! on a long-running kernel under both [`SchedulerMode`]s, on the
//! Table 1 starting configuration and on a large-window machine
//! (RUU=256, LSQ=128) where the per-cycle scans are most expensive.
//! Scan and event samples are interleaved and the reported speedup is
//! the median of per-pair ratios, so drift on a busy host cancels
//! instead of biasing one mode. Results — simulated cycles per
//! wall-clock second and the event-driven/scan speedup — are printed
//! and written to `BENCH_pipeline.json` (override with `--out FILE`;
//! `--samples N` adjusts the timed sample count; `--guard` fails the
//! run if a starting-machine (RUU=16) event/scan ratio regresses below
//! its recorded seed value).
//!
//! The two modes must also produce bit-identical results; this binary
//! asserts that on every cell, so a perf run doubles as an
//! equivalence check. The sharded row likewise asserts the
//! `reese-ckpt` oracle: stitched instruction counts and architectural
//! state must match the monolithic run exactly.
//!
//! A final section prices every registered detection scheme through
//! the [`reese_faults::schemes`] trait: clean-run simulated-cycle and
//! code-size overhead vs the unprotected baseline, plus wall-clock
//! throughput. The simulated overheads are deterministic, so `--guard`
//! holds each scheme to its recorded seed value — a protected scheme's
//! overhead collapsing toward 1.0x means the scheme quietly stopped
//! doing its redundant work.

use reese_ckpt::{run_sharded, Scheme, ShardOptions};
use reese_core::{DuplexSim, ReeseConfig, ReeseSim, SchedulerMode};
use reese_faults::schemes;
use reese_pipeline::{PipelineConfig, PipelineSim};
use reese_stats::bench::{Criterion, PairMeasurement};
use reese_trace::Tracer;
use reese_workloads::Kernel;
use std::hint::black_box;

/// Dynamic instructions per benchmark run: long enough that the cycle
/// loop dominates and the idle/scan cost difference is visible.
const TARGET_INSTRUCTIONS: u64 = 120_000;

/// Event-driven/scan speedups measured at the start of this change
/// (event mode still on the AoS `VecDeque<DynInst>` window with
/// per-dispatch `Vec` consumer lists, before the SoA `InstArena`),
/// keyed like the live cells. Kept in the report so
/// `BENCH_pipeline.json` records the before/after of the layout work
/// without digging through git history. Scan mode still runs the
/// original layout, so each pair of (before, after) rows prices the
/// arena against the same baseline.
const SPEEDUP_BEFORE: &[(&str, &str, f64)] = &[
    ("starting (RUU=16, LSQ=8)", "baseline", 1.075),
    ("starting (RUU=16, LSQ=8)", "reese", 0.985),
    ("starting (RUU=16, LSQ=8)", "duplex", 0.995),
    ("large (RUU=256, LSQ=128)", "baseline", 1.689),
    ("large (RUU=256, LSQ=128)", "reese", 1.617),
    ("large (RUU=256, LSQ=128)", "duplex", 1.864),
    ("huge (RUU=512, LSQ=256, width 16)", "baseline", 2.362),
    ("huge (RUU=512, LSQ=256, width 16)", "reese", 2.113),
    ("huge (RUU=512, LSQ=256, width 16)", "duplex", 2.491),
];

/// `--guard` tolerance: a live speedup may sit this fraction below its
/// recorded `SPEEDUP_BEFORE` value before the run fails. Ratios are
/// host-independent, but a loaded CI box still jitters individual
/// samples; 15% is far above observed run-to-run noise and far below
/// the ~2x swing an actual small-window regression produced when the
/// first ready-set implementation landed.
const GUARD_TOLERANCE: f64 = 0.85;

/// Clean-run overheads of every registered detection scheme vs the
/// unprotected baseline on the bench kernel (lisp @ 120k, starting
/// machine): `(scheme, simulated-cycle overhead, code-size overhead)`.
/// Simulated quantities, so they are exactly reproducible on any host;
/// the guard holds each protected scheme's overhead to at least
/// `GUARD_TOLERANCE` of its seed — a collapse toward 1.0x means the
/// redundant work silently disappeared.
const SCHEME_OVERHEAD_SEED: &[(&str, f64, f64)] = &[
    ("baseline", 1.0, 1.0),
    ("reese", 1.2241, 1.0),
    ("duplex", 1.7531, 1.0),
    ("meek", 1.0, 1.0),
    ("swift", 2.8933, 3.3438),
];

struct Cell {
    machine: &'static str,
    sim: &'static str,
    cycles: u64,
    pair: PairMeasurement,
}

impl Cell {
    fn scan_cps(&self) -> f64 {
        self.cycles as f64 / self.pair.a.min.as_secs_f64()
    }

    fn event_cps(&self) -> f64 {
        self.cycles as f64 / self.pair.b.min.as_secs_f64()
    }

    fn speedup(&self) -> f64 {
        self.pair.speedup
    }

    fn speedup_before(&self) -> Option<f64> {
        SPEEDUP_BEFORE
            .iter()
            .find(|(m, s, _)| *m == self.machine && *s == self.sim)
            .map(|&(_, _, v)| v)
    }
}

struct TraceCell {
    pair: PairMeasurement,
    events: usize,
    metrics_rows: usize,
}

impl TraceCell {
    /// Wall-clock cost of collecting a full pipetrace + sampled
    /// metrics, as traced-time / untraced-time (1.0 = free).
    fn overhead(&self) -> f64 {
        1.0 / self.pair.speedup
    }
}

struct SchemeCell {
    name: &'static str,
    cycles: u64,
    time_overhead: f64,
    code_overhead: f64,
    pair: PairMeasurement,
}

impl SchemeCell {
    /// Wall-clock cost of running the scheme's clean detailed model,
    /// as scheme-time / unprotected-pipeline-time (1.0 = free).
    fn wall_overhead(&self) -> f64 {
        1.0 / self.pair.speedup
    }

    fn seed(&self) -> Option<(f64, f64)> {
        SCHEME_OVERHEAD_SEED
            .iter()
            .find(|(n, _, _)| *n == self.name)
            .map(|&(_, t, c)| (t, c))
    }
}

struct ShardCell {
    intervals: usize,
    warmup: u64,
    pair: PairMeasurement,
    monolithic_cycles: u64,
    sharded_cycles: u64,
}

impl ShardCell {
    fn cycle_error(&self) -> f64 {
        (self.sharded_cycles as f64 - self.monolithic_cycles as f64) / self.monolithic_cycles as f64
    }
}

fn machines() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        ("starting (RUU=16, LSQ=8)", PipelineConfig::starting()),
        (
            "large (RUU=256, LSQ=128)",
            PipelineConfig::starting().with_ruu(256).with_lsq(128),
        ),
        (
            "huge (RUU=512, LSQ=256, width 16)",
            PipelineConfig::starting()
                .with_ruu(512)
                .with_lsq(256)
                .with_width(16),
        ),
    ]
}

fn main() {
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut samples = 7usize;
    let mut guard = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out_path = argv.next().expect("--out needs a path"),
            "--samples" => {
                samples = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a number")
            }
            "--guard" => guard = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let kernel = Kernel::Lisp;
    let program = kernel.build_for(TARGET_INSTRUCTIONS);
    let mut cells = Vec::new();
    let mut c = Criterion::default();

    for (machine, base) in machines() {
        let mut g = c.benchmark_group(machine);
        g.sample_size(samples);

        // Baseline out-of-order pipeline.
        let run_pipe = |mode| {
            PipelineSim::new(base.clone().with_scheduler(mode))
                .run(&program)
                .expect("kernel runs")
        };
        let reference = run_pipe(SchedulerMode::Scan);
        assert_eq!(
            reference,
            run_pipe(SchedulerMode::EventDriven),
            "baseline modes diverged"
        );
        let pair = g.bench_pair(
            "baseline/scan",
            "baseline/event",
            || black_box(run_pipe(SchedulerMode::Scan)),
            || black_box(run_pipe(SchedulerMode::EventDriven)),
        );
        cells.push(Cell {
            machine,
            sim: "baseline",
            cycles: reference.stats.cycles,
            pair,
        });

        // REESE with full re-execution.
        let reese_cfg = |mode| {
            let mut cfg = ReeseConfig::starting().with_scheduler(mode);
            cfg.pipeline = base.clone().with_scheduler(mode);
            cfg
        };
        let run_reese = |mode| {
            ReeseSim::new(reese_cfg(mode))
                .run(&program)
                .expect("kernel runs")
        };
        let reference = run_reese(SchedulerMode::Scan);
        assert_eq!(
            reference,
            run_reese(SchedulerMode::EventDriven),
            "REESE modes diverged"
        );
        let pair = g.bench_pair(
            "reese/scan",
            "reese/event",
            || black_box(run_reese(SchedulerMode::Scan)),
            || black_box(run_reese(SchedulerMode::EventDriven)),
        );
        cells.push(Cell {
            machine,
            sim: "reese",
            cycles: reference.stats.pipeline.cycles,
            pair,
        });

        // Time-shared duplex comparison machine.
        let run_duplex = |mode| {
            DuplexSim::new(base.clone().with_scheduler(mode))
                .run(&program)
                .expect("kernel runs")
        };
        let reference = run_duplex(SchedulerMode::Scan);
        assert_eq!(
            reference,
            run_duplex(SchedulerMode::EventDriven),
            "duplex modes diverged"
        );
        let pair = g.bench_pair(
            "duplex/scan",
            "duplex/event",
            || black_box(run_duplex(SchedulerMode::Scan)),
            || black_box(run_duplex(SchedulerMode::EventDriven)),
        );
        cells.push(Cell {
            machine,
            sim: "duplex",
            cycles: reference.stats.pipeline.cycles,
            pair,
        });
        g.finish();
    }

    // Sharded vs monolithic: one REESE run on the starting machine,
    // split into 4 intervals through the checkpoint subsystem. The
    // oracle certifies the stitched run commits the same instructions
    // to the same architectural state; the recorded cycle error is the
    // cold-boundary cost the warm-up window is buying down.
    let shard_cell = {
        let mut g = c.benchmark_group("sharded (starting, reese)");
        g.sample_size(samples.min(5));
        let config = ReeseConfig::starting();
        let opts = ShardOptions {
            intervals: 4,
            warmup: 4_000,
            compare_monolithic: false,
            ..ShardOptions::default()
        };
        let monolithic = ReeseSim::new(config.clone())
            .run(&program)
            .expect("kernel runs");
        let report =
            run_sharded(&program, &config, Scheme::Reese, &opts).expect("sharded run succeeds");
        assert!(
            report.oracle.exact(),
            "sharded run diverged functionally: {:?}",
            report.oracle
        );
        assert_eq!(
            report.total_instructions,
            monolithic.stats.pipeline.committed
        );
        let pair = g.bench_pair(
            "monolithic",
            "sharded x4",
            || {
                black_box(
                    ReeseSim::new(config.clone())
                        .run(&program)
                        .expect("kernel runs"),
                )
            },
            || {
                black_box(
                    run_sharded(&program, &config, Scheme::Reese, &opts)
                        .expect("sharded run succeeds"),
                )
            },
        );
        g.finish();
        ShardCell {
            intervals: opts.intervals,
            warmup: opts.warmup,
            pair,
            monolithic_cycles: monolithic.stats.pipeline.cycles,
            sharded_cycles: report.sharded_cycles,
        }
    };

    // Observability overhead: the same REESE run untraced (no-op
    // observer, statically compiled out) vs with a collecting Tracer
    // attached (full pipetrace ring + sampled metrics). The untraced
    // side guards the zero-cost-when-disabled claim — hooks ride the
    // generic no-op path; the traced side prices full collection.
    let trace_cell = {
        let mut g = c.benchmark_group("traced (starting, reese)");
        g.sample_size(samples);
        let config = ReeseConfig::starting();
        let untraced = ReeseSim::new(config.clone())
            .run(&program)
            .expect("kernel runs");
        let mut probe = Tracer::new();
        let traced = ReeseSim::new(config.clone())
            .run_with_faults_observed(&program, &[], 0, u64::MAX, &mut probe)
            .expect("kernel runs");
        assert_eq!(untraced, traced, "tracing changed the simulation");
        probe.finish();
        let (ring, metrics) = probe.into_parts();
        let pair = g.bench_pair(
            "untraced",
            "traced",
            || {
                black_box(
                    ReeseSim::new(config.clone())
                        .run(&program)
                        .expect("kernel runs"),
                )
            },
            || {
                let mut t = Tracer::new();
                black_box(
                    ReeseSim::new(config.clone())
                        .run_with_faults_observed(&program, &[], 0, u64::MAX, &mut t)
                        .expect("kernel runs"),
                );
                black_box(t);
            },
        );
        g.finish();
        TraceCell {
            pair,
            events: ring.len(),
            metrics_rows: metrics.rows.len(),
        }
    };

    // Detection-scheme pricing: a clean run of every registered backend
    // over the same kernel through the `DetectionScheme` trait. The
    // simulated-cycle and code-size overheads are deterministic (the
    // wall-clock pair is the only host-dependent number), which is what
    // makes them guardable against the seed table above.
    let scheme_cells = {
        let mut g = c.benchmark_group("schemes (starting)");
        g.sample_size(samples.min(5));
        let config = ReeseConfig::starting();
        let base_cycles = schemes::build(Scheme::Baseline, &config)
            .run_limit(&program, u64::MAX)
            .expect("kernel runs")
            .cycles;
        let mut v = Vec::new();
        for scheme in Scheme::ALL {
            let backend = schemes::build(scheme, &config);
            let prepared = backend.prepare(&program).expect("prepare succeeds");
            let clean = backend.run_limit(&prepared, u64::MAX).expect("kernel runs");
            let pair = g.bench_pair(
                format!("{scheme}/unprotected"),
                format!("{scheme}/protected"),
                || {
                    black_box(
                        PipelineSim::new(config.pipeline.clone())
                            .run(&program)
                            .expect("kernel runs"),
                    )
                },
                || black_box(backend.run_limit(&prepared, u64::MAX).expect("kernel runs")),
            );
            v.push(SchemeCell {
                name: scheme.name(),
                cycles: clean.cycles,
                time_overhead: clean.cycles as f64 / base_cycles as f64,
                code_overhead: prepared.len() as f64 / program.len() as f64,
                pair,
            });
        }
        g.finish();
        v
    };

    println!();
    println!(
        "{:<26} {:<9} {:>14} {:>14} {:>8} {:>8}",
        "machine", "sim", "scan cyc/s", "event cyc/s", "before", "speedup"
    );
    for cell in &cells {
        println!(
            "{:<26} {:<9} {:>14.0} {:>14.0} {:>7.2}x {:>7.2}x",
            cell.machine,
            cell.sim,
            cell.scan_cps(),
            cell.event_cps(),
            cell.speedup_before().unwrap_or(f64::NAN),
            cell.speedup()
        );
    }
    if guard {
        // Small windows are where layout overhead would show up as a
        // regression (the scan they replace is cheap there); the guard
        // holds every starting-machine cell to its recorded seed ratio.
        for cell in cells.iter().filter(|c| c.machine.starts_with("starting")) {
            let floor = cell.speedup_before().expect("seed row exists") * GUARD_TOLERANCE;
            assert!(
                cell.speedup() >= floor,
                "guard: {} {} event/scan speedup {:.3} fell below {:.3} \
                 (seed {:.3} x tolerance {GUARD_TOLERANCE})",
                cell.machine,
                cell.sim,
                cell.speedup(),
                floor,
                cell.speedup_before().unwrap(),
            );
        }
        println!("guard: starting-machine speedups hold their seed ratios");
    }

    println!(
        "sharded x{} (warmup {}): wall {:.2}x vs monolithic, cycle error {:+.2}%, \
         instruction counts exact",
        shard_cell.intervals,
        shard_cell.warmup,
        shard_cell.pair.speedup,
        shard_cell.cycle_error() * 100.0
    );
    println!(
        "traced (starting, reese): {:.2}x wall overhead collecting {} trace events \
         and {} metrics rows, results bit-identical",
        trace_cell.overhead(),
        trace_cell.events,
        trace_cell.metrics_rows
    );

    println!();
    println!(
        "{:<9} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "clean cyc", "time ovh", "code ovh", "wall ovh"
    );
    for cell in &scheme_cells {
        println!(
            "{:<9} {:>12} {:>9.2}x {:>9.2}x {:>9.2}x",
            cell.name,
            cell.cycles,
            cell.time_overhead,
            cell.code_overhead,
            cell.wall_overhead()
        );
    }
    if guard {
        // A protected scheme's simulated overheads are exact, so any
        // drop below seed x tolerance means the backend stopped doing
        // its redundant work (the expensive direction is a perf
        // question; vanishing overhead is a correctness one).
        for cell in &scheme_cells {
            let (time_seed, code_seed) = cell.seed().expect("seed row exists");
            assert!(
                cell.time_overhead >= time_seed * GUARD_TOLERANCE,
                "guard: {} time overhead {:.3} fell below {:.3} \
                 (seed {:.3} x tolerance {GUARD_TOLERANCE})",
                cell.name,
                cell.time_overhead,
                time_seed * GUARD_TOLERANCE,
                time_seed,
            );
            assert!(
                cell.code_overhead >= code_seed * GUARD_TOLERANCE,
                "guard: {} code overhead {:.3} fell below {:.3} \
                 (seed {:.3} x tolerance {GUARD_TOLERANCE})",
                cell.name,
                cell.code_overhead,
                code_seed * GUARD_TOLERANCE,
                code_seed,
            );
        }
        println!("guard: scheme overheads hold their seed values");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"scheduler\",\n");
    json.push_str(&format!("  \"kernel\": \"{}\",\n", kernel.name()));
    json.push_str(&format!(
        "  \"target_instructions\": {TARGET_INSTRUCTIONS},\n"
    ));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"cells\": [\n");
    let rows: Vec<String> = cells
        .iter()
        .map(|cell| {
            format!(
                "    {{\"machine\": \"{}\", \"sim\": \"{}\", \"cycles\": {}, \
                 \"scan_min_s\": {:.6}, \"event_min_s\": {:.6}, \
                 \"scan_cycles_per_s\": {:.0}, \"event_cycles_per_s\": {:.0}, \
                 \"speedup_before\": {:.3}, \"speedup\": {:.3}}}",
                cell.machine,
                cell.sim,
                cell.cycles,
                cell.pair.a.min.as_secs_f64(),
                cell.pair.b.min.as_secs_f64(),
                cell.scan_cps(),
                cell.event_cps(),
                cell.speedup_before().unwrap_or(f64::NAN),
                cell.speedup()
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"sharded\": {{\"machine\": \"starting (RUU=16, LSQ=8)\", \"sim\": \"reese\", \
         \"intervals\": {}, \"warmup\": {}, \"monolithic_cycles\": {}, \
         \"sharded_cycles\": {}, \"cycle_error\": {:.5}, \
         \"monolithic_min_s\": {:.6}, \"sharded_min_s\": {:.6}, \
         \"wall_speedup\": {:.3}, \"functionally_exact\": true}}\n",
        shard_cell.intervals,
        shard_cell.warmup,
        shard_cell.monolithic_cycles,
        shard_cell.sharded_cycles,
        shard_cell.cycle_error(),
        shard_cell.pair.a.min.as_secs_f64(),
        shard_cell.pair.b.min.as_secs_f64(),
        shard_cell.pair.speedup,
    ));
    json.push_str(&format!(
        "  ,\"traced\": {{\"machine\": \"starting (RUU=16, LSQ=8)\", \"sim\": \"reese\", \
         \"untraced_min_s\": {:.6}, \"traced_min_s\": {:.6}, \"overhead\": {:.3}, \
         \"trace_events\": {}, \"metrics_rows\": {}, \"bit_identical\": true}}\n",
        trace_cell.pair.a.min.as_secs_f64(),
        trace_cell.pair.b.min.as_secs_f64(),
        trace_cell.overhead(),
        trace_cell.events,
        trace_cell.metrics_rows,
    ));
    json.push_str("  ,\"schemes\": [\n");
    let rows: Vec<String> = scheme_cells
        .iter()
        .map(|cell| {
            format!(
                "    {{\"scheme\": \"{}\", \"clean_cycles\": {}, \
                 \"time_overhead\": {:.4}, \"code_overhead\": {:.4}, \
                 \"unprotected_min_s\": {:.6}, \"protected_min_s\": {:.6}, \
                 \"wall_overhead\": {:.3}}}",
                cell.name,
                cell.cycles,
                cell.time_overhead,
                cell.code_overhead,
                cell.pair.a.min.as_secs_f64(),
                cell.pair.b.min.as_secs_f64(),
                cell.wall_overhead()
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write bench report");
    println!("\nwritten to {out_path}");
}
