//! Set-associative cache timing model.

use std::fmt;

/// Geometry and timing of one cache level.
///
/// # Example
///
/// ```
/// use reese_mem::CacheConfig;
///
/// // The paper's L1 data cache: 32 KB, 2-way, 2-cycle hit time.
/// let l1d = CacheConfig::new("l1d", 32 * 1024, 32, 2, 2);
/// assert_eq!(l1d.num_sets(), 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Display name ("l1d", "l2", …).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes; must be a power of two.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u64,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, not a power of two where it must
    /// be, or if `size` is not divisible by `line * assoc`.
    pub fn new(
        name: &'static str,
        size_bytes: u64,
        line_bytes: u64,
        assoc: u64,
        hit_latency: u32,
    ) -> CacheConfig {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc > 0, "associativity must be positive");
        assert!(
            size_bytes.is_multiple_of(line_bytes * assoc) && size_bytes > 0,
            "size must be a positive multiple of line * assoc"
        );
        let sets = size_bytes / (line_bytes * assoc);
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        CacheConfig {
            name,
            size_bytes,
            line_bytes,
            assoc,
            hit_latency,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Block address of a dirty line evicted by this access, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Checkpointable state of one cache line (tag/valid/dirty/LRU — the
/// full replacement-relevant contents of a way).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineState {
    /// Tag bits of the cached block.
    pub tag: u64,
    /// Whether the way holds a block.
    pub valid: bool,
    /// Whether the block has been written since allocation.
    pub dirty: bool,
    /// LRU stamp (compared against the cache's tick counter).
    pub lru: u64,
}

/// A complete, geometry-independent snapshot of a cache's dynamic
/// state: every way of every set (sets in index order, ways in way
/// order), the LRU tick counter, and the accumulated statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// One entry per way, sets-major.
    pub lines: Vec<LineState>,
    /// The LRU tick counter.
    pub tick: u64,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

/// Aggregate access statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
}

impl CacheStats {
    /// Accumulates another interval's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }

    /// Miss rate in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache with true LRU
/// replacement.
///
/// Like SimpleScalar's cache module, this models *timing and contents
/// presence* only; the data itself always lives in
/// [`crate::Memory`]. [`Cache::access`] returns hit/miss plus any dirty
/// eviction so a hierarchy can propagate the miss downward.
///
/// # Example
///
/// ```
/// use reese_mem::{AccessKind, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new("l1d", 1024, 32, 2, 1));
/// assert!(!c.access(0x0, AccessKind::Read).hit);  // cold miss
/// assert!(c.access(0x4, AccessKind::Read).hit);   // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = vec![vec![Line::default(); config.assoc as usize]; config.num_sets() as usize];
        Cache {
            config,
            sets,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn split(&self, addr: u64) -> (u64, usize) {
        let block = addr / self.config.line_bytes;
        let set = (block % self.config.num_sets()) as usize;
        let tag = block / self.config.num_sets();
        (tag, set)
    }

    /// Performs an access, updating contents, LRU state, and statistics.
    ///
    /// On a miss the line is allocated (write-allocate); if the victim is
    /// dirty its block address is returned for the hierarchy to write
    /// back. Writes mark the line dirty.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let (tag, set_idx) = self.split(addr);
        let num_sets = self.config.num_sets();
        let line_bytes = self.config.line_bytes;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        // Choose a victim: an invalid way if one exists, else true LRU.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("associativity is positive");
        let victim = set[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            // Reconstruct the victim's block address.
            Some((victim.tag * num_sets + set_idx as u64) * line_bytes)
        } else {
            None
        };
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            lru: self.tick,
        };
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Whether `addr` currently hits, without disturbing any state.
    pub fn probe(&self, addr: u64) -> bool {
        let (tag, set_idx) = self.split(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line and discards dirty data (used on machine
    /// reset; the architectural memory is always authoritative).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }

    /// Exports the full dynamic state for checkpointing.
    pub fn export_state(&self) -> CacheSnapshot {
        CacheSnapshot {
            lines: self
                .sets
                .iter()
                .flatten()
                .map(|l| LineState {
                    tag: l.tag,
                    valid: l.valid,
                    dirty: l.dirty,
                    lru: l.lru,
                })
                .collect(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Restores state exported by [`Cache::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's line count does not match this cache's
    /// geometry (sets × ways).
    pub fn import_state(&mut self, snap: &CacheSnapshot) {
        let ways = self.config.assoc as usize;
        assert_eq!(
            snap.lines.len(),
            self.sets.len() * ways,
            "cache snapshot geometry mismatch"
        );
        for (i, line) in snap.lines.iter().enumerate() {
            self.sets[i / ways][i % ways] = Line {
                tag: line.tag,
                valid: line.valid,
                dirty: line.dirty,
                lru: line.lru,
            };
        }
        self.tick = snap.tick;
        self.stats = snap.stats;
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats;
        write!(
            f,
            "{}: {} accesses, {} hits, {} misses ({:.2}% miss), {} writebacks",
            self.config.name,
            s.accesses,
            s.hits,
            s.misses,
            s.miss_rate() * 100.0,
            s.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets, 2 ways, 16-byte lines.
        Cache::new(CacheConfig::new("t", 128, 16, 2, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x10F, AccessKind::Read).hit, "same line");
        assert!(!c.access(0x110, AccessKind::Read).hit, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three distinct lines mapping to set 0 (stride = sets*line = 64).
        c.access(0, AccessKind::Read);
        c.access(64, AccessKind::Read);
        c.access(0, AccessKind::Read); // touch 0 again; 64 is now LRU
        c.access(128, AccessKind::Read); // evicts 64
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.access(64, AccessKind::Read);
        let r = c.access(128, AccessKind::Read); // evicts dirty line 0
        assert_eq!(r.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(64, AccessKind::Read);
        let r = c.access(128, AccessKind::Read);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write); // hit, now dirty
        c.access(64, AccessKind::Read);
        let r = c.access(128, AccessKind::Read);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.invalidate_all();
        assert!(!c.probe(0));
    }

    #[test]
    fn writeback_address_reconstruction() {
        let mut c = small();
        // Set index 2: addresses 0x20, 0x60, 0xA0 (block addrs 2, 6, 10).
        c.access(0xA0, AccessKind::Write);
        c.access(0x20, AccessKind::Read);
        let r = c.access(0x60, AccessKind::Read);
        assert_eq!(r.writeback, Some(0xA0));
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new("t", 128, 24, 2, 1);
    }

    #[test]
    fn paper_l1d_geometry() {
        let cfg = CacheConfig::new("l1d", 32 * 1024, 32, 2, 2);
        assert_eq!(cfg.num_sets(), 512);
    }
}
