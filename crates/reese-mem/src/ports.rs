//! Per-cycle memory-port arbitration.

/// A pool of cache ports shared by all memory instructions in a cycle.
///
/// The paper's Figure 5 experiment doubles the number of memory ports
/// from 2 to 4 and shows REESE benefits disproportionately, because the
/// redundant stream competes with the primary stream for ports even
/// though its loads always hit. This little arbiter is where that
/// contention is modelled.
///
/// # Example
///
/// ```
/// use reese_mem::MemPorts;
///
/// let mut ports = MemPorts::new(2);
/// ports.begin_cycle();
/// assert!(ports.try_acquire());
/// assert!(ports.try_acquire());
/// assert!(!ports.try_acquire()); // both ports busy this cycle
/// ports.begin_cycle();
/// assert!(ports.try_acquire()); // freed again
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemPorts {
    total: u32,
    used: u32,
    busy_cycles: u64,
    acquired_total: u64,
    cycles: u64,
}

impl MemPorts {
    /// Creates a pool of `total` ports.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn new(total: u32) -> MemPorts {
        assert!(total > 0, "need at least one memory port");
        MemPorts {
            total,
            used: 0,
            busy_cycles: 0,
            acquired_total: 0,
            cycles: 0,
        }
    }

    /// Starts a new cycle, releasing all ports.
    pub fn begin_cycle(&mut self) {
        if self.used == self.total {
            self.busy_cycles += 1;
        }
        self.used = 0;
        self.cycles += 1;
    }

    /// Tries to claim one port for this cycle.
    pub fn try_acquire(&mut self) -> bool {
        if self.used < self.total {
            self.used += 1;
            self.acquired_total += 1;
            true
        } else {
            false
        }
    }

    /// Number of ports in the pool.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Ports still free this cycle.
    pub fn free(&self) -> u32 {
        self.total - self.used
    }

    /// Average port utilisation over all cycles seen so far, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.acquired_total as f64 / (self.cycles * u64::from(self.total)) as f64
        }
    }

    /// Cycles in which every port was claimed.
    pub fn saturated_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_up_to_total() {
        let mut p = MemPorts::new(3);
        p.begin_cycle();
        assert!(p.try_acquire());
        assert!(p.try_acquire());
        assert_eq!(p.free(), 1);
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn cycle_boundary_releases() {
        let mut p = MemPorts::new(1);
        p.begin_cycle();
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        p.begin_cycle();
        assert!(p.try_acquire());
    }

    #[test]
    fn utilisation_accounting() {
        let mut p = MemPorts::new(2);
        p.begin_cycle();
        p.try_acquire();
        p.try_acquire();
        p.begin_cycle(); // records saturation of previous cycle
        p.try_acquire();
        p.begin_cycle();
        assert_eq!(p.saturated_cycles(), 1);
        assert!((p.utilisation() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ports_panics() {
        MemPorts::new(0);
    }
}
