//! A small fully-associative TLB timing model.

/// Configuration for a translation lookaside buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Display name ("itlb", "dtlb").
    pub name: &'static str,
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes; must be a power of two.
    pub page_bytes: u64,
    /// Extra latency charged on a TLB miss (page-walk cost).
    pub miss_latency: u32,
}

impl TlbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(
        name: &'static str,
        entries: usize,
        page_bytes: u64,
        miss_latency: u32,
    ) -> TlbConfig {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        TlbConfig {
            name,
            entries,
            page_bytes,
            miss_latency,
        }
    }
}

/// A complete snapshot of a TLB's dynamic state. Entries are stored in
/// their internal (insertion/`swap_remove`) order, which must be
/// preserved for a restored TLB to replay bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TlbSnapshot {
    /// `(virtual page number, lru stamp)` pairs in internal order.
    pub entries: Vec<(u64, u64)>,
    /// The LRU tick counter.
    pub tick: u64,
    /// Hit count.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
}

/// A fully-associative TLB with true LRU replacement.
///
/// The simulated machine has no real virtual memory — translation is
/// identity — so the TLB exists purely to charge the page-walk latency
/// SimpleScalar charges, which matters for workloads with large
/// footprints.
///
/// # Example
///
/// ```
/// use reese_mem::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::new("dtlb", 64, 4096, 30));
/// assert_eq!(tlb.access(0x1234), 30); // cold miss pays the walk
/// assert_eq!(tlb.access(0x1FFF), 0);  // same page now hits
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<(u64, u64)>, // (virtual page number, lru stamp)
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Tlb {
        Tlb {
            entries: Vec::with_capacity(config.entries),
            config,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `addr`, returning the extra latency (0 on a hit, the
    /// configured miss latency on a miss) and updating LRU state.
    pub fn access(&mut self, addr: u64) -> u32 {
        self.tick += 1;
        let vpn = addr / self.config.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == vpn) {
            e.1 = self.tick;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() == self.config.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.tick));
        self.config.miss_latency
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Exports the full dynamic state for checkpointing.
    pub fn export_state(&self) -> TlbSnapshot {
        TlbSnapshot {
            entries: self.entries.clone(),
            tick: self.tick,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores state exported by [`Tlb::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot holds more entries than this TLB has.
    pub fn import_state(&mut self, snap: &TlbSnapshot) {
        assert!(
            snap.entries.len() <= self.config.entries,
            "TLB snapshot larger than the TLB"
        );
        self.entries.clear();
        self.entries.extend_from_slice(&snap.entries);
        self.tick = snap.tick;
        self.hits = snap.hits;
        self.misses = snap.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig::new("t", 2, 4096, 30))
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        assert_eq!(t.access(0), 30);
        assert_eq!(t.access(100), 0);
        assert_eq!(t.access(4096), 30);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_replacement() {
        let mut t = tiny();
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // touch page 0
        t.access(8192); // page 2 evicts page 1
        assert_eq!(t.access(0), 0, "page 0 still resident");
        assert_eq!(t.access(4096), 30, "page 1 was evicted");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        TlbConfig::new("t", 0, 4096, 30);
    }
}
