//! The composed cache hierarchy: L1I + L1D over a shared L2 over DRAM.

use crate::{AccessKind, Cache, CacheConfig, CacheSnapshot, Tlb, TlbConfig, TlbSnapshot};

/// Configuration of the full memory hierarchy.
///
/// [`HierarchyConfig::paper`] reproduces Table 1 of the REESE paper:
/// 32 KB 2-way 2-cycle L1 data and instruction caches over a shared
/// 512 KB 4-way 12-cycle L2, with small TLBs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 (shared by instructions and data, per the paper).
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Main-memory access latency in cycles (charged on an L2 miss).
    pub mem_latency: u32,
    /// Tagged next-line prefetch into L1D: on a demand miss, the
    /// following line is pulled in alongside it (era-appropriate
    /// one-block-lookahead prefetching; off in the paper configuration).
    pub l1d_next_line_prefetch: bool,
}

impl HierarchyConfig {
    /// The configuration from Table 1 of the paper.
    pub fn paper() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new("l1i", 32 * 1024, 32, 2, 2),
            l1d: CacheConfig::new("l1d", 32 * 1024, 32, 2, 2),
            l2: CacheConfig::new("l2", 512 * 1024, 64, 4, 12),
            itlb: TlbConfig::new("itlb", 64, 4096, 30),
            dtlb: TlbConfig::new("dtlb", 128, 4096, 30),
            mem_latency: 40,
            l1d_next_line_prefetch: false,
        }
    }

    /// Enables tagged next-line prefetching into the L1 data cache.
    pub fn with_next_line_prefetch(mut self) -> HierarchyConfig {
        self.l1d_next_line_prefetch = true;
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper()
    }
}

/// Statistics snapshot for the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyStats {
    pub l1i: crate::CacheStats,
    pub l1d: crate::CacheStats,
    pub l2: crate::CacheStats,
    pub itlb_misses: u64,
    pub dtlb_misses: u64,
}

impl HierarchyStats {
    /// Accumulates another interval's counters into this one.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1i.merge(&other.l1i);
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        self.itlb_misses += other.itlb_misses;
        self.dtlb_misses += other.dtlb_misses;
    }
}

/// A complete snapshot of the hierarchy's dynamic (timing) state:
/// every cache's lines and counters plus both TLBs. Used for warm-start
/// checkpointing; the configuration is not captured — a snapshot may
/// only be restored into a hierarchy of identical geometry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchySnapshot {
    /// L1 instruction cache state.
    pub l1i: CacheSnapshot,
    /// L1 data cache state.
    pub l1d: CacheSnapshot,
    /// Unified L2 state.
    pub l2: CacheSnapshot,
    /// Instruction TLB state.
    pub itlb: TlbSnapshot,
    /// Data TLB state.
    pub dtlb: TlbSnapshot,
    /// Prefetch lines pulled into L1D so far.
    pub prefetches_issued: u64,
}

/// The instantiated memory hierarchy timing model.
///
/// All methods return the *total latency in cycles* of the access,
/// including the L1 hit time; the timing simulators add this to an
/// instruction's execution latency. Data contents live in
/// [`crate::Memory`], which the hierarchy deliberately does not own —
/// functional state and timing state stay separate, as in SimpleScalar.
///
/// Dirty writebacks are tracked statistically but charged no extra
/// latency (they proceed in the background through write buffers).
///
/// # Example
///
/// ```
/// use reese_mem::{HierarchyConfig, MemHierarchy};
///
/// let mut h = MemHierarchy::new(HierarchyConfig::paper());
/// let cold = h.access_data(0x8000, false);
/// let warm = h.access_data(0x8000, false);
/// assert!(cold > warm); // the first touch pays L2 + DRAM
/// assert_eq!(warm, 2);  // then it's an L1 hit
/// ```
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    mem_latency: u32,
    prefetch_next_line: bool,
    prefetches_issued: u64,
}

impl MemHierarchy {
    /// Builds an empty hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> MemHierarchy {
        MemHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            mem_latency: config.mem_latency,
            prefetch_next_line: config.l1d_next_line_prefetch,
            prefetches_issued: 0,
        }
    }

    fn miss_path(l2: &mut Cache, addr: u64, kind: AccessKind, mem_latency: u32) -> u32 {
        let r2 = l2.access(addr, kind);
        if r2.hit {
            l2.config().hit_latency
        } else {
            l2.config().hit_latency + mem_latency
        }
    }

    /// One data access (`is_write` selects load vs store), returning its
    /// total latency in cycles.
    pub fn access_data(&mut self, addr: u64, is_write: bool) -> u32 {
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let mut latency = self.dtlb.access(addr);
        let r1 = self.l1d.access(addr, kind);
        latency += self.l1d.config().hit_latency;
        if !r1.hit {
            // L2 sees a line fill (a read), regardless of store/load.
            latency += Self::miss_path(&mut self.l2, addr, AccessKind::Read, self.mem_latency);
            if self.prefetch_next_line {
                // Tagged next-line prefetch: pull the following block in
                // behind the demand fill, off the critical path.
                let next = addr + self.l1d.config().line_bytes;
                if !self.l1d.probe(next) {
                    let pf = self.l1d.access(next, AccessKind::Read);
                    let _ = self.l2.access(next, AccessKind::Read);
                    if let Some(victim) = pf.writeback {
                        let _ = self.l2.access(victim, AccessKind::Write);
                    }
                    self.prefetches_issued += 1;
                }
            }
        }
        if let Some(victim) = r1.writeback {
            // Dirty victim is installed into L2 without stalling the pipe.
            let _ = self.l2.access(victim, AccessKind::Write);
        }
        latency
    }

    /// Prefetch lines pulled into L1D so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// One instruction fetch, returning its total latency in cycles.
    pub fn access_inst(&mut self, addr: u64) -> u32 {
        let mut latency = self.itlb.access(addr);
        let r1 = self.l1i.access(addr, AccessKind::Read);
        latency += self.l1i.config().hit_latency;
        if !r1.hit {
            latency += Self::miss_path(&mut self.l2, addr, AccessKind::Read, self.mem_latency);
        }
        latency
    }

    /// Whether a data address would hit in L1 right now (no state change).
    pub fn probe_data(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// L1 data hit latency (the floor for any data access).
    pub fn l1d_hit_latency(&self) -> u32 {
        self.l1d.config().hit_latency
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            itlb_misses: self.itlb.misses(),
            dtlb_misses: self.dtlb.misses(),
        }
    }

    /// Invalidates all caches (machine reset).
    pub fn reset(&mut self) {
        self.l1i.invalidate_all();
        self.l1d.invalidate_all();
        self.l2.invalidate_all();
    }

    /// Exports the full dynamic state for checkpointing.
    pub fn export_state(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l1i: self.l1i.export_state(),
            l1d: self.l1d.export_state(),
            l2: self.l2.export_state(),
            itlb: self.itlb.export_state(),
            dtlb: self.dtlb.export_state(),
            prefetches_issued: self.prefetches_issued,
        }
    }

    /// Restores state exported by [`MemHierarchy::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if any component snapshot does not match this hierarchy's
    /// geometry.
    pub fn import_state(&mut self, snap: &HierarchySnapshot) {
        self.l1i.import_state(&snap.l1i);
        self.l1d.import_state(&snap.l1d);
        self.l2.import_state(&snap.l2);
        self.itlb.import_state(&snap.itlb);
        self.dtlb.import_state(&snap.dtlb);
        self.prefetches_issued = snap.prefetches_issued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> MemHierarchy {
        MemHierarchy::new(HierarchyConfig::paper())
    }

    #[test]
    fn cold_access_pays_full_path() {
        let mut h = paper();
        // dtlb miss (30) + l1 (2) + l2 (12) + mem (40)
        assert_eq!(h.access_data(0x4_0000, false), 84);
    }

    #[test]
    fn warm_access_is_l1_hit() {
        let mut h = paper();
        h.access_data(0x4_0000, false);
        assert_eq!(h.access_data(0x4_0000, false), 2);
        assert_eq!(h.access_data(0x4_0010, false), 2, "same 32-byte line");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = paper();
        // L1D: 512 sets, 2 ways, 32B lines → set stride 16 KiB.
        // Three lines in the same L1 set but all within L2.
        let stride = 512 * 32;
        h.access_data(0, false);
        h.access_data(stride, false);
        h.access_data(2 * stride, false); // evicts line 0 from L1
                                          // Line 0: dtlb hit (same pages already walked? different page —
                                          // 16 KiB stride crosses pages, so allow tlb hit or miss; probe L1 only)
        assert!(!h.probe_data(0));
        let lat = h.access_data(0, false);
        // l1 miss (2) + l2 hit (12), plus possibly a dtlb hit (0).
        assert_eq!(lat, 14);
    }

    #[test]
    fn inst_fetch_separate_from_data() {
        let mut h = paper();
        let _ = h.access_inst(0x1000);
        let s = h.stats();
        assert_eq!(s.l1i.accesses, 1);
        assert_eq!(s.l1d.accesses, 0);
        assert_eq!(h.access_inst(0x1000), 2, "warm fetch");
    }

    #[test]
    fn shared_l2_between_inst_and_data() {
        let mut h = paper();
        h.access_inst(0x9000); // brings line into L2 (and L1I)
                               // Data access to the same line: L1D misses, L2 hits.
        let lat = h.access_data(0x9000, false);
        assert_eq!(lat, 30 + 2 + 12); // dtlb cold + l1d miss + l2 hit
    }

    #[test]
    fn reset_clears_caches() {
        let mut h = paper();
        h.access_data(0x2000, false);
        h.reset();
        assert!(!h.probe_data(0x2000));
    }

    #[test]
    fn next_line_prefetch_warms_sequential_streams() {
        let mut plain = MemHierarchy::new(HierarchyConfig::paper());
        let mut pf = MemHierarchy::new(HierarchyConfig::paper().with_next_line_prefetch());
        // Stream through 64 sequential lines.
        let (mut lat_plain, mut lat_pf) = (0u64, 0u64);
        for line in 0..64u64 {
            let addr = 0x10_0000 + line * 32;
            lat_plain += u64::from(plain.access_data(addr, false));
            lat_pf += u64::from(pf.access_data(addr, false));
        }
        assert!(
            lat_pf < lat_plain,
            "prefetching must help a sequential stream"
        );
        assert!(pf.prefetches_issued() > 0);
        assert_eq!(plain.prefetches_issued(), 0);
    }

    #[test]
    fn prefetch_does_not_change_correct_hit_semantics() {
        let mut h = MemHierarchy::new(HierarchyConfig::paper().with_next_line_prefetch());
        h.access_data(0x9000, false); // miss, prefetches 0x9020
        assert!(h.probe_data(0x9020), "next line resident");
        assert_eq!(
            h.access_data(0x9020, false),
            2,
            "prefetched line is an L1 hit"
        );
    }

    #[test]
    fn stores_allocate_like_loads() {
        let mut h = paper();
        h.access_data(0x7000, true);
        assert_eq!(h.access_data(0x7000, false), 2);
    }
}
