//! Flat, sparsely allocated main memory.

use std::collections::HashMap;

/// Size of one backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Byte-addressable main memory, allocated lazily in 4 KiB pages.
///
/// This is the *architectural* memory: it always holds the committed
/// truth, while the caches in this crate model only timing. Unaligned
/// accesses are allowed and may span pages; uninitialised memory reads
/// as zero, which gives deterministic runs without pre-zeroing the whole
/// address space.
///
/// # Example
///
/// ```
/// use reese_mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xDEAD_BEEF_0BAD_CAFE);
/// assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF_0BAD_CAFE);
/// assert_eq!(m.read_u8(0x1000), 0xFE); // little endian
/// assert_eq!(m.read_u64(0x9999), 0);   // untouched memory is zero
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(page) => page[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads `width` bytes (1, 2, 4, or 8) zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics on any other width.
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        match width {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            w => panic!("unsupported access width {w}"),
        }
    }

    /// Writes the low `width` bytes (1, 2, 4, or 8) of `value`.
    ///
    /// # Panics
    ///
    /// Panics on any other width.
    pub fn write_uint(&mut self, addr: u64, width: u64, value: u64) {
        match width {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            w => panic!("unsupported access width {w}"),
        }
    }

    /// Copies an image into memory (program loading).
    pub fn load_image(&mut self, base: u64, image: &[u8]) {
        self.write_bytes(base, image);
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// The allocated pages as `(page_number, contents)`, sorted by page
    /// number so that checkpoint encoding is deterministic regardless of
    /// `HashMap` iteration order.
    pub fn pages_sorted(&self) -> Vec<(u64, &[u8; PAGE_SIZE as usize])> {
        let mut pages: Vec<_> = self.pages.iter().map(|(&n, p)| (n, &**p)).collect();
        pages.sort_unstable_by_key(|&(n, _)| n);
        pages
    }

    /// Installs a whole page at `page_number` (checkpoint restore),
    /// replacing any existing contents.
    pub fn insert_page(&mut self, page_number: u64, contents: [u8; PAGE_SIZE as usize]) {
        self.pages.insert(page_number, Box::new(contents));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = Memory::new();
        assert_eq!(m.read_u64(12345), 0);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(100, 0x0102_0304);
        assert_eq!(m.read_u8(100), 4);
        assert_eq!(m.read_u8(103), 1);
        assert_eq!(m.read_u16(100), 0x0304);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4; // spans the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn widths_round_trip() {
        let mut m = Memory::new();
        for (w, v) in [
            (1, 0xAB),
            (2, 0xABCD),
            (4, 0xABCD_EF01),
            (8, 0xABCD_EF01_2345_6789),
        ] {
            m.write_uint(0x2000, w, v);
            assert_eq!(m.read_uint(0x2000, w), v);
        }
    }

    #[test]
    fn narrow_write_truncates() {
        let mut m = Memory::new();
        m.write_uint(0x3000, 1, 0xFFFF);
        assert_eq!(m.read_u8(0x3000), 0xFF);
        assert_eq!(m.read_u8(0x3001), 0);
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        Memory::new().read_uint(0, 3);
    }

    #[test]
    fn load_image() {
        let mut m = Memory::new();
        m.load_image(0x1000, &[1, 2, 3]);
        assert_eq!(m.read_u8(0x1000), 1);
        assert_eq!(m.read_u8(0x1002), 3);
    }
}
