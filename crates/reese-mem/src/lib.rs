//! Memory system for the REESE simulators.
//!
//! This crate is the counterpart of SimpleScalar's memory and cache
//! modules: a sparse flat [`Memory`] that holds architectural state, a
//! set-associative [`Cache`] timing model composed into a two-level
//! [`MemHierarchy`] with TLBs, and a [`MemPorts`] arbiter that models
//! the per-cycle port contention central to the paper's Figure 5.
//!
//! Functional data and timing are deliberately separated: the emulator
//! reads and writes [`Memory`] directly, while the pipeline charges
//! latencies through [`MemHierarchy`].
//!
//! # Example
//!
//! ```
//! use reese_mem::{HierarchyConfig, MemHierarchy, Memory};
//!
//! let mut mem = Memory::new();
//! mem.write_u64(0x8000, 42);
//!
//! let mut timing = MemHierarchy::new(HierarchyConfig::paper());
//! let first = timing.access_data(0x8000, false);
//! let second = timing.access_data(0x8000, false);
//! assert!(first > second);
//! assert_eq!(mem.read_u64(0x8000), 42);
//! ```

mod cache;
mod hierarchy;
mod memory;
mod ports;
mod tlb;

pub use cache::{
    AccessKind, AccessResult, Cache, CacheConfig, CacheSnapshot, CacheStats, LineState,
};
pub use hierarchy::{HierarchyConfig, HierarchySnapshot, HierarchyStats, MemHierarchy};
pub use memory::{Memory, PAGE_SIZE};
pub use ports::MemPorts;
pub use tlb::{Tlb, TlbConfig, TlbSnapshot};
