//! The cache against a transparent reference model: an associativity-
//! respecting LRU simulator written the slow, obvious way, driven by
//! seeded random access streams.

use reese_mem::{AccessKind, Cache, CacheConfig, Memory};
use reese_stats::SplitMix64;
use std::collections::VecDeque;

/// The obviously correct reference: per set, an LRU-ordered list of
/// (tag, dirty) pairs.
struct RefCache {
    sets: Vec<VecDeque<(u64, bool)>>,
    line: u64,
    assoc: usize,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> RefCache {
        RefCache {
            sets: vec![VecDeque::new(); cfg.num_sets() as usize],
            line: cfg.line_bytes,
            assoc: cfg.assoc as usize,
        }
    }

    /// Returns (hit, writeback block address).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let block = addr / self.line;
        let nsets = self.sets.len() as u64;
        let set = (block % nsets) as usize;
        let tag = block / nsets;
        let line = self.line;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&(t, _)| t == tag) {
            let (t, d) = s.remove(pos).expect("position valid");
            s.push_front((t, d || write));
            return (true, None);
        }
        let mut wb = None;
        if s.len() == self.assoc {
            let (vt, vd) = s.pop_back().expect("full set");
            if vd {
                wb = Some((vt * nsets + set as u64) * line);
            }
        }
        s.push_front((tag, write));
        (false, wb)
    }
}

/// Every access sequence produces identical hit/miss/writeback
/// behaviour in the real cache and the reference model.
#[test]
fn cache_matches_reference() {
    let mut rng = SplitMix64::new(20);
    for case in 0..64 {
        let assoc = [1u64, 2, 4][case % 3];
        let len = 1 + rng.index(399);
        let accesses: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.range_u64(0, 4096), rng.chance(0.5)))
            .collect();
        let cfg = CacheConfig::new("t", 16 * assoc * 32, 32, assoc, 1);
        let mut real = Cache::new(cfg.clone());
        let mut reference = RefCache::new(&cfg);
        for &(addr, write) in &accesses {
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = real.access(addr, kind);
            let (hit, wb) = reference.access(addr, write);
            assert_eq!(got.hit, hit, "hit/miss diverged at addr {addr:#x}");
            assert_eq!(got.writeback, wb, "writeback diverged at addr {addr:#x}");
        }
        let s = real.stats();
        assert_eq!(s.accesses, accesses.len() as u64);
        assert_eq!(s.hits + s.misses, s.accesses);
    }
}

/// Memory reads always return the most recent write to each byte.
#[test]
fn memory_is_a_flat_byte_store() {
    let mut rng = SplitMix64::new(21);
    for _ in 0..64 {
        let len = 1 + rng.index(199);
        let writes: Vec<(u64, u8)> = (0..len)
            .map(|_| (rng.range_u64(0, 100_000), rng.next_u64() as u8))
            .collect();
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            mem.write_u8(addr, value);
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            assert_eq!(mem.read_u8(addr), value);
        }
    }
}

/// Multi-byte accesses agree with byte-by-byte little-endian
/// composition, including across page boundaries.
#[test]
fn wide_accesses_compose_from_bytes() {
    let mut rng = SplitMix64::new(22);
    for _ in 0..256 {
        let addr = rng.range_u64(0, 20_000);
        let value = rng.next_u64();
        let mut mem = Memory::new();
        mem.write_u64(addr, value);
        let mut composed = 0u64;
        for i in (0..8).rev() {
            composed = (composed << 8) | u64::from(mem.read_u8(addr + i));
        }
        assert_eq!(composed, value);
    }
}
