//! The unified instruction representation.

use crate::{Opcode, Reg};
use std::fmt;

/// A decoded instruction.
///
/// All opcodes share one format: destination, two sources, and a signed
/// immediate. Fields an opcode does not use are ignored by execution and
/// canonicalised to zero by the encoder, so two instructions that behave
/// identically compare equal after an encode/decode round trip.
///
/// Conventions:
/// * stores: `rs1` = base address register, `rs2` = data register
/// * branches: compare `rs1` with `rs2`, target = `pc + imm`
/// * `jal`: target = `pc + imm`; `jalr`: target = `rs1 + imm`
/// * `lih`: `rs1` is encoded equal to `rd` (it keeps `rd`'s low half)
///
/// # Example
///
/// ```
/// use reese_isa::{Instr, Opcode, Reg};
///
/// let add = Instr::rrr(Opcode::Add, Reg::x(1), Reg::x(2), Reg::x(3));
/// assert_eq!(add.to_string(), "add x1, x2, x3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Operation.
    pub op: Opcode,
    /// Destination register (meaningful iff `op.writes_rd()`).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Signed immediate; must fit in `i32` for encoding.
    pub imm: i64,
}

impl Instr {
    /// Size of one encoded instruction in bytes.
    pub const SIZE: u64 = 8;

    /// Register-register-register form (`add rd, rs1, rs2`).
    pub const fn rrr(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Instr {
        Instr {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// Register-register-immediate form (`addi rd, rs1, imm`).
    pub const fn rri(op: Opcode, rd: Reg, rs1: Reg, imm: i64) -> Instr {
        Instr {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Load form (`lw rd, imm(rs1)`).
    pub const fn load(op: Opcode, rd: Reg, base: Reg, imm: i64) -> Instr {
        Instr {
            op,
            rd,
            rs1: base,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Store form (`sw rs2, imm(rs1)`).
    pub const fn store(op: Opcode, data: Reg, base: Reg, imm: i64) -> Instr {
        Instr {
            op,
            rd: Reg::ZERO,
            rs1: base,
            rs2: data,
            imm,
        }
    }

    /// Branch form (`beq rs1, rs2, imm`).
    pub const fn branch(op: Opcode, rs1: Reg, rs2: Reg, imm: i64) -> Instr {
        Instr {
            op,
            rd: Reg::ZERO,
            rs1,
            rs2,
            imm,
        }
    }

    /// A canonical no-op.
    pub const fn nop() -> Instr {
        Instr {
            op: Opcode::Nop,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
        }
    }

    /// Destination register if the opcode writes one and it is not `x0`.
    pub fn dest(&self) -> Option<Reg> {
        if self.op.writes_rd() && !self.rd.is_zero() {
            Some(self.rd)
        } else {
            None
        }
    }

    /// Source registers actually read by this instruction.
    pub fn sources(&self) -> impl Iterator<Item = Reg> {
        let s1 = if self.op.reads_rs1() {
            Some(self.rs1)
        } else {
            None
        };
        let s2 = if self.op.reads_rs2() {
            Some(self.rs2)
        } else {
            None
        };
        s1.into_iter().chain(s2)
    }

    /// Canonicalises unused fields to zero (what the encoder emits).
    pub fn canonical(mut self) -> Instr {
        if !self.op.writes_rd() {
            self.rd = Reg::ZERO;
        }
        if self.op == Opcode::Lih {
            // `lih` always reads its own destination's low half.
            self.rs1 = self.rd;
        } else if self.op == Opcode::Ecall {
            // `ecall` always reads the syscall ABI registers.
            self.rs1 = crate::abi::A7;
            self.rs2 = crate::abi::A0;
        } else if !self.op.reads_rs1() {
            self.rs1 = Reg::ZERO;
        }
        if !self.op.reads_rs2() && self.op != Opcode::Ecall {
            self.rs2 = Reg::ZERO;
        }
        if !self.op.uses_imm() {
            self.imm = 0;
        }
        self
    }
}

impl Default for Instr {
    fn default() -> Self {
        Instr::nop()
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::disasm::fmt_instr(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    #[test]
    fn dest_of_x0_writer_is_none() {
        let i = Instr::rri(Opcode::Addi, Reg::ZERO, Reg::x(1), 4);
        assert_eq!(i.dest(), None);
        let i = Instr::rri(Opcode::Addi, Reg::x(3), Reg::x(1), 4);
        assert_eq!(i.dest(), Some(Reg::x(3)));
    }

    #[test]
    fn store_has_no_dest_and_two_sources() {
        let s = Instr::store(Opcode::Sd, Reg::x(7), Reg::x(2), 16);
        assert_eq!(s.dest(), None);
        let srcs: Vec<Reg> = s.sources().collect();
        assert_eq!(srcs, vec![Reg::x(2), Reg::x(7)]);
    }

    #[test]
    fn li_reads_nothing() {
        let i = Instr::rri(Opcode::Li, Reg::x(1), Reg::ZERO, 42);
        assert_eq!(i.sources().count(), 0);
    }

    #[test]
    fn canonical_zeroes_unused_fields() {
        let messy = Instr {
            op: Opcode::Jal,
            rd: Reg::x(1),
            rs1: Reg::x(9),
            rs2: Reg::x(9),
            imm: 16,
        };
        let c = messy.canonical();
        assert_eq!(c.rs1, Reg::ZERO);
        assert_eq!(c.rs2, Reg::ZERO);
        assert_eq!(c.rd, Reg::x(1));
        assert_eq!(c.imm, 16);
    }

    #[test]
    fn nop_is_system() {
        assert_eq!(Instr::nop().op.kind(), OpKind::System);
        assert_eq!(Instr::default(), Instr::nop());
    }
}
